//! Rule-based argument identification and normalization (§2.1).
//!
//! "Arguments such as numbers, dates and times in the input sentence are
//! identified and normalized using a rule-based algorithm; they are replaced
//! as named constants of the form NUMBER_0, DATE_1, etc. String and named
//! entity parameters instead are represented using multiple tokens, one for
//! each word [...], this allows the words to be copied from the input
//! sentence individually."
//!
//! [`identify_arguments`] takes a tokenized sentence and produces the
//! preprocessed sentence (with named constants substituted) plus the table
//! mapping each named constant back to its normalized value. The same table
//! is applied to the program tokens so that the model learns to emit
//! `NUMBER_0` instead of the literal number.

use serde::{Deserialize, Serialize};

/// The normalized value of an identified argument span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArgumentValue {
    /// A plain number.
    Number(f64),
    /// A measure: amount plus unit symbol (`60`, `F`).
    Measure(f64, String),
    /// A time of day (hour, minute).
    Time(u8, u8),
    /// A relative or absolute date, kept as a normalized phrase
    /// (`today`, `tomorrow`, `start_of_week`).
    Date(String),
    /// A currency amount and code.
    Currency(f64, String),
    /// A quoted free-form string (the tokens inside the quotes).
    QuotedString(Vec<String>),
    /// A username (`@handle`).
    Username(String),
    /// A hashtag (`#topic`).
    Hashtag(String),
    /// A URL.
    Url(String),
    /// An email address.
    EmailAddress(String),
    /// A phone number.
    PhoneNumber(String),
    /// A file path name.
    PathName(String),
}

impl ArgumentValue {
    /// The placeholder prefix used for this kind of argument
    /// (`NUMBER`, `DATE`, …).
    pub fn placeholder_prefix(&self) -> &'static str {
        match self {
            ArgumentValue::Number(_) => "NUMBER",
            ArgumentValue::Measure(..) => "MEASURE",
            ArgumentValue::Time(..) => "TIME",
            ArgumentValue::Date(_) => "DATE",
            ArgumentValue::Currency(..) => "CURRENCY",
            ArgumentValue::QuotedString(_) => "QUOTED_STRING",
            ArgumentValue::Username(_) => "USERNAME",
            ArgumentValue::Hashtag(_) => "HASHTAG",
            ArgumentValue::Url(_) => "URL",
            ArgumentValue::EmailAddress(_) => "EMAIL_ADDRESS",
            ArgumentValue::PhoneNumber(_) => "PHONE_NUMBER",
            ArgumentValue::PathName(_) => "PATH_NAME",
        }
    }
}

/// An identified span: which placeholder replaced it and its value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArgumentSpan {
    /// The placeholder token (`NUMBER_0`, `DATE_1`, …).
    pub placeholder: String,
    /// The normalized value.
    pub value: ArgumentValue,
    /// The original surface tokens of the span.
    pub surface: Vec<String>,
}

/// The result of preprocessing a sentence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Preprocessed {
    /// The sentence tokens with identified spans replaced by placeholders.
    pub tokens: Vec<String>,
    /// The identified spans in order of appearance.
    pub spans: Vec<ArgumentSpan>,
}

impl Preprocessed {
    /// Look up a span by placeholder token.
    pub fn span(&self, placeholder: &str) -> Option<&ArgumentSpan> {
        self.spans.iter().find(|s| s.placeholder == placeholder)
    }
}

const NUMBER_WORDS: &[(&str, f64)] = &[
    ("zero", 0.0),
    ("one", 1.0),
    ("two", 2.0),
    ("three", 3.0),
    ("four", 4.0),
    ("five", 5.0),
    ("six", 6.0),
    ("seven", 7.0),
    ("eight", 8.0),
    ("nine", 9.0),
    ("ten", 10.0),
    ("eleven", 11.0),
    ("twelve", 12.0),
    ("twenty", 20.0),
    ("thirty", 30.0),
    ("fifty", 50.0),
    ("hundred", 100.0),
    ("thousand", 1000.0),
];

const DATE_PHRASES: &[&str] = &[
    "today",
    "tomorrow",
    "yesterday",
    "tonight",
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
];

const UNIT_SUFFIXES: &[&str] = &[
    "f", "c", "km", "mi", "kb", "mb", "gb", "tb", "bpm", "kg", "lb", "ft", "in", "m", "h", "min",
    "s", "day", "days", "week", "weeks", "hour", "hours", "minute", "minutes",
];

/// Identify and normalize argument spans in a tokenized sentence.
///
/// Counters are per prefix, so a sentence with two numbers and a date yields
/// `NUMBER_0`, `NUMBER_1`, `DATE_0`.
pub fn identify_arguments(tokens: &[String]) -> Preprocessed {
    let mut out = Preprocessed::default();
    let mut counters: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let mut i = 0;
    while i < tokens.len() {
        let token = &tokens[i];
        // Quoted strings: consume until the closing quote.
        if token == "\"" {
            if let Some(close) = tokens[i + 1..].iter().position(|t| t == "\"") {
                let inner: Vec<String> = tokens[i + 1..i + 1 + close].to_vec();
                let surface = tokens[i..=i + 1 + close].to_vec();
                push_span(
                    &mut out,
                    &mut counters,
                    ArgumentValue::QuotedString(inner),
                    surface,
                );
                i += close + 2;
                continue;
            }
        }
        if let Some(value) = classify_token(token, tokens.get(i + 1)) {
            let consumed = match &value {
                ArgumentValue::Measure(..)
                    if !token_has_unit_suffix(token) && tokens.get(i + 1).is_some() =>
                {
                    2
                }
                _ => 1,
            };
            let surface = tokens[i..i + consumed].to_vec();
            push_span(&mut out, &mut counters, value, surface);
            i += consumed;
            continue;
        }
        out.tokens.push(token.clone());
        i += 1;
    }
    out
}

fn push_span(
    out: &mut Preprocessed,
    counters: &mut std::collections::BTreeMap<&'static str, usize>,
    value: ArgumentValue,
    surface: Vec<String>,
) {
    let prefix = value.placeholder_prefix();
    let index = counters.entry(prefix).or_insert(0);
    let placeholder = format!("{prefix}_{index}");
    *index += 1;
    out.tokens.push(placeholder.clone());
    out.spans.push(ArgumentSpan {
        placeholder,
        value,
        surface,
    });
}

fn token_has_unit_suffix(token: &str) -> bool {
    let digits_end = token
        .char_indices()
        .take_while(|(_, c)| c.is_ascii_digit() || *c == '.')
        .map(|(i, c)| i + c.len_utf8())
        .last()
        .unwrap_or(0);
    digits_end > 0 && digits_end < token.len()
}

fn classify_token(token: &str, next: Option<&String>) -> Option<ArgumentValue> {
    if let Some(handle) = token.strip_prefix('@') {
        if !handle.is_empty() {
            return Some(ArgumentValue::Username(handle.to_owned()));
        }
    }
    if let Some(tag) = token.strip_prefix('#') {
        if !tag.is_empty() {
            return Some(ArgumentValue::Hashtag(tag.to_owned()));
        }
    }
    if token.contains("://") || token.starts_with("www.") {
        return Some(ArgumentValue::Url(token.to_owned()));
    }
    if token.contains('@') && token.contains('.') {
        return Some(ArgumentValue::EmailAddress(token.to_owned()));
    }
    if DATE_PHRASES.contains(&token) {
        return Some(ArgumentValue::Date(token.to_owned()));
    }
    // Phone numbers: +1..., or long digit strings with dashes.
    if token.starts_with('+') && token[1..].chars().all(|c| c.is_ascii_digit()) && token.len() > 7 {
        return Some(ArgumentValue::PhoneNumber(token.to_owned()));
    }
    // Times: 8:30, 8:30am, 18:05
    if let Some(time) = parse_time(token) {
        return Some(ArgumentValue::Time(time.0, time.1));
    }
    // Currency: $10, 10usd
    if let Some(amount) = token.strip_prefix('$').and_then(|t| t.parse::<f64>().ok()) {
        return Some(ArgumentValue::Currency(amount, "USD".to_owned()));
    }
    // File names.
    if let Some((stem, ext)) = token.rsplit_once('.') {
        if !stem.is_empty()
            && !stem.chars().all(|c| c.is_ascii_digit())
            && ext.len() <= 4
            && !ext.is_empty()
            && ext.chars().all(|c| c.is_ascii_alphanumeric())
            && !token.contains('@')
        {
            return Some(ArgumentValue::PathName(token.to_owned()));
        }
    }
    // Numbers with attached unit: 60f, 5gb, 500bpm.
    if token_has_unit_suffix(token) {
        let digits_end = token
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_digit() || *c == '.')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        let (digits, suffix) = token.split_at(digits_end);
        if UNIT_SUFFIXES.contains(&suffix) {
            if let Ok(amount) = digits.parse::<f64>() {
                return Some(ArgumentValue::Measure(amount, suffix.to_owned()));
            }
        }
        if suffix.eq_ignore_ascii_case("am") || suffix.eq_ignore_ascii_case("pm") {
            if let Ok(hour) = digits.parse::<f64>() {
                let hour = hour as u8 % 12
                    + if suffix.eq_ignore_ascii_case("pm") {
                        12
                    } else {
                        0
                    };
                return Some(ArgumentValue::Time(hour, 0));
            }
        }
        return None;
    }
    // Bare numbers (digits or commas), possibly followed by a unit word.
    let cleaned = token.replace(',', "");
    if let Ok(amount) = cleaned.parse::<f64>() {
        if let Some(next) = next {
            if UNIT_SUFFIXES.contains(&next.as_str()) {
                return Some(ArgumentValue::Measure(amount, next.clone()));
            }
        }
        return Some(ArgumentValue::Number(amount));
    }
    // Number words ("five").
    if let Some((_, amount)) = NUMBER_WORDS.iter().find(|(w, _)| *w == token) {
        return Some(ArgumentValue::Number(*amount));
    }
    None
}

fn parse_time(token: &str) -> Option<(u8, u8)> {
    let (clock, suffix) = if let Some(stripped) = token.strip_suffix("am") {
        (stripped, 0u8)
    } else if let Some(stripped) = token.strip_suffix("pm") {
        (stripped, 12u8)
    } else {
        (token, 255u8)
    };
    let (h, m) = clock.split_once(':')?;
    let hour: u8 = h.parse().ok()?;
    let minute: u8 = m.parse().ok()?;
    if hour > 23 || minute > 59 {
        return None;
    }
    let hour = match suffix {
        0 => hour % 12,
        12 => hour % 12 + 12,
        _ => hour,
    };
    Some((hour, minute))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn prep(sentence: &str) -> Preprocessed {
        identify_arguments(&tokenize(sentence))
    }

    #[test]
    fn numbers_and_measures_become_placeholders() {
        let p = prep("notify me when the temperature drops below 60f or above 100");
        assert!(p.tokens.contains(&"MEASURE_0".to_owned()));
        assert!(p.tokens.contains(&"NUMBER_0".to_owned()));
        assert_eq!(p.spans.len(), 2);
        assert_eq!(
            p.span("MEASURE_0").unwrap().value,
            ArgumentValue::Measure(60.0, "f".to_owned())
        );
    }

    #[test]
    fn quoted_strings_are_one_span() {
        let p = prep("post \"hello brave world\" on twitter");
        assert_eq!(p.tokens, vec!["post", "QUOTED_STRING_0", "on", "twitter"]);
        match &p.spans[0].value {
            ArgumentValue::QuotedString(words) => {
                assert_eq!(words, &["hello", "brave", "world"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn times_dates_and_handles() {
        let p = prep("at 8:30am tomorrow remind @alice about #standup");
        assert!(p.tokens.contains(&"TIME_0".to_owned()));
        assert!(p.tokens.contains(&"DATE_0".to_owned()));
        assert!(p.tokens.contains(&"USERNAME_0".to_owned()));
        assert!(p.tokens.contains(&"HASHTAG_0".to_owned()));
        assert_eq!(p.span("TIME_0").unwrap().value, ArgumentValue::Time(8, 30));
    }

    #[test]
    fn urls_emails_files_and_phones() {
        let p = prep("send report.pdf to bob@example.com and text +16505551234 the link https://example.com/a");
        assert!(p.tokens.contains(&"PATH_NAME_0".to_owned()));
        assert!(p.tokens.contains(&"EMAIL_ADDRESS_0".to_owned()));
        assert!(p.tokens.contains(&"PHONE_NUMBER_0".to_owned()));
        assert!(p.tokens.contains(&"URL_0".to_owned()));
    }

    #[test]
    fn counters_are_per_prefix() {
        let p = prep("between 5 and 10 dollars on friday");
        let numbers: Vec<&String> = p
            .tokens
            .iter()
            .filter(|t| t.starts_with("NUMBER_"))
            .collect();
        assert_eq!(numbers, vec!["NUMBER_0", "NUMBER_1"]);
        assert!(p.tokens.contains(&"DATE_0".to_owned()));
    }

    #[test]
    fn plain_sentences_are_untouched() {
        let p = prep("lock the front door");
        assert!(p.spans.is_empty());
        assert_eq!(p.tokens, tokenize("lock the front door"));
    }

    #[test]
    fn number_words_are_recognized() {
        let p = prep("play five songs");
        assert_eq!(
            p.span("NUMBER_0").unwrap().value,
            ArgumentValue::Number(5.0)
        );
    }

    #[test]
    fn currency_amounts() {
        let p = prep("alert me when the ride costs more than $25");
        assert_eq!(
            p.span("CURRENCY_0").unwrap().value,
            ArgumentValue::Currency(25.0, "USD".to_owned())
        );
    }
}
