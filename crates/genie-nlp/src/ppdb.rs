//! A built-in paraphrase lexicon, substituting for PPDB (§3.3).
//!
//! The paper applies "standard data augmentation techniques based on PPDB"
//! to the crowdsourced paraphrases: meaning-preserving one-word (or
//! one-phrase) substitutions that increase lexical variety. This module
//! ships an embedded English paraphrase lexicon focused on the command
//! vocabulary of virtual assistants (verbs of communication, retrieval,
//! notification; temporal connectives; politeness markers) and implements
//! the substitution-based augmentation.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::intern::{FnvState, Interner, Symbol, TokenStream};

/// Paraphrase pairs: each group is a set of interchangeable phrases. A
/// sentence containing one member can be rewritten with another member.
const GROUPS: &[&[&str]] = &[
    // retrieval verbs
    &["get", "fetch", "retrieve", "show me", "give me", "find"],
    &["show", "display", "list"],
    &["search for", "look for", "look up", "find"],
    &["tell me", "let me know", "inform me"],
    &["notify me", "alert me", "send me a notification", "ping me"],
    &["check", "look at"],
    // communication verbs
    &["send", "dispatch", "shoot"],
    &["post", "publish", "share"],
    &["tweet", "post on twitter"],
    &["email", "send an email to", "mail"],
    &["text", "send a text to", "sms"],
    &["message", "send a message to"],
    &["call", "phone", "ring"],
    &["reply", "respond", "answer"],
    // creation / modification
    &["create", "make", "add", "set up"],
    &["remove", "delete", "get rid of"],
    &["update", "change", "modify"],
    &["save", "store", "keep"],
    &["upload", "put"],
    &["download", "grab"],
    &["turn on", "switch on", "power on"],
    &["turn off", "switch off", "power off", "shut off"],
    &["start", "begin", "kick off"],
    &["stop", "halt", "end"],
    &["open", "launch"],
    &["play", "put on", "start playing"],
    &["pause", "hold"],
    &["set", "adjust", "change"],
    &["lock", "secure"],
    &["unlock", "open up"],
    &["schedule", "plan", "book"],
    &["remind me to", "remember to", "do not let me forget to"],
    &["translate", "convert"],
    &["monitor", "watch", "keep an eye on", "track"],
    // temporal / conditional connectives
    &["when", "whenever", "every time", "as soon as", "once"],
    &["if", "in case"],
    &["every day", "daily", "each day"],
    &["every week", "weekly", "each week"],
    &["every hour", "hourly", "each hour"],
    &["right now", "immediately", "now"],
    &["in the morning", "each morning", "every morning"],
    &["at night", "in the evening", "every evening"],
    &["today", "this day"],
    &["later", "afterwards", "after that"],
    // nouns
    &["picture", "photo", "image", "pic"],
    &["message", "note"],
    &["email", "mail", "e mail"],
    &["file", "document"],
    &["folder", "directory"],
    &["song", "track", "tune"],
    &["playlist", "mix"],
    &["article", "story", "piece"],
    &["post", "update"],
    &["video", "clip"],
    &["weather", "forecast"],
    &["temperature", "temp"],
    &["home", "my house", "my place"],
    &["work", "the office", "my office"],
    &["car", "vehicle"],
    &["phone", "mobile", "cell phone"],
    &["computer", "laptop"],
    &["light", "lamp", "light bulb"],
    &["front door", "door"],
    &["calendar", "schedule", "agenda"],
    &["task", "todo", "to do item"],
    &["meeting", "appointment"],
    &["friends", "buddies", "pals"],
    &["people", "folks"],
    &["news", "headlines", "the latest news"],
    &["price", "cost", "value"],
    &["stock", "share"],
    &["restaurant", "place to eat", "eatery"],
    &["picture of a cat", "cat picture", "cat photo"],
    // adjectives / adverbs
    &["new", "fresh", "recent", "latest"],
    &["popular", "trending", "hot"],
    &["important", "urgent", "critical"],
    &["funny", "hilarious", "amusing"],
    &["big", "large", "huge"],
    &["small", "tiny", "little"],
    &["cheap", "inexpensive", "affordable"],
    &["expensive", "pricey", "costly"],
    &["quickly", "fast", "right away"],
    &["more than", "greater than", "over", "above"],
    &["less than", "smaller than", "under", "below"],
    &["at least", "no less than"],
    &["at most", "no more than"],
    // politeness / fillers
    &["please", "kindly", "could you please"],
    &["i want to", "i would like to", "i need to", "i wish to"],
    &["can you", "could you", "would you", "will you"],
    &["my", "all my", "all of my"],
    &["me", "for me"],
    &["and then", "then", "and after that", "after that"],
    &["as well", "too", "also"],
];

/// The embedded paraphrase lexicon and its substitution-based augmentation.
#[derive(Debug, Clone)]
pub struct Ppdb {
    groups: Vec<Vec<String>>,
}

impl Default for Ppdb {
    fn default() -> Self {
        Ppdb::builtin()
    }
}

impl Ppdb {
    /// The builtin lexicon.
    pub fn builtin() -> Self {
        Ppdb {
            groups: GROUPS
                .iter()
                .map(|g| g.iter().map(|s| s.to_string()).collect())
                .collect(),
        }
    }

    /// Number of paraphrase groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total number of paraphrase pairs (ordered) in the lexicon.
    pub fn pair_count(&self) -> usize {
        self.groups.iter().map(|g| g.len() * (g.len() - 1)).sum()
    }

    /// Alternative phrases for a phrase, excluding itself.
    pub fn alternatives(&self, phrase: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for group in &self.groups {
            if group.iter().any(|p| p == phrase) {
                out.extend(group.iter().filter(|p| *p != phrase).map(String::as_str));
            }
        }
        out
    }

    /// All (phrase, position) matches of lexicon phrases inside a sentence
    /// (given as lowercase text). Longer phrases are preferred at the same
    /// position.
    fn matches<'a>(&'a self, sentence: &str) -> Vec<(usize, &'a str)> {
        let padded = format!(" {sentence} ");
        let mut out: Vec<(usize, &str)> = Vec::new();
        for group in &self.groups {
            for phrase in group {
                let needle = format!(" {phrase} ");
                let mut start = 0;
                while let Some(pos) = padded[start..].find(&needle) {
                    out.push((start + pos, phrase.as_str()));
                    start += pos + 1;
                }
            }
        }
        // Prefer longer phrases at the same start offset.
        out.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.len().cmp(&a.1.len())));
        out.dedup_by_key(|(pos, _)| *pos);
        out
    }

    /// Apply one random meaning-preserving substitution to the sentence, if
    /// any lexicon phrase matches. Returns `None` when nothing matches.
    pub fn augment_once<R: Rng + ?Sized>(&self, sentence: &str, rng: &mut R) -> Option<String> {
        let matches = self.matches(sentence);
        if matches.is_empty() {
            return None;
        }
        let (_, phrase) = matches.choose(rng)?;
        let alternatives = self.alternatives(phrase);
        let replacement = alternatives.choose(rng)?;
        let padded = format!(" {sentence} ");
        let replaced = padded.replacen(&format!(" {phrase} "), &format!(" {replacement} "), 1);
        Some(replaced.trim().to_owned())
    }

    /// Generate up to `count` distinct augmented variants of a sentence.
    pub fn augment<R: Rng + ?Sized>(
        &self,
        sentence: &str,
        count: usize,
        rng: &mut R,
    ) -> Vec<String> {
        let mut out = Vec::new();
        for _ in 0..count * 3 {
            if out.len() >= count {
                break;
            }
            if let Some(variant) = self.augment_once(sentence, rng) {
                if variant != sentence && !out.contains(&variant) {
                    out.push(variant);
                }
            }
        }
        out
    }
}

/// One lexicon phrase compiled to interned tokens.
struct CompiledPhrase {
    tokens: Box<[Symbol]>,
    /// Byte length of the phrase text — the tie-break the string matcher
    /// used ("prefer longer phrases at the same position").
    byte_len: usize,
    /// Flat indices of the interchangeable phrases, across every group that
    /// contains this phrase, in group order, excluding the phrase itself —
    /// exactly [`Ppdb::alternatives`], with multiplicities preserved.
    alternatives: Vec<u32>,
}

/// The lexicon compiled against an [`Interner`]: matching walks the
/// utterance symbols once through a first-token index instead of running
/// ~300 substring scans over rendered text, and substitution splices token
/// runs instead of re-allocating the sentence. Produces **identical
/// rewrites** (same matches, same RNG draws, same output text) as the
/// string-based [`Ppdb::augment`] path it replaces.
pub struct CompiledPpdb {
    phrases: Vec<CompiledPhrase>,
    /// Candidate phrases by first token, each list sorted by
    /// (byte length descending, flat index ascending) so the first full
    /// match at a position is the winner the string matcher picked.
    by_first: HashMap<Symbol, Vec<u32>, FnvState>,
}

impl Ppdb {
    /// Compile the lexicon against an interner (global symbols only — call
    /// from a single-threaded context, e.g. pipeline construction).
    pub fn compile(&self, interner: &Interner) -> CompiledPpdb {
        let mut phrases: Vec<CompiledPhrase> = Vec::new();
        let mut flat: Vec<(usize, usize)> = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            for (p, phrase) in group.iter().enumerate() {
                let tokens: Box<[Symbol]> = phrase
                    .split_whitespace()
                    .map(|w| interner.intern(w))
                    .collect();
                phrases.push(CompiledPhrase {
                    tokens,
                    byte_len: phrase.len(),
                    alternatives: Vec::new(),
                });
                flat.push((g, p));
            }
        }
        // Alternatives: for each phrase, every member of every group that
        // contains an identical phrase, minus the identical entries.
        for index in 0..phrases.len() {
            let own = phrases[index].tokens.clone();
            let mut alternatives = Vec::new();
            let mut cursor = 0usize;
            for group in &self.groups {
                let members: Vec<u32> = (0..group.len()).map(|p| (cursor + p) as u32).collect();
                if members.iter().any(|&m| phrases[m as usize].tokens == own) {
                    alternatives.extend(
                        members
                            .iter()
                            .filter(|&&m| phrases[m as usize].tokens != own),
                    );
                }
                cursor += group.len();
            }
            phrases[index].alternatives = alternatives;
        }
        let mut by_first: HashMap<Symbol, Vec<u32>, FnvState> = HashMap::default();
        for (index, phrase) in phrases.iter().enumerate() {
            if let Some(&first) = phrase.tokens.first() {
                by_first.entry(first).or_default().push(index as u32);
            }
        }
        for candidates in by_first.values_mut() {
            candidates.sort_by(|&a, &b| {
                phrases[b as usize]
                    .byte_len
                    .cmp(&phrases[a as usize].byte_len)
                    .then(a.cmp(&b))
            });
        }
        CompiledPpdb { phrases, by_first }
    }
}

impl CompiledPpdb {
    /// The winning match at each sentence position, in position order — the
    /// deduplicated match list of the string matcher, built in one pass.
    fn matches(&self, sentence: &[Symbol]) -> Vec<u32> {
        let mut out = Vec::new();
        for i in 0..sentence.len() {
            let Some(candidates) = self.by_first.get(&sentence[i]) else {
                continue;
            };
            let winner = candidates.iter().find(|&&c| {
                let tokens = &self.phrases[c as usize].tokens;
                sentence.len() - i >= tokens.len() && sentence[i..i + tokens.len()] == tokens[..]
            });
            if let Some(&winner) = winner {
                out.push(winner);
            }
        }
        out
    }

    /// Apply one random meaning-preserving substitution, if any lexicon
    /// phrase matches. Token-stream counterpart of [`Ppdb::augment_once`].
    pub fn augment_once<R: Rng + ?Sized>(
        &self,
        sentence: &TokenStream,
        rng: &mut R,
    ) -> Option<TokenStream> {
        let matches = self.matches(sentence);
        if matches.is_empty() {
            return None;
        }
        let &phrase = matches.choose(rng)?;
        let phrase = &self.phrases[phrase as usize];
        let &replacement = phrase.alternatives.choose(rng)?;
        let replacement = &self.phrases[replacement as usize];
        // Like the string path: the substitution lands on the *first*
        // occurrence of the chosen phrase.
        sentence.replacen_seq(&phrase.tokens, &replacement.tokens)
    }

    /// Generate up to `count` distinct augmented variants of a sentence.
    pub fn augment<R: Rng + ?Sized>(
        &self,
        sentence: &TokenStream,
        count: usize,
        rng: &mut R,
    ) -> Vec<TokenStream> {
        let mut out = Vec::new();
        for _ in 0..count * 3 {
            if out.len() >= count {
                break;
            }
            if let Some(variant) = self.augment_once(sentence, rng) {
                if &variant != sentence && !out.contains(&variant) {
                    out.push(variant);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The compiled matcher must reproduce the string path draw for draw.
    #[test]
    fn compiled_augment_matches_string_augment() {
        let ppdb = Ppdb::builtin();
        let interner = Interner::new();
        let compiled = ppdb.compile(&interner);
        for (seed, sentence) in [
            (11u64, "notify me when it starts raining"),
            (5, "please post a picture on facebook"),
            (9, "remind me to buy milk when i get home"),
            (3, "get my dropbox files and then send a message"),
            (7, "qwerty asdf zxcv"),
        ] {
            let stream = interner.stream_of(sentence);
            for round in 0..20 {
                let mut rng_a = StdRng::seed_from_u64(seed + round);
                let mut rng_b = StdRng::seed_from_u64(seed + round);
                let via_string = ppdb.augment_once(sentence, &mut rng_a);
                let via_stream = compiled
                    .augment_once(&stream, &mut rng_b)
                    .map(|s| interner.render(&s));
                assert_eq!(via_string, via_stream, "seed {} round {round}", seed);
            }
        }
    }

    #[test]
    fn lexicon_is_nontrivial() {
        let ppdb = Ppdb::builtin();
        assert!(ppdb.group_count() > 80);
        assert!(ppdb.pair_count() > 300);
    }

    #[test]
    fn alternatives_exclude_the_phrase_itself() {
        let ppdb = Ppdb::builtin();
        let alts = ppdb.alternatives("notify me");
        assert!(alts.contains(&"alert me"));
        assert!(!alts.contains(&"notify me"));
        assert!(ppdb.alternatives("xyzzy").is_empty());
    }

    #[test]
    fn augmentation_preserves_the_rest_of_the_sentence() {
        let ppdb = Ppdb::builtin();
        let mut rng = StdRng::seed_from_u64(11);
        let variants = ppdb.augment("notify me when it starts raining", 5, &mut rng);
        assert!(!variants.is_empty());
        for v in &variants {
            assert!(v.contains("raining"), "variant lost content: {v}");
            assert_ne!(v, "notify me when it starts raining");
        }
    }

    #[test]
    fn augmentation_returns_none_without_matches() {
        let ppdb = Ppdb::builtin();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(ppdb.augment_once("qwerty asdf zxcv", &mut rng).is_none());
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let ppdb = Ppdb::builtin();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            ppdb.augment("please post a picture on facebook", 3, &mut a),
            ppdb.augment("please post a picture on facebook", 3, &mut b)
        );
    }

    #[test]
    fn multi_word_phrases_match() {
        let ppdb = Ppdb::builtin();
        let mut rng = StdRng::seed_from_u64(9);
        let mut found_multiword = false;
        for _ in 0..50 {
            if let Some(v) = ppdb.augment_once("remind me to buy milk when i get home", &mut rng) {
                if v != "remind me to buy milk when i get home" {
                    found_multiword = true;
                    break;
                }
            }
        }
        assert!(found_multiword);
    }
}
