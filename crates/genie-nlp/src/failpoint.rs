//! failpoint — deterministic, zero-dependency fault injection.
//!
//! A failpoint is a **named site** in production code (`snapshot.write`,
//! `colfmt.read`, `server.accept`, `coalescer.flush`, `reload.retrain`, …)
//! that normally does nothing: the disarmed fast path is a single relaxed
//! atomic load, so sites are always compiled in and cost nothing in a
//! release serve path. Tests and the chaos bench **arm** the registry with a
//! [`FaultPlan`] — a seed plus per-site fault rates — and armed sites start
//! firing I/O errors, panics, delays, or torn writes.
//!
//! The whole point is **determinism**: the outcome of the k-th hit of a
//! site is a pure function of `(plan seed, site name, k)` — see
//! [`planned_outcome`] — independent of thread interleaving, wall clock, or
//! how many *other* sites fired in between. Two chaos runs with the same
//! seed and the same per-site hit counts draw byte-identical fault
//! schedules, so a failing run is replayable from its seed alone, and
//! [`schedule_digest`] lets a bench report pin the planned schedule so a
//! regression gate can prove the committed baseline and the fresh run
//! injected the very same faults.
//!
//! The registry is process-global. Only ever arm it from a test binary or a
//! bench harness — never from serving code — and prefer a scoped
//! [`armed`] guard so a panicking test cannot leave the process armed.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed site does on a hit that fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Surface an injected `io::Error` to the caller.
    Error,
    /// Panic at the site (exercises `catch_unwind` supervision).
    Panic,
    /// Sleep for the site's configured delay, then proceed normally.
    Delay,
    /// For artifact writes: persist a truncated prefix and report success,
    /// simulating a crash mid-write. Sites that cannot tear treat this as
    /// [`FaultKind::Error`].
    Torn,
}

impl FaultKind {
    /// Stable single-letter code used by [`schedule_digest`].
    fn code(self) -> u8 {
        match self {
            FaultKind::Error => b'e',
            FaultKind::Panic => b'p',
            FaultKind::Delay => b'd',
            FaultKind::Torn => b't',
        }
    }
}

/// A fault drawn by [`check`]: the kind plus the site-local hit index that
/// drew it (useful in panic messages and logs).
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// What to do.
    pub kind: FaultKind,
    /// Zero-based index of this hit at its site.
    pub hit: u64,
    /// Sleep length for [`FaultKind::Delay`] outcomes.
    pub delay: Duration,
}

/// Per-site fault rates. Rates are probabilities in `[0, 1]` evaluated in a
/// fixed order (error, panic, delay, torn) against one deterministic draw
/// per hit, so `error(0.5).panic(0.5)` means half the hits error and the
/// other half panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    error_rate: f64,
    panic_rate: f64,
    delay_rate: f64,
    torn_rate: f64,
    delay_ms: u64,
    max_fires: u64,
}

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec {
            error_rate: 0.0,
            panic_rate: 0.0,
            delay_rate: 0.0,
            torn_rate: 0.0,
            delay_ms: 0,
            max_fires: u64::MAX,
        }
    }
}

impl SiteSpec {
    /// A spec that never fires; combine with the rate builders below.
    pub fn new() -> Self {
        SiteSpec::default()
    }

    /// Fire an injected I/O error on this fraction of hits.
    pub fn error(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Panic on this fraction of hits.
    pub fn panic(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sleep `delay_ms` milliseconds on this fraction of hits.
    pub fn delay(mut self, rate: f64, delay_ms: u64) -> Self {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay_ms = delay_ms;
        self
    }

    /// Tear the write (truncate + report success) on this fraction of hits.
    pub fn torn(mut self, rate: f64) -> Self {
        self.torn_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Stop firing after this many faults (hits keep counting); the default
    /// is unlimited.
    pub fn max_fires(mut self, fires: u64) -> Self {
        self.max_fires = fires;
        self
    }
}

/// A seeded fault schedule: which sites fire, at what rates, from one seed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<(String, SiteSpec)>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: Vec::new(),
        }
    }

    /// Add (or replace) a site's spec.
    pub fn site(mut self, name: impl Into<String>, spec: SiteSpec) -> Self {
        let name = name.into();
        self.sites.retain(|(existing, _)| *existing != name);
        self.sites.push((name, spec));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured sites, in insertion order.
    pub fn sites(&self) -> &[(String, SiteSpec)] {
        &self.sites
    }
}

struct SiteEntry {
    spec: SiteSpec,
    hits: u64,
    fired: u64,
}

struct Registry {
    seed: u64,
    sites: HashMap<String, SiteEntry>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Registry>> {
    static REGISTRY: OnceLock<Mutex<Option<Registry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

fn lock_registry() -> std::sync::MutexGuard<'static, Option<Registry>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm the global registry with `plan`. Hit/fire counters start at zero.
pub fn arm(plan: &FaultPlan) {
    let mut guard = lock_registry();
    *guard = Some(Registry {
        seed: plan.seed,
        sites: plan
            .sites
            .iter()
            .map(|(name, spec)| {
                (
                    name.clone(),
                    SiteEntry {
                        spec: *spec,
                        hits: 0,
                        fired: 0,
                    },
                )
            })
            .collect(),
    });
    ARMED.store(true, Ordering::Release);
}

/// Disarm every site; all [`check`] calls go back to the one-load fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *lock_registry() = None;
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Scoped arming: disarms on drop, even if the test panics.
pub struct ArmedGuard(());

/// Arm `plan` for the lifetime of the returned guard.
#[must_use = "the registry disarms when the guard drops"]
pub fn armed(plan: &FaultPlan) -> ArmedGuard {
    arm(plan);
    ArmedGuard(())
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// 64-bit FNV-1a over a byte string (site names, digests).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: a cheap, well-mixed 64→64 bit hash.
fn mix64(mut value: u64) -> u64 {
    value = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    value = (value ^ (value >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    value = (value ^ (value >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    value ^ (value >> 31)
}

/// The unit-interval draw for hit `k` of `site` under `seed`: a pure
/// function, independent of every other site and of thread interleaving.
fn draw(seed: u64, site: &str, k: u64) -> f64 {
    let mixed = mix64(seed ^ mix64(fnv64(site.as_bytes())) ^ mix64(k.wrapping_mul(0x9e37)));
    // 53 high bits → [0, 1) exactly as a f64 can represent it.
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The outcome the k-th hit of `site` draws under `(seed, spec)` — the pure
/// schedule function behind [`check`]. `None` means the hit passes clean.
pub fn planned_outcome(seed: u64, site: &str, spec: &SiteSpec, k: u64) -> Option<FaultKind> {
    let value = draw(seed, site, k);
    let mut threshold = spec.error_rate;
    if value < threshold {
        return Some(FaultKind::Error);
    }
    threshold += spec.panic_rate;
    if value < threshold {
        return Some(FaultKind::Panic);
    }
    threshold += spec.delay_rate;
    if value < threshold {
        return Some(FaultKind::Delay);
    }
    threshold += spec.torn_rate;
    if value < threshold {
        return Some(FaultKind::Torn);
    }
    None
}

/// Digest of the first `horizon` planned outcomes of every site in `plan`,
/// in site insertion order. Pure: equal plans produce equal digests on any
/// machine, which is how `BENCH_robustness.json` proves a fresh chaos run
/// replayed the committed fault schedule.
pub fn schedule_digest(plan: &FaultPlan, horizon: u64) -> u64 {
    let mut bytes = Vec::with_capacity(plan.sites.len() * horizon as usize);
    for (name, spec) in &plan.sites {
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(b'=');
        for k in 0..horizon {
            bytes.push(match planned_outcome(plan.seed, name, spec, k) {
                Some(kind) => kind.code(),
                None => b'.',
            });
        }
        bytes.push(b';');
    }
    fnv64(&bytes)
}

/// Hit `site`: returns the fault to inject, or `None` on the (overwhelmingly
/// common) clean path. Disarmed cost is a single relaxed atomic load.
#[inline]
pub fn check(site: &str) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_armed(site)
}

#[cold]
fn check_armed(site: &str) -> Option<Fault> {
    let mut guard = lock_registry();
    let registry = guard.as_mut()?;
    let seed = registry.seed;
    let entry = registry.sites.get_mut(site)?;
    let k = entry.hits;
    entry.hits += 1;
    if entry.fired >= entry.spec.max_fires {
        return None;
    }
    let kind = planned_outcome(seed, site, &entry.spec, k)?;
    entry.fired += 1;
    let delay = Duration::from_millis(entry.spec.delay_ms);
    Some(Fault {
        kind,
        hit: k,
        delay,
    })
}

/// The injected error surfaced by [`fail_io`]; sniffable by message prefix.
pub const INJECTED_ERROR_PREFIX: &str = "injected fault";

/// Hit `site` and act on the outcome for a fallible I/O-shaped call site:
/// `Error` (and `Torn`, defensively) becomes an `io::Error`, `Panic`
/// panics, `Delay` sleeps then passes, clean hits return `Ok(())`.
pub fn fail_io(site: &str) -> io::Result<()> {
    match check(site) {
        None => Ok(()),
        Some(fault) => match fault.kind {
            FaultKind::Error | FaultKind::Torn => Err(io::Error::other(format!(
                "{INJECTED_ERROR_PREFIX} at `{site}` (hit {})",
                fault.hit
            ))),
            FaultKind::Panic => {
                panic!("failpoint `{site}` injected panic (hit {})", fault.hit)
            }
            FaultKind::Delay => {
                std::thread::sleep(fault.delay);
                Ok(())
            }
        },
    }
}

/// Counters for one site, as captured by [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// The site name.
    pub site: String,
    /// Total hits since arming.
    pub hits: u64,
    /// Hits that drew a fault (and were under `max_fires`).
    pub fired: u64,
}

/// Total hits of `site` since arming (0 when disarmed or unknown).
pub fn hits(site: &str) -> u64 {
    lock_registry()
        .as_ref()
        .and_then(|r| r.sites.get(site))
        .map_or(0, |e| e.hits)
}

/// Faults actually injected at `site` since arming.
pub fn fired(site: &str) -> u64 {
    lock_registry()
        .as_ref()
        .and_then(|r| r.sites.get(site))
        .map_or(0, |e| e.fired)
}

/// Serialize tests that arm the **process-global** registry.
///
/// Any test binary whose tests call [`armed`] must hold this guard for the
/// duration of the test, or parallel test threads race each other's fault
/// plans. A poisoned lock is recovered (a panicking fault-injection test
/// must not cascade into every later one).
pub fn registry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Counters for every armed site, sorted by site name.
pub fn snapshot() -> Vec<SiteStats> {
    let guard = lock_registry();
    let mut stats: Vec<SiteStats> = guard
        .as_ref()
        .map(|registry| {
            registry
                .sites
                .iter()
                .map(|(site, entry)| SiteStats {
                    site: site.clone(),
                    hits: entry.hits,
                    fired: entry.fired,
                })
                .collect()
        })
        .unwrap_or_default();
    stats.sort_by(|a, b| a.site.cmp(&b.site));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests that arm it serialize here.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        registry_test_lock()
    }

    #[test]
    fn disarmed_is_a_no_op() {
        let _serial = serial();
        disarm();
        assert!(!is_armed());
        assert!(check("snapshot.write").is_none());
        assert!(fail_io("snapshot.write").is_ok());
        assert_eq!(hits("snapshot.write"), 0);
    }

    #[test]
    fn planned_outcomes_are_deterministic_and_rate_shaped() {
        let spec = SiteSpec::new().error(0.25);
        let first: Vec<_> = (0..512)
            .map(|k| planned_outcome(7, "colfmt.read", &spec, k))
            .collect();
        let second: Vec<_> = (0..512)
            .map(|k| planned_outcome(7, "colfmt.read", &spec, k))
            .collect();
        assert_eq!(first, second, "same (seed, site, k) must draw identically");

        let fired = first.iter().flatten().count();
        assert!(
            (64..192).contains(&fired),
            "≈25% of 512 draws should fire, got {fired}"
        );
        assert!(first.iter().flatten().all(|k| *k == FaultKind::Error));

        // A different seed or site draws a different schedule.
        let other_seed: Vec<_> = (0..512)
            .map(|k| planned_outcome(8, "colfmt.read", &spec, k))
            .collect();
        let other_site: Vec<_> = (0..512)
            .map(|k| planned_outcome(7, "colfmt.write", &spec, k))
            .collect();
        assert_ne!(first, other_seed);
        assert_ne!(first, other_site);
    }

    #[test]
    fn rate_order_is_error_then_panic_then_delay_then_torn() {
        let spec = SiteSpec::new()
            .error(0.25)
            .panic(0.25)
            .delay(0.25, 1)
            .torn(0.25);
        let outcomes: Vec<_> = (0..2048)
            .map(|k| planned_outcome(3, "x", &spec, k))
            .collect();
        assert!(outcomes.iter().all(|o| o.is_some()), "rates sum to 1");
        for kind in [
            FaultKind::Error,
            FaultKind::Panic,
            FaultKind::Delay,
            FaultKind::Torn,
        ] {
            let count = outcomes.iter().flatten().filter(|k| **k == kind).count();
            assert!(
                (307..717).contains(&count),
                "{kind:?} should take ≈1/4 of 2048 draws, got {count}"
            );
        }
    }

    #[test]
    fn armed_sites_count_hits_and_respect_max_fires() {
        let _serial = serial();
        let plan = FaultPlan::new(11).site("unit.always", SiteSpec::new().error(1.0).max_fires(2));
        let _guard = armed(&plan);
        assert!(is_armed());
        assert!(fail_io("unit.always").is_err());
        assert!(fail_io("unit.always").is_err());
        // Third hit is past max_fires: counted but clean.
        assert!(fail_io("unit.always").is_ok());
        assert_eq!(hits("unit.always"), 3);
        assert_eq!(fired("unit.always"), 2);
        // Unknown sites are clean but cost nothing.
        assert!(fail_io("unit.unknown").is_ok());
        let stats = snapshot();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].site, "unit.always");
    }

    #[test]
    fn armed_schedule_matches_planned_outcomes() {
        let _serial = serial();
        let spec = SiteSpec::new().error(0.5);
        let plan = FaultPlan::new(99).site("unit.replay", spec);
        let _guard = armed(&plan);
        let live: Vec<bool> = (0..64).map(|_| fail_io("unit.replay").is_err()).collect();
        let planned: Vec<bool> = (0..64)
            .map(|k| planned_outcome(99, "unit.replay", &spec, k).is_some())
            .collect();
        assert_eq!(live, planned, "live draws must replay the pure schedule");
    }

    #[test]
    fn schedule_digest_is_pure_and_seed_sensitive() {
        let plan = |seed| {
            FaultPlan::new(seed)
                .site("a", SiteSpec::new().error(0.1))
                .site("b", SiteSpec::new().panic(0.2))
        };
        assert_eq!(
            schedule_digest(&plan(5), 256),
            schedule_digest(&plan(5), 256)
        );
        assert_ne!(
            schedule_digest(&plan(5), 256),
            schedule_digest(&plan(6), 256)
        );
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _serial = serial();
        {
            let _guard = armed(&FaultPlan::new(1).site("unit.scoped", SiteSpec::new().error(1.0)));
            assert!(fail_io("unit.scoped").is_err());
        }
        assert!(!is_armed());
        assert!(fail_io("unit.scoped").is_ok());
    }
}
