//! # genie-nlp — the NLP substrate for Genie
//!
//! The Genie pipeline needs a handful of natural-language utilities that the
//! paper obtains from external tools:
//!
//! * tokenization and argument identification (the paper uses the CoreNLP
//!   tokenizer and a rule-based recognizer to replace numbers, dates, times
//!   and quoted strings with named constants such as `NUMBER_0`, `DATE_1`) —
//!   implemented in [`mod@tokenize`] and [`argident`];
//! * a paraphrase database (the paper uses PPDB) for data augmentation —
//!   implemented in [`ppdb`];
//! * string metrics used by the paraphrase-validation heuristics — in
//!   [`metrics`];
//! * string interning and the [`intern::TokenStream`] utterance
//!   representation the whole synthesis pipeline flows through — in
//!   [`intern`]. [`mod@tokenize`] is the single entry point producing
//!   interned streams ([`tokenize::tokenize_into`]); rendering back to text
//!   happens once, at output time ([`intern::Interner::render_into`]);
//! * the little-endian binary codecs behind the on-disk artifacts —
//!   columnar dataset shards and the serialized string tables shared with
//!   the model snapshots — in [`colfmt`];
//! * the shared sealed-artifact discipline every durable file rides on —
//!   checksum footers, atomic write-temp→fsync→rename, and the
//!   length-prefixed record framing behind the delta journal — in
//!   [`sealed`];
//! * the deterministic fault-injection registry the chaos harness and the
//!   fault-tolerance tests arm — named failpoint sites drawing seeded,
//!   replayable fault schedules — in [`failpoint`].
//!
//! Everything is implemented from scratch; see DESIGN.md for the
//! substitution rationale.

pub mod argident;
pub mod colfmt;
pub mod failpoint;
pub mod intern;
pub mod metrics;
pub mod ppdb;
pub mod sealed;
pub mod tokenize;

pub use argident::{identify_arguments, ArgumentSpan, ArgumentValue, Preprocessed};
pub use intern::{Interner, LocalInterner, Symbol, TokenStream};
pub use ppdb::Ppdb;
pub use tokenize::tokenize;
