//! String interning and token-stream utterances.
//!
//! The synthesis hot path used to build every utterance as a fresh `String`
//! (`format!` chains in the construct rules, `replace` scans over rendered
//! text, re-hashing of rendered bytes for dedup, and a render → re-tokenize
//! round trip before training). This module provides the allocation-free
//! representation the pipeline now uses end-to-end:
//!
//! * [`Symbol`] — a 32-bit id naming one whitespace-delimited text fragment;
//! * [`TokenStream`] — an inline-small sequence of symbols (the utterance
//!   representation; rendering joins fragments with single spaces);
//! * [`Interner`] — the append-only arena mapping symbols ↔ fragments, with
//!   **lock-free resolve** (chunked, pointer-stable storage) and a cached
//!   per-symbol tokenizer expansion so sentences are never re-tokenized;
//! * [`LocalInterner`] — a per-worker overlay for parallel producers, whose
//!   pending fragments are merged into the global arena **in canonical
//!   stream order** ([`Interner::commit`]), making symbol assignment
//!   deterministic and independent of the worker count.
//!
//! # Determinism contract
//!
//! Global symbols are assigned in the order fragments are first interned on
//! the committing (sink) thread. Parallel workers never assign global ids:
//! they intern misses into a [`LocalInterner`], tag them with
//! [`Symbol::LOCAL_BIT`], and ship the pending list to the sink, which
//! commits batches in canonical order and remaps the tagged symbols. A
//! fresh, identically pre-seeded interner therefore assigns identical
//! symbols for any worker count — `genie-templates` has the test matrix.
//!
//! # Ownership rules
//!
//! A [`TokenStream`] is only meaningful together with the [`Interner`] that
//! produced it. Components default to one shared process-wide arena (see
//! `genie_templates::intern::shared`); tests that need id-level determinism
//! construct fresh arenas and thread them through explicitly.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Symbols per storage chunk (must be a power of two).
const CHUNK: usize = 1 << 12;
/// Maximum number of chunks; caps the arena at `CHUNK * MAX_CHUNKS` symbols.
const MAX_CHUNKS: usize = 256;

/// An interned text fragment (one whitespace-delimited word of an
/// utterance). Copy-sized: 4 bytes.
///
/// The high bit distinguishes *local* symbols (assigned by a
/// [`LocalInterner`] inside a parallel worker, meaningless outside it) from
/// *global* symbols (assigned by the [`Interner`], stable for its lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Tag bit marking worker-local symbols awaiting [`Interner::commit`].
    pub const LOCAL_BIT: u32 = 1 << 31;

    /// Reconstruct a symbol from its raw id.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        Symbol(raw)
    }

    /// The raw id (including the local tag bit, when set).
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this symbol is a worker-local id that still needs remapping.
    #[inline]
    pub const fn is_local(self) -> bool {
        self.0 & Self::LOCAL_BIT != 0
    }

    /// The index into the local pending list (local symbols only).
    #[inline]
    const fn local_index(self) -> usize {
        (self.0 & !Self::LOCAL_BIT) as usize
    }
}

/// FNV-1a, used for the lookup maps so interning costs no sip-hash setup
/// and behaves identically on every platform.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut state = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &byte in bytes {
            state ^= byte as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = state;
    }
}

/// `BuildHasher` for FNV-keyed maps.
pub type FnvState = BuildHasherDefault<FnvHasher>;

/// The cached tokenizer expansion of a fragment: what
/// [`crate::tokenize`] would produce for it as a whitespace word.
enum Expansion {
    /// The fragment is already a single clean token (the common case for
    /// synthesized text): its expansion is itself.
    Identity,
    /// The fragment lowercases and/or splits into these tokens.
    Tokens(Box<[Symbol]>),
}

struct Slot {
    text: Arc<str>,
    expansion: Expansion,
}

type Chunk = [OnceLock<Slot>; CHUNK];

/// The append-only, thread-safe symbol arena.
///
/// * `resolve` is **lock-free**: slots live in pointer-stable chunks and are
///   published through `OnceLock`, so readers never contend with writers.
/// * `intern`/`commit` serialize through one lookup map; misses are rare
///   once the arena is pre-seeded with the synthesis vocabulary.
pub struct Interner {
    chunks: [OnceLock<Box<Chunk>>; MAX_CHUNKS],
    lookup: RwLock<HashMap<Arc<str>, u32, FnvState>>,
    len: AtomicU32,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide shared arena. Components that exchange
/// [`TokenStream`]s across crate boundaries (the pipeline, LUInet, the
/// dataset writers) default to this instance; `genie-templates` pre-seeds
/// it with the synthesis vocabulary on first use. Symbol *values* in the
/// shared arena depend on process history — only resolved text and symbol
/// equality ever reach outputs, so that is sound; tests that assert on id
/// assignment construct fresh arenas instead.
pub fn shared() -> &'static Arc<Interner> {
    static SHARED: OnceLock<Arc<Interner>> = OnceLock::new();
    SHARED.get_or_init(|| Arc::new(Interner::new()))
}

impl Interner {
    /// An empty arena.
    pub fn new() -> Self {
        Interner {
            chunks: [const { OnceLock::new() }; MAX_CHUNKS],
            lookup: RwLock::new(HashMap::default()),
            len: AtomicU32::new(0),
        }
    }

    /// Number of interned fragments.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Whether no fragment has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up an already-interned fragment.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.lookup
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(text)
            .map(|&id| Symbol(id))
    }

    /// Intern a fragment, assigning the next id on first sight.
    ///
    /// Only call this from the canonical (sink) thread or in single-threaded
    /// contexts; parallel workers go through a [`LocalInterner`] so that id
    /// assignment stays deterministic.
    pub fn intern(&self, text: &str) -> Symbol {
        if let Some(symbol) = self.get(text) {
            return symbol;
        }
        let mut map = self.lookup.write().unwrap_or_else(|e| e.into_inner());
        Symbol(self.insert_locked(&mut map, text))
    }

    /// Maximum number of symbols the arena can hold.
    pub const CAPACITY: usize = CHUNK * MAX_CHUNKS;

    /// How many more symbols fit before the arena is full.
    pub fn remaining_capacity(&self) -> usize {
        Self::CAPACITY - self.len()
    }

    fn insert_locked(&self, map: &mut HashMap<Arc<str>, u32, FnvState>, text: &str) -> u32 {
        if let Some(&id) = map.get(text) {
            return id;
        }
        // Compute the tokenizer expansion first: its sub-tokens are distinct
        // fragments (lowercased / punctuation-split), interned before the
        // parent so the parent's slot can reference published symbols.
        let mut pieces = Vec::new();
        crate::tokenize::split_token(text, &mut pieces);
        let expansion = if pieces.len() == 1 && pieces[0] == text {
            Expansion::Identity
        } else {
            let symbols: Vec<Symbol> = pieces
                .iter()
                .map(|piece| Symbol(self.insert_locked(map, piece)))
                .collect();
            Expansion::Tokens(symbols.into_boxed_slice())
        };

        let id = self.len.load(Ordering::Acquire);
        // This fires before any state is mutated, so even under the
        // poison-tolerant locks a capacity panic leaves the arena
        // consistent. Servable inputs go through [`Interner::try_commit`],
        // which refuses gracefully instead.
        assert!(
            (id as usize) < Self::CAPACITY,
            "interner capacity exceeded ({} symbols)",
            Self::CAPACITY
        );
        let arc: Arc<str> = Arc::from(text);
        let chunk = self.chunks[id as usize / CHUNK]
            .get_or_init(|| Box::new([const { OnceLock::new() }; CHUNK]));
        chunk[id as usize % CHUNK]
            .set(Slot {
                text: arc.clone(),
                expansion,
            })
            .unwrap_or_else(|_| unreachable!("slot {id} published twice"));
        self.len.store(id + 1, Ordering::Release);
        map.insert(arc, id);
        id
    }

    /// The text of a global symbol. Lock-free.
    ///
    /// # Panics
    /// On local (uncommitted) symbols and ids from another arena.
    #[inline]
    pub fn resolve(&self, symbol: Symbol) -> &str {
        debug_assert!(!symbol.is_local(), "resolving uncommitted local symbol");
        &self.slot(symbol).text
    }

    #[inline]
    fn slot(&self, symbol: Symbol) -> &Slot {
        let id = symbol.0 as usize;
        self.chunks[id / CHUNK]
            .get()
            .and_then(|chunk| chunk[id % CHUNK].get())
            .expect("symbol from another arena or not yet committed")
    }

    /// Append the tokenizer expansion of a global symbol to `out`: exactly
    /// the tokens [`fn@crate::tokenize`] produces for this fragment, from the
    /// cache — no re-tokenization.
    #[inline]
    pub fn push_tokenized(&self, symbol: Symbol, out: &mut TokenStream) {
        match &self.slot(symbol).expansion {
            Expansion::Identity => out.push(symbol),
            Expansion::Tokens(tokens) => out.extend_from_slice(tokens),
        }
    }

    /// The tokenizer expansion of a whole raw stream — the interned
    /// counterpart of `tokenize(render(stream))`.
    pub fn tokenized(&self, raw: &[Symbol]) -> TokenStream {
        let mut out = TokenStream::new();
        for &symbol in raw {
            self.push_tokenized(symbol, &mut out);
        }
        out
    }

    /// Intern every whitespace-separated fragment of `text` into `out`.
    pub fn intern_words(&self, text: &str, out: &mut TokenStream) {
        for word in text.split_whitespace() {
            out.push(self.intern(word));
        }
    }

    /// Tokenize external text straight into a global interned stream — the
    /// interning counterpart of [`fn@crate::tokenize`] for single-threaded
    /// contexts (parallel producers use
    /// [`crate::tokenize::tokenize_into`] with a [`LocalInterner`]).
    pub fn tokenize_text(&self, sentence: &str) -> TokenStream {
        let mut out = TokenStream::new();
        let mut pieces = Vec::new();
        for raw in sentence.split_whitespace() {
            pieces.clear();
            crate::tokenize::split_token(raw, &mut pieces);
            for piece in &pieces {
                out.push(self.intern(piece));
            }
        }
        out
    }

    /// [`Interner::intern_words`] into a fresh stream.
    pub fn stream_of(&self, text: &str) -> TokenStream {
        let mut out = TokenStream::new();
        self.intern_words(text, &mut out);
        out
    }

    /// Render a stream by joining fragments with single spaces into a
    /// reusable buffer (cleared first). This is the single place utterances
    /// become text again — at TSV-write time or for human-facing output.
    pub fn render_into(&self, stream: &[Symbol], buf: &mut String) {
        buf.clear();
        for (i, &symbol) in stream.iter().enumerate() {
            if i > 0 {
                buf.push(' ');
            }
            buf.push_str(self.resolve(symbol));
        }
    }

    /// [`Interner::render_into`] allocating a fresh `String`.
    pub fn render(&self, stream: &[Symbol]) -> String {
        let mut buf = String::new();
        self.render_into(stream, &mut buf);
        buf
    }

    /// Merge a worker's pending fragments into the arena, in pending order,
    /// and return the local → global remap table. Call from the canonical
    /// sink, in stream order, so global ids are worker-count-invariant.
    pub fn commit(&self, pending: &PendingSymbols) -> Remap {
        if pending.fragments.is_empty() {
            return Remap(Vec::new());
        }
        let mut map = self.lookup.write().unwrap_or_else(|e| e.into_inner());
        Remap(
            pending
                .fragments
                .iter()
                .map(|fragment| self.insert_locked(&mut map, fragment))
                .collect(),
        )
    }

    /// [`Interner::commit`] that refuses (returning `None`, committing
    /// nothing) when the pending fragments might not fit — the panic-free
    /// entry point for untrusted input (the serving facade uses it so a
    /// vocabulary-exhaustion attack degrades to a typed error instead of a
    /// capacity panic). The check happens under the write lock, so
    /// concurrent committers cannot race past it.
    pub fn try_commit(&self, pending: &PendingSymbols) -> Option<Remap> {
        if pending.fragments.is_empty() {
            return Some(Remap(Vec::new()));
        }
        let mut map = self.lookup.write().unwrap_or_else(|e| e.into_inner());
        // Worst case every pending fragment expands into itself plus a few
        // tokenizer sub-fragments; 4x is a safe over-estimate.
        if pending.fragments.len().saturating_mul(4) > Self::CAPACITY - self.len() {
            return None;
        }
        Some(Remap(
            pending
                .fragments
                .iter()
                .map(|fragment| self.insert_locked(&mut map, fragment))
                .collect(),
        ))
    }
}

/// The local → global id table produced by [`Interner::commit`].
pub struct Remap(Vec<u32>);

impl Remap {
    /// Whether the batch had no pending fragments (nothing to rewrite).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Rewrite any local symbols in `stream` to their global ids.
    #[inline]
    pub fn apply(&self, stream: &mut TokenStream) {
        if self.0.is_empty() {
            return;
        }
        for symbol in stream.as_mut_slice() {
            if symbol.is_local() {
                *symbol = Symbol(self.0[symbol.local_index()]);
            }
        }
    }
}

/// The pending fragment list a worker ships to the sink for ordered commit.
#[derive(Default)]
pub struct PendingSymbols {
    fragments: Vec<Arc<str>>,
}

impl PendingSymbols {
    /// Whether the worker interned any fragment the global arena lacked.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Number of pending fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }
}

/// A per-worker interning overlay: resolves against the global arena
/// read-only and parks unseen fragments in a local pending list with
/// [`Symbol::LOCAL_BIT`]-tagged ids.
///
/// Streams built through a `LocalInterner` may carry local symbols; the
/// sink must [`Interner::commit`] the worker's [`PendingSymbols`] and
/// [`Remap::apply`] them before the streams escape the batch.
pub struct LocalInterner<'a> {
    global: &'a Interner,
    /// Global arena length at creation: only symbols below this snapshot
    /// are used, so a fragment resolves identically for the whole batch
    /// even if a concurrent sink commit publishes it mid-batch. Without
    /// the snapshot, in-batch symbol equality would depend on commit
    /// timing — i.e. on the worker count.
    limit: u32,
    pending: PendingSymbols,
    local: HashMap<Arc<str>, u32, FnvState>,
    /// Scratch buffer reused by [`LocalInterner::intern_rendered`].
    scratch: String,
}

impl<'a> LocalInterner<'a> {
    /// A fresh overlay over `global`.
    pub fn new(global: &'a Interner) -> Self {
        LocalInterner {
            global,
            limit: global.len.load(Ordering::Acquire),
            pending: PendingSymbols::default(),
            local: HashMap::default(),
            scratch: String::new(),
        }
    }

    /// The underlying global arena.
    pub fn global(&self) -> &'a Interner {
        self.global
    }

    /// Intern one fragment: a global symbol when the arena already has it,
    /// a tagged local symbol otherwise.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(symbol) = self.global.get(text) {
            if symbol.raw() < self.limit {
                return symbol;
            }
        }
        if let Some(&id) = self.local.get(text) {
            return Symbol(id | Symbol::LOCAL_BIT);
        }
        let id = self.pending.fragments.len() as u32;
        assert!(id < Symbol::LOCAL_BIT, "local arena overflow");
        let arc: Arc<str> = Arc::from(text);
        self.pending.fragments.push(arc.clone());
        self.local.insert(arc, id);
        Symbol(id | Symbol::LOCAL_BIT)
    }

    /// Intern every whitespace-separated fragment of `text` into `out`.
    pub fn intern_words(&mut self, text: &str, out: &mut TokenStream) {
        for word in text.split_whitespace() {
            out.push(self.intern(word));
        }
    }

    /// Render `value` through `write` into the reused scratch buffer, then
    /// intern the resulting words into `out`. The allocation-free path for
    /// "describe this value into the utterance".
    pub fn intern_rendered(&mut self, out: &mut TokenStream, write: impl FnOnce(&mut String)) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        write(&mut scratch);
        self.intern_words(&scratch, out);
        self.scratch = scratch;
    }

    /// The text of a symbol (local or global).
    #[inline]
    pub fn resolve(&self, symbol: Symbol) -> &str {
        if symbol.is_local() {
            &self.pending.fragments[symbol.local_index()]
        } else {
            self.global.resolve(symbol)
        }
    }

    /// Append the tokenizer expansion of a symbol (local or global).
    pub fn push_tokenized(&mut self, symbol: Symbol, out: &mut TokenStream) {
        if !symbol.is_local() {
            self.global.push_tokenized(symbol, out);
            return;
        }
        let mut pieces = Vec::new();
        crate::tokenize::split_token(
            &self.pending.fragments[symbol.local_index()].clone(),
            &mut pieces,
        );
        if pieces.len() == 1 && pieces[0].as_str() == self.resolve(symbol) {
            out.push(symbol);
            return;
        }
        for piece in &pieces {
            let sub = self.intern(piece);
            out.push(sub);
        }
    }

    /// The tokenizer expansion of a whole raw stream.
    pub fn tokenized(&mut self, raw: &[Symbol]) -> TokenStream {
        let mut out = TokenStream::new();
        for &symbol in raw {
            self.push_tokenized(symbol, &mut out);
        }
        out
    }

    /// Hand the pending fragments to the sink, resetting the overlay.
    pub fn take_pending(&mut self) -> PendingSymbols {
        self.local.clear();
        std::mem::take(&mut self.pending)
    }

    /// Whether any fragment is pending commit.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// Inline capacity of a [`TokenStream`]: streams up to this many symbols
/// (the vast majority of utterances) never touch the heap.
const INLINE: usize = 14;

enum Repr {
    Inline([Symbol; INLINE]),
    Heap(Vec<Symbol>),
}

/// An utterance as a sequence of interned fragments — the `SmallVec`-style
/// small-buffer sequence the synthesis engine passes around instead of
/// `String`s. Rendering joins the fragments with single spaces
/// ([`Interner::render_into`]); equality and hashing are O(len) over 4-byte
/// ids, with no text access.
pub struct TokenStream {
    len: u32,
    repr: Repr,
}

impl TokenStream {
    /// An empty stream (no allocation).
    #[inline]
    pub const fn new() -> Self {
        TokenStream {
            len: 0,
            repr: Repr::Inline([Symbol(0); INLINE]),
        }
    }

    /// An empty stream with room for `capacity` symbols.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity <= INLINE {
            Self::new()
        } else {
            TokenStream {
                len: 0,
                repr: Repr::Heap(Vec::with_capacity(capacity)),
            }
        }
    }

    /// A stream holding a copy of `symbols`.
    pub fn from_slice(symbols: &[Symbol]) -> Self {
        let mut out = Self::with_capacity(symbols.len());
        out.extend_from_slice(symbols);
        out
    }

    /// Number of symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the stream holds no symbols.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the symbols live in the inline buffer (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// The symbols as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Symbol] {
        match &self.repr {
            Repr::Inline(buf) => &buf[..self.len as usize],
            Repr::Heap(vec) => vec,
        }
    }

    /// The symbols as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Symbol] {
        match &mut self.repr {
            Repr::Inline(buf) => &mut buf[..self.len as usize],
            Repr::Heap(vec) => vec,
        }
    }

    /// Append one symbol, spilling to the heap past the inline capacity.
    #[inline]
    pub fn push(&mut self, symbol: Symbol) {
        match &mut self.repr {
            Repr::Inline(buf) => {
                let len = self.len as usize;
                if len < INLINE {
                    buf[len] = symbol;
                    self.len += 1;
                } else {
                    let mut vec = Vec::with_capacity(INLINE * 2);
                    vec.extend_from_slice(&buf[..len]);
                    vec.push(symbol);
                    self.len += 1;
                    self.repr = Repr::Heap(vec);
                }
            }
            Repr::Heap(vec) => {
                vec.push(symbol);
                self.len += 1;
            }
        }
    }

    /// Append a run of symbols.
    pub fn extend_from_slice(&mut self, symbols: &[Symbol]) {
        match &mut self.repr {
            Repr::Inline(buf) => {
                let len = self.len as usize;
                if len + symbols.len() <= INLINE {
                    buf[len..len + symbols.len()].copy_from_slice(symbols);
                    self.len += symbols.len() as u32;
                } else {
                    let mut vec = Vec::with_capacity((len + symbols.len()).max(INLINE * 2));
                    vec.extend_from_slice(&buf[..len]);
                    vec.extend_from_slice(symbols);
                    self.len += symbols.len() as u32;
                    self.repr = Repr::Heap(vec);
                }
            }
            Repr::Heap(vec) => {
                vec.extend_from_slice(symbols);
                self.len += symbols.len() as u32;
            }
        }
    }

    /// Remove all symbols, keeping the buffer.
    pub fn clear(&mut self) {
        if let Repr::Heap(vec) = &mut self.repr {
            vec.clear();
        }
        self.len = 0;
    }

    /// Truncate to the first `len` symbols (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len as usize {
            if let Repr::Heap(vec) = &mut self.repr {
                vec.truncate(len);
            }
            self.len = len as u32;
        }
    }

    /// Iterate over the symbols.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Symbol>> {
        self.as_slice().iter().copied()
    }

    /// First index at or after `from` where `needle` occurs as a contiguous
    /// run (the token-stream counterpart of `str::find`).
    pub fn find_seq(&self, needle: &[Symbol], from: usize) -> Option<usize> {
        find_seq(self.as_slice(), needle, from)
    }

    /// Replace every non-overlapping occurrence of `old` (left to right)
    /// with `new`, like `str::replace` over whole fragments. Returns the
    /// rewritten stream, or `None` when `old` never occurs.
    pub fn replace_seq(&self, old: &[Symbol], new: &[Symbol]) -> Option<TokenStream> {
        replace_seq(self.as_slice(), old, new, usize::MAX)
    }

    /// Replace only the first occurrence of `old` with `new`
    /// (`str::replacen(…, 1)` over whole fragments).
    pub fn replacen_seq(&self, old: &[Symbol], new: &[Symbol]) -> Option<TokenStream> {
        replace_seq(self.as_slice(), old, new, 1)
    }
}

/// First index at or after `from` where `needle` occurs inside `haystack`.
pub fn find_seq(haystack: &[Symbol], needle: &[Symbol], from: usize) -> Option<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

fn replace_seq(
    haystack: &[Symbol],
    old: &[Symbol],
    new: &[Symbol],
    limit: usize,
) -> Option<TokenStream> {
    let first = find_seq(haystack, old, 0)?;
    let mut out = TokenStream::with_capacity(haystack.len());
    out.extend_from_slice(&haystack[..first]);
    out.extend_from_slice(new);
    let mut cursor = first + old.len();
    let mut done = 1;
    while done < limit {
        match find_seq(haystack, old, cursor) {
            Some(next) => {
                out.extend_from_slice(&haystack[cursor..next]);
                out.extend_from_slice(new);
                cursor = next + old.len();
                done += 1;
            }
            None => break,
        }
    }
    out.extend_from_slice(&haystack[cursor..]);
    Some(out)
}

impl Default for TokenStream {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for TokenStream {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Inline(buf) => TokenStream {
                len: self.len,
                repr: Repr::Inline(*buf),
            },
            Repr::Heap(vec) => TokenStream {
                len: self.len,
                repr: Repr::Heap(vec.clone()),
            },
        }
    }
}

impl PartialEq for TokenStream {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TokenStream {}

impl Hash for TokenStream {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for TokenStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.as_slice().iter().map(|s| s.raw()))
            .finish()
    }
}

impl std::ops::Deref for TokenStream {
    type Target = [Symbol];

    fn deref(&self) -> &[Symbol] {
        self.as_slice()
    }
}

impl AsRef<[Symbol]> for TokenStream {
    fn as_ref(&self) -> &[Symbol] {
        self.as_slice()
    }
}

impl std::iter::FromIterator<Symbol> for TokenStream {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Self {
        let mut out = TokenStream::new();
        for symbol in iter {
            out.push(symbol);
        }
        out
    }
}

impl Extend<Symbol> for TokenStream {
    fn extend<I: IntoIterator<Item = Symbol>>(&mut self, iter: I) {
        for symbol in iter {
            self.push(symbol);
        }
    }
}

impl<'a> IntoIterator for &'a TokenStream {
    type Item = Symbol;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Symbol>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_ordered() {
        let interner = Interner::new();
        let a = interner.intern("show");
        let b = interner.intern("me");
        assert_eq!(interner.intern("show"), a);
        assert_eq!(b.raw(), a.raw() + 1);
        assert_eq!(interner.resolve(a), "show");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn roundtrip_intern_resolve_intern_is_identity() {
        let interner = Interner::new();
        for word in ["alpha", "beta", "8:30am", "#general", "Taylor", "cat."] {
            let symbol = interner.intern(word);
            let resolved = interner.resolve(symbol).to_owned();
            assert_eq!(resolved, word);
            assert_eq!(interner.intern(&resolved), symbol);
        }
    }

    #[test]
    fn render_joins_with_single_spaces() {
        let interner = Interner::new();
        let stream = interner.stream_of("post funny cat on facebook");
        assert_eq!(stream.len(), 5);
        assert_eq!(interner.render(&stream), "post funny cat on facebook");
        let mut buf = String::from("dirty");
        interner.render_into(&stream, &mut buf);
        assert_eq!(buf, "post funny cat on facebook");
    }

    #[test]
    fn tokenized_expansion_matches_tokenize() {
        let interner = Interner::new();
        for text in [
            "post funny cat on facebook",
            "Post \"Hello, World!\" on Twitter at 8:30am",
            "email bob@example.com the file report.pdf",
        ] {
            let raw = interner.stream_of(text);
            let expanded = interner.tokenized(&raw);
            let expected = crate::tokenize(text);
            let got: Vec<String> = expanded
                .iter()
                .map(|s| interner.resolve(s).to_owned())
                .collect();
            assert_eq!(got, expected, "expansion mismatch for {text:?}");
        }
    }

    #[test]
    fn inline_streams_spill_to_heap() {
        let interner = Interner::new();
        let mut stream = TokenStream::new();
        assert!(stream.is_inline());
        for i in 0..INLINE {
            stream.push(interner.intern(&format!("w{i}")));
        }
        assert!(stream.is_inline());
        stream.push(interner.intern("spill"));
        assert!(!stream.is_inline());
        assert_eq!(stream.len(), INLINE + 1);
        assert_eq!(interner.resolve(stream[INLINE]), "spill");
    }

    #[test]
    fn find_and_replace_sequences() {
        let interner = Interner::new();
        let hay = interner.stream_of("a b c a b d");
        let ab: Vec<Symbol> = interner.stream_of("a b").iter().collect();
        let x: Vec<Symbol> = interner.stream_of("x").iter().collect();
        assert_eq!(hay.find_seq(&ab, 0), Some(0));
        assert_eq!(hay.find_seq(&ab, 1), Some(3));
        let all = hay.replace_seq(&ab, &x).unwrap();
        assert_eq!(interner.render(&all), "x c x d");
        let first = hay.replacen_seq(&ab, &x).unwrap();
        assert_eq!(interner.render(&first), "x c a b d");
        assert!(hay.replace_seq(&interner.stream_of("z"), &x).is_none());
    }

    #[test]
    fn local_interner_commits_in_order() {
        let global = Interner::new();
        global.intern("known");
        let mut local = LocalInterner::new(&global);
        let known = local.intern("known");
        assert!(!known.is_local());
        let novel1 = local.intern("novel1");
        let novel2 = local.intern("novel2");
        assert!(novel1.is_local() && novel2.is_local());
        assert_eq!(local.intern("novel1"), novel1);
        assert_eq!(local.resolve(novel1), "novel1");

        let mut stream = TokenStream::from_slice(&[known, novel2, novel1]);
        let pending = local.take_pending();
        assert_eq!(pending.len(), 2);
        let remap = global.commit(&pending);
        remap.apply(&mut stream);
        assert!(stream.iter().all(|s| !s.is_local()));
        assert_eq!(global.render(&stream), "known novel2 novel1");
        // Committed order is pending order: novel1 before novel2.
        assert!(stream[2].raw() < stream[1].raw());
    }

    #[test]
    fn commit_deduplicates_against_racing_batches() {
        let global = Interner::new();
        // Batch A and batch B both miss "shared" (built before any commit).
        let mut a = LocalInterner::new(&global);
        let mut b = LocalInterner::new(&global);
        let sa = a.intern("shared");
        let sb = b.intern("shared");
        let mut stream_a = TokenStream::from_slice(&[sa]);
        let mut stream_b = TokenStream::from_slice(&[sb]);
        global.commit(&a.take_pending()).apply(&mut stream_a);
        global.commit(&b.take_pending()).apply(&mut stream_b);
        assert_eq!(stream_a, stream_b);
        assert_eq!(global.len(), 1);
    }

    #[test]
    fn concurrent_resolve_while_interning() {
        let interner = std::sync::Arc::new(Interner::new());
        let seed: Vec<Symbol> = (0..64)
            .map(|i| interner.intern(&format!("seed{i}")))
            .collect();
        std::thread::scope(|scope| {
            let reader = interner.clone();
            let seeds = seed.clone();
            scope.spawn(move || {
                for _ in 0..2000 {
                    for &s in &seeds {
                        assert!(reader.resolve(s).starts_with("seed"));
                    }
                }
            });
            let writer = interner.clone();
            scope.spawn(move || {
                for i in 0..2000 {
                    writer.intern(&format!("dyn{i}"));
                }
            });
        });
        assert_eq!(interner.len(), 64 + 2000);
    }
}
