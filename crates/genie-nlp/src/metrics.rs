//! String and token-sequence metrics used by the paraphrase validation
//! heuristics (§3.2) and the dataset statistics (§5.2).

use std::collections::BTreeSet;

/// Word-level Levenshtein edit distance between two token sequences
/// (token strings or interned [`crate::intern::Symbol`]s — symbol equality
/// is token equality, so either representation gives the same distance).
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut current = vec![0usize; m + 1];
    for i in 1..=n {
        current[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            current[j] = (prev[j] + 1)
                .min(current[j - 1] + 1)
                .min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[m]
}

/// Jaccard similarity between the token sets of two sentences, in `[0, 1]`.
pub fn jaccard_similarity<T: Ord>(a: &[T], b: &[T]) -> f64 {
    let set_a: BTreeSet<&T> = a.iter().collect();
    let set_b: BTreeSet<&T> = b.iter().collect();
    if set_a.is_empty() && set_b.is_empty() {
        return 1.0;
    }
    let intersection = set_a.intersection(&set_b).count() as f64;
    let union = set_a.union(&set_b).count() as f64;
    intersection / union
}

/// The bigrams of a token sequence.
pub fn bigrams<T: Clone>(tokens: &[T]) -> Vec<(T, T)> {
    tokens
        .windows(2)
        .map(|w| (w[0].clone(), w[1].clone()))
        .collect()
}

/// Fraction of words in `candidate` that do not appear in `reference`
/// (the "new word" rate of §5.2: paraphrases introduce 38% new words on
/// average).
pub fn new_word_rate<T: Ord>(reference: &[T], candidate: &[T]) -> f64 {
    if candidate.is_empty() {
        return 0.0;
    }
    let reference_set: BTreeSet<&T> = reference.iter().collect();
    let new = candidate
        .iter()
        .filter(|w| !reference_set.contains(w))
        .count();
    new as f64 / candidate.len() as f64
}

/// Fraction of bigrams in `candidate` that do not appear in `reference`
/// (65% for paraphrases in §5.2).
pub fn new_bigram_rate<T: Clone + Ord>(reference: &[T], candidate: &[T]) -> f64 {
    let candidate_bigrams = bigrams(candidate);
    if candidate_bigrams.is_empty() {
        return 0.0;
    }
    let reference_bigrams: BTreeSet<(T, T)> = bigrams(reference).into_iter().collect();
    let new = candidate_bigrams
        .iter()
        .filter(|b| !reference_bigrams.contains(b))
        .count();
    new as f64 / candidate_bigrams.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn edit_distance_basics() {
        let a = tokenize("post hello on twitter");
        let b = tokenize("post hello on facebook");
        assert_eq!(edit_distance(&a, &b), 1);
        assert_eq!(edit_distance(&a, &a), 0);
        assert_eq!(edit_distance::<String>(&a, &[]), a.len());
        assert_eq!(edit_distance::<String>(&[], &b), b.len());
    }

    #[test]
    fn jaccard_bounds() {
        let a = tokenize("play a song");
        let b = tokenize("play a song");
        let c = tokenize("lock the door");
        assert!((jaccard_similarity(&a, &b) - 1.0).abs() < 1e-9);
        assert_eq!(jaccard_similarity(&a, &c), 0.0);
        assert!((jaccard_similarity::<String>(&[], &[]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn new_word_and_bigram_rates() {
        let synthesized = tokenize("get my dropbox files and notify me");
        let paraphrase = tokenize("show me what is in my dropbox");
        let word_rate = new_word_rate(&synthesized, &paraphrase);
        let bigram_rate = new_bigram_rate(&synthesized, &paraphrase);
        assert!(word_rate > 0.3, "word rate {word_rate}");
        assert!(
            bigram_rate > word_rate,
            "bigram novelty should exceed word novelty"
        );
        assert_eq!(new_word_rate(&synthesized, &synthesized), 0.0);
        assert_eq!(new_bigram_rate(&synthesized, &synthesized), 0.0);
    }

    #[test]
    fn bigram_extraction() {
        let tokens = tokenize("a b c");
        assert_eq!(
            bigrams(&tokens),
            vec![
                ("a".to_owned(), "b".to_owned()),
                ("b".to_owned(), "c".to_owned())
            ]
        );
        assert!(bigrams(&tokenize("single")).is_empty());
    }
}
