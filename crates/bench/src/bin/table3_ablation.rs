//! Reproduces Table 3: the ablation study of VAPL and model features
//! (canonicalization, keyword parameters, type annotations, parameter
//! expansion, pretrained decoder LM).

use genie::experiments::ablation;
use genie_bench::{pct_range, print_table, scale_from_args};
use thingpedia::Thingpedia;

fn main() -> genie::GenieResult<()> {
    let scale = scale_from_args();
    let library = Thingpedia::builtin();
    let rows = ablation(&library, scale)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.name.clone(),
                pct_range(&row.paraphrase),
                pct_range(&row.validation),
                pct_range(&row.new_program),
            ]
        })
        .collect();
    print_table(
        "Table 3 — ablation study (program accuracy %, mean ± half-range)",
        &["model", "paraphrase", "validation", "new program"],
        &table,
    );
    println!(
        "\nPaper reference: Genie 87.1/67.9/29.9; - canonicalization 80.0/63.2/21.9; - keyword param. 84.0/66.6/25.0;"
    );
    println!("- type annotations 86.9/67.5/31.0; - param. expansion 78.3/66.3/30.5; - decoder LM 88.7/66.8/27.3.");
    println!("Expected shape: removing canonicalization hurts the most; type annotations are within noise.");
    Ok(())
}
