//! Reproduces Fig. 7: the characteristics of the ThingTalk training set
//! (combining paraphrases and synthesized data), plus the headline counts of
//! §5.2.

use genie::experiments::{dataset_characteristics, ExperimentScale};
use genie_bench::{pct, print_table, scale_from_args};
use thingpedia::Thingpedia;

fn main() -> genie::GenieResult<()> {
    let scale: ExperimentScale = scale_from_args();
    let library = Thingpedia::builtin();
    let stats = dataset_characteristics(&library, scale)?;

    let shares = stats.composition.shares();
    let paper = [0.48, 0.20, 0.15, 0.05, 0.13];
    let rows: Vec<Vec<String>> = shares
        .iter()
        .zip(paper)
        .map(|((name, share), paper_share)| vec![(*name).to_owned(), pct(*share), pct(paper_share)])
        .collect();
    print_table(
        "Fig. 7 — training-set characteristics",
        &["bucket", "measured", "paper"],
        &rows,
    );

    print_table(
        "Training-set counts (§5.2)",
        &["statistic", "value"],
        &[
            vec![
                "synthesized sentences".into(),
                stats.synthesized_sentences.to_string(),
            ],
            vec!["paraphrases".into(), stats.paraphrases.to_string()],
            vec![
                "total training sentences".into(),
                stats.total_sentences.to_string(),
            ],
            vec![
                "distinct programs".into(),
                stats.distinct_programs.to_string(),
            ],
            vec![
                "distinct function combinations".into(),
                stats.distinct_function_combinations.to_string(),
            ],
            vec!["paraphrase fraction".into(), pct(stats.paraphrase_fraction)],
            vec![
                "primitive templates".into(),
                stats.primitive_templates.to_string(),
            ],
            vec![
                "templates per function".into(),
                format!("{:.1}", stats.templates_per_function),
            ],
        ],
    );
    Ok(())
}
