//! Reproduces the §5.2 synthesis and dataset statistics: how many sentences
//! and distinct programs the synthesizer produces, the vocabulary growth from
//! paraphrasing and augmentation, and the new-word / new-bigram rates of
//! paraphrases relative to the synthesized sentences they rewrite.

use genie::experiments::{dataset_characteristics, ExperimentScale};
use genie::paraphrase::{ParaphraseConfig, ParaphraseSimulator};
use genie::pipeline::{DataPipeline, PipelineConfig};
use genie_bench::{pct, print_table, scale_from_args};
use genie_nlp::metrics::{new_bigram_rate, new_word_rate};
use genie_templates::GeneratorConfig;
use rand::SeedableRng;
use thingpedia::Thingpedia;

fn main() -> genie::GenieResult<()> {
    let scale: ExperimentScale = scale_from_args();
    let library = Thingpedia::builtin();
    let stats = dataset_characteristics(&library, scale)?;

    print_table(
        "§5.2 — synthesis statistics",
        &["statistic", "measured", "paper (full scale)"],
        &[
            vec![
                "synthesized sentences".into(),
                stats.synthesized_sentences.to_string(),
                "1,724,553".into(),
            ],
            vec![
                "distinct programs in training set".into(),
                stats.distinct_programs.to_string(),
                "680,408".into(),
            ],
            vec![
                "distinct function combinations".into(),
                stats.distinct_function_combinations.to_string(),
                "4,710".into(),
            ],
            vec![
                "paraphrases collected".into(),
                stats.paraphrases.to_string(),
                "24,451".into(),
            ],
            vec![
                "training sentences after augmentation".into(),
                stats.total_sentences.to_string(),
                "3,649,222".into(),
            ],
            vec![
                "paraphrase fraction of training set".into(),
                pct(stats.paraphrase_fraction),
                "19%".into(),
            ],
            vec![
                "distinct words (synthesized only)".into(),
                stats.synthesized_words.to_string(),
                "770".into(),
            ],
            vec![
                "distinct words (full training set)".into(),
                stats.total_words.to_string(),
                "208,429".into(),
            ],
            vec![
                "construct templates (primitive/compound/filter)".into(),
                format!(
                    "{}/{}/{}",
                    stats.construct_templates.0,
                    stats.construct_templates.1,
                    stats.construct_templates.2
                ),
                "35/42/68".into(),
            ],
            vec![
                "primitive templates (per function)".into(),
                format!(
                    "{} ({:.1})",
                    stats.primitive_templates, stats.templates_per_function
                ),
                "1119 (8.5)".into(),
            ],
        ],
    );

    // New-word / new-bigram rates of paraphrases relative to their source.
    let pipeline = DataPipeline::new(
        &library,
        PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(scale.target_per_rule)
                    .seed(3)
                    .build()?,
            )
            .build()?,
    );
    let data = pipeline.build()?;
    let simulator = ParaphraseSimulator::new(ParaphraseConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut word_rates = Vec::new();
    let mut bigram_rates = Vec::new();
    for example in data.synthesized.examples.iter().take(500) {
        for paraphrase in simulator.paraphrase(example, &mut rng) {
            let interner = genie_templates::intern::shared();
            let original = interner.tokenized(&example.utterance);
            let rewritten = interner.tokenized(&paraphrase.utterance);
            word_rates.push(new_word_rate(&original, &rewritten));
            bigram_rates.push(new_bigram_rate(&original, &rewritten));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    print_table(
        "§5.2 — paraphrase novelty",
        &["metric", "measured", "paper"],
        &[
            vec![
                "new words per paraphrase".into(),
                pct(mean(&word_rates)),
                "38%".into(),
            ],
            vec![
                "new bigrams per paraphrase".into(),
                pct(mean(&bigram_rates)),
                "65%".into(),
            ],
        ],
    );
    Ok(())
}
