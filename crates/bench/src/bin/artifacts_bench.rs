//! `artifacts_bench` — sizes, load times and multi-process scale-out of
//! the binary artifacts: columnar dataset shards and model snapshots.
//!
//! The parent process runs the whole artifact lifecycle on the fixed-seed
//! training workload (the same one as the training bench):
//!
//! 1. writes the dataset as both TSV and columnar shard sets and asserts
//!    their merged digests are identical (the cross-format contract);
//! 2. trains a parser, saves a snapshot, loads it back, and asserts the
//!    `weights_digest` and top-k predictions survive the roundtrip;
//! 3. asserts snapshot load is ≥ 10× faster than training from scratch
//!    (the eager rebuild a replica would otherwise pay);
//! 4. spawns one child process per columnar shard (`--processes N` sets the
//!    shard count); each child loads the shared snapshot, reads its own
//!    shard, decodes every example, and prints a one-line JSON report the
//!    parent folds into the committed `BENCH_artifacts.json`.
//!
//! Any violated invariant panics, so a bare run is also the smoke gate CI
//! uses. Flags: `--processes N` (default 2), `--target N` (default 20),
//! `--paraphrase-sample N` (default 80), `--out PATH` (default
//! `BENCH_artifacts.json`), `--dir PATH` (artifact scratch directory).
//! Worker mode (`--worker --snapshot S --shard P`) is internal.

use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

use genie::{read_columnar_shard, DatasetFormat, ShardedDatasetWriter};
use genie_bench::{
    available_cpus, flag_value, json_field, json_number, json_object, json_string,
    training_workload,
};
use genie_nlp::intern::TokenStream;
use genie_templates::dedup::Fnv64;
use luinet::{LuinetParser, ModelConfig, ParserExample};

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1).cloned()
}

/// The training configuration of the committed training-bench baseline,
/// so "snapshot load vs eager rebuild" compares against the same training
/// run the training bench measures.
fn bench_config() -> ModelConfig {
    ModelConfig {
        epochs: 3,
        seed: 11,
        threads: 1,
        ..ModelConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--worker") {
        worker(&args);
    } else {
        parent(&args);
    }
}

/// Child mode: load the shared snapshot, decode one columnar shard, report
/// one JSON line on stdout.
fn worker(args: &[String]) {
    let snapshot_path = flag_str(args, "--snapshot").expect("--worker requires --snapshot");
    let shard_path = flag_str(args, "--shard").expect("--worker requires --shard");

    let load_start = Instant::now();
    let parser = luinet::snapshot::load(Path::new(&snapshot_path)).expect("load snapshot");
    let load_secs = load_start.elapsed().as_secs_f64();

    let examples = read_columnar_shard(Path::new(&shard_path)).expect("read columnar shard");
    let sentences: Vec<&TokenStream> = examples.iter().map(|e| &e.sentence).collect();

    let decode_start = Instant::now();
    let predictions = parser.predict_batch_with_threads(&sentences, 1);
    let decode_secs = decode_start.elapsed().as_secs_f64();
    let decoded_tokens: usize = predictions.iter().map(Vec::len).sum();

    let shard_name = Path::new(&shard_path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    println!(
        "{}",
        json_object(&[
            ("shard", json_string(&shard_name)),
            ("examples", examples.len().to_string()),
            ("decoded_tokens", decoded_tokens.to_string()),
            ("snapshot_load_secs", format!("{load_secs:.6}")),
            ("decode_secs", format!("{decode_secs:.6}")),
            (
                "examples_per_sec",
                format!("{:.1}", examples.len() as f64 / decode_secs.max(1e-9)),
            ),
        ])
    );
}

/// Digest a shard set through `merge_for_each`, restoring the newline each
/// merged line dropped so the digest matches the streamed
/// `render_tsv_row` bytes.
fn merged_digest(paths: &[PathBuf]) -> (u64, usize) {
    let mut hasher = Fnv64::new();
    let mut count = 0usize;
    ShardedDatasetWriter::merge_for_each(paths, |line| {
        hasher.write(line.as_bytes());
        hasher.write(b"\n");
        count += 1;
    })
    .expect("merge shard set");
    (hasher.finish(), count)
}

/// Total size in bytes of a set of files.
fn total_bytes(paths: &[PathBuf]) -> u64 {
    paths
        .iter()
        .map(|p| std::fs::metadata(p).expect("shard metadata").len())
        .sum()
}

/// Write the workload as one shard set, returning (paths, seconds, bytes
/// on disk including the columnar string table).
fn write_shards(
    examples: &[ParserExample],
    dir: &Path,
    shard_count: usize,
    format: DatasetFormat,
) -> (Vec<PathBuf>, f64, u64) {
    let stem = match format {
        DatasetFormat::Tsv => "tsv",
        DatasetFormat::Columnar => "col",
    };
    let start = Instant::now();
    let mut writer = ShardedDatasetWriter::create_with_format(dir, stem, shard_count, format)
        .expect("create shard writer");
    let table_path = writer.table_path().map(Path::to_path_buf);
    for example in examples {
        writer.write(example).expect("write example");
    }
    let paths = writer.finish().expect("finish shard set");
    let secs = start.elapsed().as_secs_f64();
    let mut all_files = paths.clone();
    all_files.extend(table_path);
    let bytes = total_bytes(&all_files);
    (paths, secs, bytes)
}

fn parent(args: &[String]) {
    let processes = flag_value(args, "--processes").unwrap_or(2).max(1);
    let target = flag_value(args, "--target").unwrap_or(20);
    let paraphrase_sample = flag_value(args, "--paraphrase-sample").unwrap_or(80);
    let out_path = flag_str(args, "--out").unwrap_or_else(|| "BENCH_artifacts.json".to_owned());
    let dir = flag_str(args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("genie-artifacts-{}", std::process::id()))
        });
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let cpus = available_cpus();
    let config = bench_config();

    println!(
        "artifacts bench: target={target} paraphrase_sample={paraphrase_sample} \
         processes={processes} cpus={cpus} dir={}",
        dir.display()
    );
    let examples = training_workload(target, paraphrase_sample);
    println!("workload: {} examples", examples.len());

    // Dataset artifacts: both formats, byte-compatible digests.
    let (tsv_paths, tsv_secs, tsv_bytes) =
        write_shards(&examples, &dir, processes, DatasetFormat::Tsv);
    let (col_paths, col_secs, col_bytes) =
        write_shards(&examples, &dir, processes, DatasetFormat::Columnar);
    let (tsv_digest, tsv_count) = merged_digest(&tsv_paths);
    let (col_digest, col_count) = merged_digest(&col_paths);
    assert_eq!(tsv_count, examples.len());
    assert_eq!(col_count, examples.len());
    assert_eq!(
        tsv_digest, col_digest,
        "TSV and columnar merged digests diverged"
    );
    println!(
        "dataset: digest={tsv_digest:016x} tsv={tsv_bytes}B columnar={col_bytes}B \
         ({:.2}x smaller)",
        tsv_bytes as f64 / col_bytes as f64
    );

    // Model snapshot: train once (the eager rebuild every replica would
    // otherwise pay), save, load, verify the roundtrip.
    let train_start = Instant::now();
    let mut parser = LuinetParser::new(config.clone());
    parser.train(&examples);
    let train_secs = train_start.elapsed().as_secs_f64();
    let weights_digest = parser.weights_digest();

    let snapshot_path = dir.join("model.snap");
    let save_start = Instant::now();
    parser.save_snapshot(&snapshot_path).expect("save snapshot");
    let save_secs = save_start.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&snapshot_path)
        .expect("snapshot metadata")
        .len();

    // Best of three loads: a single measurement of a ~20ms load is at the
    // mercy of one bad scheduler timeslice, and the minimum is the honest
    // figure for "what does loading this artifact cost".
    let mut loaded = None;
    let mut load_secs = f64::INFINITY;
    for _ in 0..3 {
        let load_start = Instant::now();
        let parser = LuinetParser::load_snapshot(&snapshot_path).expect("load snapshot");
        load_secs = load_secs.min(load_start.elapsed().as_secs_f64());
        loaded = Some(parser);
    }
    let loaded = loaded.expect("at least one load ran");

    assert_eq!(
        loaded.weights_digest(),
        weights_digest,
        "weights_digest did not survive the snapshot roundtrip"
    );
    for example in examples.iter().take(5) {
        assert_eq!(
            loaded.predict_topk(&example.sentence, 3),
            parser.predict_topk(&example.sentence, 3),
            "predictions did not survive the snapshot roundtrip"
        );
    }
    let load_speedup = train_secs / load_secs.max(1e-9);
    assert!(
        load_speedup >= 10.0,
        "snapshot load ({load_secs:.4}s) must be >= 10x faster than training \
         ({train_secs:.4}s), got {load_speedup:.1}x"
    );
    println!(
        "snapshot: {snapshot_bytes}B save={save_secs:.4}s load={load_secs:.4}s \
         train={train_secs:.3}s load_speedup={load_speedup:.0}x digest={weights_digest:016x}"
    );

    // Multi-process scale-out: one child per columnar shard, all sharing
    // the one snapshot artifact.
    let exe = std::env::current_exe().expect("current exe");
    let wall_start = Instant::now();
    let mut children = Vec::new();
    for shard_path in &col_paths {
        let child = Command::new(&exe)
            .arg("--worker")
            .arg("--snapshot")
            .arg(&snapshot_path)
            .arg("--shard")
            .arg(shard_path)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn worker");
        children.push(child);
    }
    let mut workers = Vec::new();
    for child in children {
        let output = child.wait_with_output().expect("wait for worker");
        assert!(output.status.success(), "worker failed: {}", output.status);
        let stdout = String::from_utf8(output.stdout).expect("worker stdout is UTF-8");
        let report = stdout
            .lines()
            .rev()
            .find(|line| !line.trim().is_empty())
            .expect("worker printed a report")
            .to_owned();
        workers.push(report);
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();

    let total_examples: f64 = workers
        .iter()
        .map(|w| json_number(w, "examples").expect("worker examples"))
        .sum();
    let total_load: f64 = workers
        .iter()
        .map(|w| json_number(w, "snapshot_load_secs").expect("worker load time"))
        .sum();
    assert_eq!(total_examples as usize, examples.len());
    for worker in &workers {
        println!(
            "worker {}: {} examples, {} ex/s",
            json_field(worker, "shard").unwrap_or("?"),
            json_field(worker, "examples").unwrap_or("?"),
            json_field(worker, "examples_per_sec").unwrap_or("?"),
        );
    }
    let aggregate_rate = total_examples / wall_secs.max(1e-9);
    println!(
        "processes: {processes} workers, wall={wall_secs:.3}s, \
         aggregate={aggregate_rate:.0} examples/sec, mean worker load={:.4}s",
        total_load / workers.len() as f64
    );

    let report = json_object(&[
        ("bench", json_string("artifacts")),
        ("smoke", "true".to_owned()),
        ("cpus", cpus.to_string()),
        (
            "config",
            json_object(&[
                ("target_per_rule", target.to_string()),
                ("paraphrase_sample", paraphrase_sample.to_string()),
                ("epochs", config.epochs.to_string()),
                ("seed", config.seed.to_string()),
                ("train_shards", config.train_shards.to_string()),
                ("processes", processes.to_string()),
            ]),
        ),
        ("examples", examples.len().to_string()),
        (
            "dataset",
            json_object(&[
                ("tsv_bytes", tsv_bytes.to_string()),
                ("columnar_bytes", col_bytes.to_string()),
                (
                    "columnar_to_tsv_ratio",
                    format!("{:.4}", col_bytes as f64 / tsv_bytes as f64),
                ),
                ("tsv_write_secs", format!("{tsv_secs:.6}")),
                ("columnar_write_secs", format!("{col_secs:.6}")),
                ("dataset_digest", json_string(&format!("{tsv_digest:016x}"))),
                ("formats_agree", "true".to_owned()),
            ]),
        ),
        (
            "snapshot",
            json_object(&[
                ("bytes", snapshot_bytes.to_string()),
                ("train_secs", format!("{train_secs:.6}")),
                ("save_secs", format!("{save_secs:.6}")),
                ("load_secs", format!("{load_secs:.6}")),
                ("load_speedup_vs_train", format!("{load_speedup:.1}")),
                (
                    "weights_digest",
                    json_string(&format!("{weights_digest:016x}")),
                ),
                ("roundtrip_ok", "true".to_owned()),
            ]),
        ),
        (
            "processes",
            json_object(&[
                ("count", processes.to_string()),
                ("wall_secs", format!("{wall_secs:.6}")),
                ("total_examples", (total_examples as usize).to_string()),
                ("aggregate_examples_per_sec", format!("{aggregate_rate:.1}")),
                ("workers", format!("[{}]", workers.join(", "))),
            ]),
        ),
    ]);
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    println!("report written to {out_path}");

    if flag_str(args, "--dir").is_none() {
        std::fs::remove_dir_all(&dir).expect("clean artifact dir");
    }
}
