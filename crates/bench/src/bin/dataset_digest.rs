//! `dataset_digest` — stream the fused pipeline and print a stable
//! fingerprint of the emitted dataset.
//!
//! The digest is a fixed-key FNV-1a over every emitted `sentence\tprogram`
//! line in canonical stream order, so two runs agree **iff** their datasets
//! are byte-identical. The CI determinism matrix runs this binary at thread
//! counts {1, 2, 8} and shard counts {1, 4, 16} — for **both** dataset
//! formats — and diffs the `--out` files; any divergence fails the build.
//!
//! With `--write-shards`, after the shard set is finished the binary merges
//! it back through [`ShardedDatasetWriter::merge_for_each`] and asserts the
//! merged digest equals the stream digest — the executable proof of the
//! canonical-order contract: for the columnar format this round-trips every
//! example through the binary codec, so TSV-vs-columnar digest equality is
//! checked at every (threads × shards) point of the matrix.
//!
//! Flags: `--threads N` (0 = all cores), `--shards N`, `--batch-size N`,
//! `--seed N`, `--target N` (samples per construct rule),
//! `--paraphrase-sample N`, `--out PATH` (write `digest=… examples=…`, the
//! thread/shard/format-independent comparison key), `--write-shards DIR`
//! (additionally exercise the incremental sharded writers),
//! `--format tsv|columnar` (the shard layout; default `tsv`).

use std::hash::Hasher;

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie::{DatasetFormat, ShardedDatasetWriter};
use genie_bench::flag_value;
use genie_templates::dedup::Fnv64;
use genie_templates::GeneratorConfig;
use thingpedia::Thingpedia;

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1).cloned()
}

fn main() -> genie::GenieResult<()> {
    let args: Vec<String> = std::env::args().collect();
    let threads = flag_value(&args, "--threads").unwrap_or(0);
    let shards = flag_value(&args, "--shards").unwrap_or(8);
    let batch_size = flag_value(&args, "--batch-size").unwrap_or(64);
    let seed = flag_value(&args, "--seed").unwrap_or(42) as u64;
    let target = flag_value(&args, "--target").unwrap_or(25);
    let paraphrase_sample = flag_value(&args, "--paraphrase-sample").unwrap_or(60);
    let format = match flag_str(&args, "--format").as_deref() {
        None | Some("tsv") => DatasetFormat::Tsv,
        Some("columnar") => DatasetFormat::Columnar,
        Some(other) => panic!("unknown --format `{other}` (expected tsv or columnar)"),
    };

    let library = Thingpedia::builtin();
    let config = PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(target)
                .instantiations_per_template(1)
                .seed(seed)
                .threads(threads)
                .shards(shards)
                .batch_size(batch_size)
                .quiet(true)
                .build()?,
        )
        .paraphrase_sample(paraphrase_sample)
        .seed(seed)
        .build()?;
    let pipeline = DataPipeline::new(&library, config);

    let mut writer = flag_str(&args, "--write-shards").map(|dir| {
        ShardedDatasetWriter::create_with_format(dir, "dataset", shards.max(1), format)
            .expect("create shard files")
    });
    let mut hasher = Fnv64::new();
    let mut count = 0usize;
    // One reused render buffer; the row bytes come from the same
    // `render_tsv_row` the sharded writers use, so the digest is the digest
    // of the written files by construction.
    let mut line = String::new();
    let stats = pipeline.run_streaming(NnOptions::default(), |example| {
        line.clear();
        example.render_tsv_row(&mut line);
        hasher.write(line.as_bytes());
        count += 1;
        if let Some(writer) = writer.as_mut() {
            writer.write(&example).expect("write example shard");
        }
    })?;
    let digest = hasher.finish();

    println!(
        "digest={digest:016x} examples={count} synthesized={} paraphrases={} augmented={} \
         threads={threads} shards={shards} batch_size={batch_size} seed={seed} target={target}",
        stats.synthesized, stats.paraphrases, stats.augmented,
    );
    if let Some(writer) = writer {
        let paths = writer.finish().expect("flush shard files");
        // Merge the shard set back and prove the canonical-order contract:
        // the merged stream must hash to the stream digest, whatever the
        // shard count or format.
        let mut merged_hasher = Fnv64::new();
        let mut merged_count = 0usize;
        ShardedDatasetWriter::merge_for_each(&paths, |merged_line| {
            merged_hasher.write(merged_line.as_bytes());
            merged_hasher.write(b"\n");
            merged_count += 1;
        })?;
        let merged_digest = merged_hasher.finish();
        assert_eq!(merged_count, count, "merged shard set lost examples");
        assert_eq!(
            merged_digest, digest,
            "merged {format:?} shard digest diverged from the stream digest"
        );
        println!(
            "shard_files={} format={format:?} merged_digest={merged_digest:016x}",
            paths.len()
        );
    }
    if let Some(path) = flag_str(&args, "--out") {
        // Only thread/shard/format-independent fields go into the
        // comparison file.
        std::fs::write(path, format!("digest={digest:016x} examples={count}\n"))
            .expect("write digest file");
    }
    Ok(())
}
