//! `dataset_digest` — stream the fused pipeline and print a stable
//! fingerprint of the emitted dataset.
//!
//! The digest is a fixed-key FNV-1a over every emitted `sentence\tprogram`
//! line in canonical stream order, so two runs agree **iff** their datasets
//! are byte-identical. The CI determinism matrix runs this binary at thread
//! counts {1, 2, 8} and shard counts {1, 4, 16} and diffs the `--out` files;
//! any divergence fails the build.
//!
//! Flags: `--threads N` (0 = all cores), `--shards N`, `--batch-size N`,
//! `--seed N`, `--target N` (samples per construct rule),
//! `--paraphrase-sample N`, `--out PATH` (write `digest=… examples=…`, the
//! thread/shard-independent comparison key), `--write-shards DIR`
//! (additionally exercise the incremental sharded writers).

use std::hash::Hasher;

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie::ShardedDatasetWriter;
use genie_bench::flag_value;
use genie_templates::dedup::Fnv64;
use genie_templates::GeneratorConfig;
use thingpedia::Thingpedia;

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1).cloned()
}

fn main() -> genie::GenieResult<()> {
    let args: Vec<String> = std::env::args().collect();
    let threads = flag_value(&args, "--threads").unwrap_or(0);
    let shards = flag_value(&args, "--shards").unwrap_or(8);
    let batch_size = flag_value(&args, "--batch-size").unwrap_or(64);
    let seed = flag_value(&args, "--seed").unwrap_or(42) as u64;
    let target = flag_value(&args, "--target").unwrap_or(25);
    let paraphrase_sample = flag_value(&args, "--paraphrase-sample").unwrap_or(60);

    let library = Thingpedia::builtin();
    let config = PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(target)
                .instantiations_per_template(1)
                .seed(seed)
                .threads(threads)
                .shards(shards)
                .batch_size(batch_size)
                .quiet(true)
                .build()?,
        )
        .paraphrase_sample(paraphrase_sample)
        .seed(seed)
        .build()?;
    let pipeline = DataPipeline::new(&library, config);

    let mut writer = flag_str(&args, "--write-shards").map(|dir| {
        ShardedDatasetWriter::create(dir, "dataset", shards.max(1)).expect("create shard files")
    });
    let mut hasher = Fnv64::new();
    let mut count = 0usize;
    // One reused render buffer; the row bytes come from the same
    // `render_tsv_row` the sharded writers use, so the digest is the digest
    // of the written files by construction.
    let mut line = String::new();
    let stats = pipeline.run_streaming(NnOptions::default(), |example| {
        line.clear();
        example.render_tsv_row(&mut line);
        hasher.write(line.as_bytes());
        count += 1;
        if let Some(writer) = writer.as_mut() {
            writer.write(&example).expect("write example shard");
        }
    })?;
    let digest = hasher.finish();

    println!(
        "digest={digest:016x} examples={count} synthesized={} paraphrases={} augmented={} \
         threads={threads} shards={shards} batch_size={batch_size} seed={seed} target={target}",
        stats.synthesized, stats.paraphrases, stats.augmented,
    );
    if let Some(writer) = writer {
        let paths = writer.finish().expect("flush shard files");
        println!("shard_files={}", paths.len());
    }
    if let Some(path) = flag_str(&args, "--out") {
        // Only thread/shard-independent fields go into the comparison file.
        std::fs::write(path, format!("digest={digest:016x} examples={count}\n"))
            .expect("write digest file");
    }
    Ok(())
}
