//! Reproduces Fig. 8: program accuracy of models trained on synthesized data
//! only, paraphrase data only, or with the Genie training strategy, on the
//! paraphrase / validation / cheatsheet / IFTTT test sets.

use genie::experiments::training_strategies;
use genie_bench::{pct_range, print_table, scale_from_args};
use thingpedia::Thingpedia;

fn main() -> genie::GenieResult<()> {
    let scale = scale_from_args();
    let library = Thingpedia::builtin();
    let rows = training_strategies(&library, scale)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.strategy.clone(),
                pct_range(&row.paraphrase),
                pct_range(&row.validation),
                pct_range(&row.cheatsheet),
                pct_range(&row.ifttt),
            ]
        })
        .collect();
    print_table(
        "Fig. 8 — accuracy by training strategy (program accuracy %, mean ± half-range)",
        &[
            "strategy",
            "paraphrase",
            "validation",
            "cheatsheet",
            "ifttt",
        ],
        &table,
    );
    println!(
        "\nPaper reference: Synthesized Only ≈ 48/56/53/51, Paraphrase Only ≈ 82/55/46/49, Genie ≈ 87/68/62/63."
    );
    println!("Expected shape: Genie ≥ both single-source strategies on every realistic test set;");
    println!(
        "Paraphrase Only is competitive on the paraphrase test but drops on cheatsheet/IFTTT data."
    );
    Ok(())
}
