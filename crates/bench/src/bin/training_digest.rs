//! Fingerprint the trained LUInet model for the CI determinism matrix.
//!
//! Trains on the shared smoke workload ([`genie_bench::training_workload`])
//! at an explicit worker count and prints (or writes with `--out`) one line:
//! the weights digest, a digest of `predict_topk` over a workload slice,
//! and the training-set accuracy. The matrix runs this at threads
//! {1, 2, 8} and fails if any line differs — trained weights and every
//! prediction must be byte-identical regardless of the worker count.
//!
//! Flags: `--threads N` (default 0 = all cores), `--seed N`, `--out PATH`.

use std::hash::Hasher;

use genie_bench::flag_value;
use genie_nlp::TokenStream;
use luinet::{LuinetParser, ModelConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = flag_value(&args, "--threads").unwrap_or(0);
    let seed = flag_value(&args, "--seed").unwrap_or(11) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let examples = genie_bench::training_workload(20, 80);
    let mut parser = LuinetParser::new(ModelConfig {
        epochs: 3,
        seed,
        threads,
        ..ModelConfig::default()
    });
    parser.train(&examples);

    let sentences: Vec<&TokenStream> = examples.iter().take(64).map(|e| &e.sentence).collect();
    let mut hasher = genie_templates::dedup::Fnv64::new();
    for predictions in parser.predict_topk_batch(&sentences, 3, threads) {
        for prediction in predictions {
            hasher.write(prediction.tokens.join(" ").as_bytes());
            hasher.write(&prediction.score.to_bits().to_le_bytes());
        }
    }
    let line = format!(
        "weights={:016x} topk={:016x} accuracy={:.6}",
        parser.weights_digest(),
        hasher.finish(),
        parser.exact_match_accuracy(&examples),
    );
    println!("{line}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{line}\n")).expect("write digest file");
    }
}
