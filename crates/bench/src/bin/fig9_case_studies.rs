//! Reproduces Fig. 9: the three case studies (Spotify skill, TACL access
//! control, TT+A aggregation), comparing the Wang-et-al Baseline with Genie
//! on cheatsheet test data.

use genie::experiments::case_studies;
use genie_bench::{pct_range, print_table, scale_from_args};

fn main() -> genie::GenieResult<()> {
    let scale = scale_from_args();
    let rows = case_studies(scale)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.case_study.clone(),
                pct_range(&row.baseline),
                pct_range(&row.genie),
                format!("{:+.1}", (row.genie.mean - row.baseline.mean) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — case studies on cheatsheet test data (program accuracy %)",
        &["case study", "baseline", "genie", "improvement"],
        &table,
    );
    println!("\nPaper reference: Spotify 51→82 (+31), TACL 57→82 (+25), TT+A 48→67 (+19).");
    println!("Expected shape: Genie improves over the Baseline on every case study.");
    Ok(())
}
