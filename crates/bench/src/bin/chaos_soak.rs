//! Chaos soak: boots a **live** `genie-server`, arms the deterministic
//! failpoint registry (`genie_nlp::failpoint`) with a seeded fault plan,
//! and hammers the socket with concurrent keep-alive clients while faults
//! fire inside the acceptors, the request handlers, the coalescer
//! dispatcher, and the reload builder. Hard assertions (the process exits
//! non-zero on any):
//!
//! * **every response is valid** under the fault model — byte-identical to
//!   the in-process rendering, a typed 4xx/5xx with a known error code
//!   (`injected_fault`, `internal_panic`, `batch_crashed`, `overloaded`,
//!   `deadline_exceeded`, …), or a cleanly dropped connection (reconnect
//!   and carry on) — never a malformed body, a silent wrong answer, or a
//!   hang;
//! * **zero hung connections**: no read ever times out, in any phase;
//! * reloads driven through the fault storm either swap (version bumps by
//!   one) or fail typed (version unchanged, old world still serving):
//!   **the world version is monotonic** throughout;
//! * after disarming, a full byte-identity pass against the then-current
//!   world must be 100% clean — **the server recovers to steady state**;
//!   injected faults never leave residue.
//!
//! The fault schedule is a pure function of `(seed, site, hit-index)`:
//! `BENCH_robustness.json` records `fault_schedule_digest` over a fixed
//! horizon, and the CI gate pins it, so every soak run is byte-replayable
//! from its seed.
//!
//! Usage:
//!   chaos_soak [--seed N] [--clients N] [--requests N] [--swaps N] [--out BENCH_robustness.json]
//!
//! `GENIE_BENCH_SMOKE=1` shrinks the workload to CI-smoke size.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use genie::engine::{GenieEngine, ParseRequest};
use genie::live::LiveWorld;
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie_bench::{flag_value, json_object, json_string};
use genie_nlp::failpoint::{self, FaultPlan, SiteSpec};
use genie_server::{api, GenieServer, ServerConfig};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;
use thingpedia::Thingpedia;

/// Fixed default seed: the committed `BENCH_robustness.json` was produced
/// with it, and the CI gate pins the schedule digest it induces.
const DEFAULT_SEED: u64 = 0x9E3779B97F4A7C15;
/// Hits per site over which the schedule digest is computed.
const DIGEST_HORIZON: u64 = 4096;
/// Budget after which a blocked read counts as a hung connection.
const HANG_BUDGET: Duration = Duration::from_secs(20);

/// Error codes a faulted server may legitimately answer with.
const TYPED_FAULT_CODES: &[&str] = &[
    "injected_fault",
    "internal_panic",
    "batch_crashed",
    "overloaded",
    "deadline_exceeded",
    "quota_exhausted",
    "shutting_down",
    "reload_in_progress",
    // Injected I/O faults and torn artifacts surface through the engine's
    // own typed codes (`genie_server::api::code_for_error`).
    "io",
    "corrupt_artifact",
];

/// The parse-path fault storm (phase A): connection drops and acceptor
/// kills at accept, handler errors and panics, dispatcher crashes.
fn parse_storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .site(
            "server.accept",
            SiteSpec::new().error(0.15).panic(0.10).delay(0.05, 2),
        )
        .site("server.handle", SiteSpec::new().error(0.03).panic(0.03))
        .site("coalescer.flush", SiteSpec::new().error(0.02).panic(0.02))
}

/// The reload fault storm (phase B): most rebuilds are injected to fail or
/// panic inside `reload.retrain`; every failure must leave the old world
/// serving and the version untouched.
fn reload_storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0xB10C_FA17)
        .site("reload.retrain", SiteSpec::new().error(0.40).panic(0.30))
}

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1).cloned()
}

fn pipeline_config(target_per_rule: usize, paraphrase_sample: usize) -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(target_per_rule)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(1)
                .shards(4)
                .quiet(true)
                .build()
                .expect("valid synthesis config"),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .expect("valid paraphrase config"),
        )
        .paraphrase_sample(paraphrase_sample)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .expect("valid pipeline config")
}

/// Utterances from the base library's training distribution — classes the
/// reload deltas never touch, so they must keep parsing across swaps.
fn workload(requests: usize, config: &PipelineConfig) -> Vec<ParseRequest> {
    let library = Thingpedia::builtin();
    let pipeline = genie::DataPipeline::new(&library, *config);
    let mut commands: Vec<String> = Vec::new();
    pipeline
        .run_streaming(genie::NnOptions::default(), |example| {
            if commands.len() < 48 {
                commands.push(example.sentence_text());
            }
        })
        .expect("builtin pipeline streams");
    (0..requests)
        .map(|i| ParseRequest::new(commands[i % commands.len()].clone()))
        .collect()
}

// --- A minimal blocking HTTP client with hang detection ----------------

struct Response {
    status: u16,
    body: String,
}

/// What one read attempt produced.
enum Wire {
    Response(Response),
    /// The server closed (or reset) the connection — a legitimate outcome
    /// of `server.accept` faults and post-panic connection teardown.
    Closed,
    /// The read blocked past [`HANG_BUDGET`] — never legitimate.
    Hung,
}

fn read_wire<R: BufRead>(reader: &mut R) -> Wire {
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) => return Wire::Closed,
        Ok(_) => {}
        Err(error) => return classify_read_error(&error),
    }
    let Some(status) = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
    else {
        return Wire::Closed;
    };
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Wire::Closed,
            Ok(_) => {}
            Err(error) => return classify_read_error(&error),
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if let Err(error) = reader.read_exact(&mut body) {
        return classify_read_error(&error);
    }
    match String::from_utf8(body) {
        Ok(body) => Wire::Response(Response { status, body }),
        Err(_) => Wire::Closed,
    }
}

fn classify_read_error(error: &std::io::Error) -> Wire {
    match error.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Wire::Hung,
        _ => Wire::Closed,
    }
}

fn raw_request(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len(),
    )
}

fn parse_body(utterance: &str) -> String {
    format!(
        "{{\"utterance\": {}}}",
        genie_server::json::escape(utterance)
    )
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    // Under the fault storm every acceptor can be momentarily dead (an
    // injected panic at accept kills one; the supervisor respawns it within
    // its watchdog tick), so a refused connect is expected weather — retry
    // inside the hang budget and only a server that never comes back fails.
    let deadline = Instant::now() + HANG_BUDGET;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(HANG_BUDGET))
                    .expect("set the hang-detection read timeout");
                let reader = BufReader::new(stream.try_clone().expect("clone client stream"));
                return (stream, reader);
            }
            Err(error) => {
                assert!(
                    Instant::now() < deadline,
                    "server never came back within the hang budget: {error}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Is this body a well-formed typed error with a known code?
fn is_typed_fault(status: u16, body: &str) -> bool {
    (400..600).contains(&status)
        && body.starts_with("{\"error\":")
        && TYPED_FAULT_CODES
            .iter()
            .any(|code| body.contains(&format!("\"code\": \"{code}\"")))
}

/// Per-client tallies from a chaos pass.
#[derive(Default)]
struct Tally {
    identical: u64,
    typed_faults: u64,
    reconnects: u64,
    invalid: u64,
    hung: u64,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.identical += other.identical;
        self.typed_faults += other.typed_faults;
        self.reconnects += other.reconnects;
        self.invalid += other.invalid;
        self.hung += other.hung;
    }
}

/// One chaos client: serve `jobs` over a keep-alive connection under the
/// armed fault plan, reconnecting when the server drops the connection.
/// `strict_identity`: a 2xx answer must be byte-identical to the expected
/// rendering (phase A and the recovery pass — the world is not changing);
/// otherwise any well-formed 2xx/422 parse outcome is accepted (phase B,
/// where reloads may swap the world mid-pass).
fn run_chaos_client(
    addr: SocketAddr,
    jobs: Vec<(String, u16, String)>,
    strict_identity: bool,
) -> Tally {
    let mut tally = Tally::default();
    let (mut writer, mut reader) = connect(addr);
    for (job_index, (utterance, expected_status, expected_body)) in jobs.into_iter().enumerate() {
        // Churn connections on purpose: keep-alive would hit the accept
        // path only once per client, leaving the `server.accept` fault
        // site (and the acceptor respawn machinery behind it) unexercised.
        if job_index > 0 && job_index % 8 == 0 {
            (writer, reader) = connect(addr);
        }
        let wire = raw_request("POST", "/v1/parse", &parse_body(&utterance));
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if writer.write_all(wire.as_bytes()).is_err() {
                tally.reconnects += 1;
                if attempts >= 4 {
                    break; // dropped repeatedly — a valid outcome; move on
                }
                (writer, reader) = connect(addr);
                continue;
            }
            match read_wire(&mut reader) {
                Wire::Response(response) => {
                    let matches_oracle = (response.status, response.body.as_str())
                        == (expected_status, expected_body.as_str());
                    let acceptable_parse = !strict_identity
                        && (response.status == 422 || (200..300).contains(&response.status));
                    if matches_oracle || acceptable_parse {
                        tally.identical += 1;
                    } else if is_typed_fault(response.status, &response.body) {
                        tally.typed_faults += 1;
                        // A handler panic closes the connection after
                        // answering; reconnect lazily on the next failure.
                    } else {
                        eprintln!(
                            "chaos: INVALID response for `{utterance}`: {} {}",
                            response.status, response.body
                        );
                        tally.invalid += 1;
                    }
                    break;
                }
                Wire::Closed => {
                    tally.reconnects += 1;
                    if attempts >= 4 {
                        break;
                    }
                    (writer, reader) = connect(addr);
                }
                Wire::Hung => {
                    eprintln!("chaos: HUNG connection waiting on `{utterance}`");
                    tally.hung += 1;
                    return tally;
                }
            }
        }
    }
    tally
}

fn probe(addr: SocketAddr, wire: &[u8]) -> Wire {
    let (mut writer, mut reader) = connect(addr);
    if writer.write_all(wire).is_err() {
        return Wire::Closed;
    }
    read_wire(&mut reader)
}

/// Probe `GET /v1/admin/version`, retrying dropped connections.
fn fetch_version(addr: SocketAddr) -> u64 {
    for _ in 0..8 {
        match probe(addr, raw_request("GET", "/v1/admin/version", "").as_bytes()) {
            Wire::Response(response) => {
                return genie_bench::json_number(&response.body, "world_version")
                    .expect("version body has world_version") as u64;
            }
            Wire::Closed => continue,
            Wire::Hung => panic!("hung fetching /v1/admin/version"),
        }
    }
    panic!("could not fetch /v1/admin/version in 8 attempts");
}

/// Expected `(utterance, status, body)` triples rendered in-process
/// through the server's own rendering functions — the byte-identity
/// oracle for socket responses against `engine`.
fn expected_responses(
    engine: &GenieEngine,
    workload: &[ParseRequest],
) -> Vec<(String, u16, String)> {
    let expected = workload
        .iter()
        .zip(engine.parse_batch(workload))
        .map(|(request, result)| {
            let (status, _, body) = api::render_result(&result);
            (request.utterance.clone(), status, body)
        })
        .collect();
    engine.clear_cache();
    expected
}

/// Split the oracle round-robin across `clients`.
fn client_shares(
    expected: &[(String, u16, String)],
    clients: usize,
) -> Vec<Vec<(String, u16, String)>> {
    (0..clients)
        .map(|client| {
            expected
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == client)
                .map(|(_, job)| job.clone())
                .collect()
        })
        .collect()
}

fn run_pass(
    addr: SocketAddr,
    expected: &[(String, u16, String)],
    clients: usize,
    strict_identity: bool,
) -> (Tally, f64) {
    let start = Instant::now();
    let handles: Vec<_> = client_shares(expected, clients)
        .into_iter()
        .map(|jobs| std::thread::spawn(move || run_chaos_client(addr, jobs, strict_identity)))
        .collect();
    let mut tally = Tally::default();
    for handle in handles {
        tally.merge(&handle.join().expect("chaos client thread"));
    }
    (tally, start.elapsed().as_secs_f64())
}

/// Silence the default panic hook's backtrace spew for *injected* panics —
/// they are the workload here, not failures. Everything else still prints.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if message.contains("injected panic") {
            return;
        }
        previous(info);
    }));
}

fn scrape_metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .map(|rest| rest.trim().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing"))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let seed = flag_str(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let clients = flag_value(&args, "--clients").unwrap_or(4).max(1);
    let requests = flag_value(&args, "--requests").unwrap_or(if smoke { 160 } else { 480 });
    let swaps = flag_value(&args, "--swaps")
        .unwrap_or(if smoke { 4 } else { 8 })
        .max(2);
    let out_path = flag_str(&args, "--out").unwrap_or_else(|| "BENCH_robustness.json".to_owned());

    quiet_injected_panics();

    let parse_plan = parse_storm_plan(seed);
    let reload_plan = reload_storm_plan(seed);
    let parse_digest = failpoint::schedule_digest(&parse_plan, DIGEST_HORIZON);
    let reload_digest = failpoint::schedule_digest(&reload_plan, DIGEST_HORIZON);

    let target_per_rule = if smoke { 10 } else { 15 };
    let paraphrase_sample = if smoke { 20 } else { 40 };
    let pipeline = pipeline_config(target_per_rule, paraphrase_sample);
    let model = ModelConfig {
        epochs: 4,
        seed: 7,
        threads: 1,
        ..ModelConfig::default()
    };
    let workload = workload(requests, &pipeline);

    let boot_start = Instant::now();
    let live = Arc::new(
        LiveWorld::bootstrap(Thingpedia::builtin(), pipeline, model)
            .expect("bootstrap the live world"),
    );
    let bootstrap_secs = boot_start.elapsed().as_secs_f64();

    let steady_expected = expected_responses(live.engine(), &workload);

    let server = GenieServer::bind_live(
        live.clone(),
        ServerConfig::builder()
            .worker_threads((clients + 2).min(32))
            .max_inflight(256)
            .request_deadline(Duration::from_secs(10))
            .build()
            .expect("valid server config"),
    )
    .expect("bind the chaos server");
    let addr = server.local_addr();
    println!(
        "chaos-soak: listening on {addr} (bootstrap {bootstrap_secs:.3}s, seed {seed:#x}, \
         schedule digests {parse_digest:#018x}/{reload_digest:#018x})"
    );

    // --- Warm-up: one clean identity pass, faults disarmed.
    let (warm, _) = run_pass(addr, &steady_expected, clients, true);
    assert_eq!(warm.invalid, 0, "clean warm-up pass had invalid responses");
    assert_eq!(warm.hung, 0, "clean warm-up pass hung");
    let version_at_start = fetch_version(addr);

    // --- Phase A: parse-path fault storm. The world never changes, so
    // every 2xx must still be byte-identical; faults must surface as typed
    // errors or dropped connections, never as wrong answers or hangs.
    let chaos_start = Instant::now();
    let (storm, storm_fault_stats) = {
        let _armed = failpoint::armed(&parse_plan);
        let (storm, storm_secs) = run_pass(addr, &steady_expected, clients, true);
        println!(
            "chaos-soak: storm pass: {} identical, {} typed faults, {} reconnects, \
             {} invalid, {} hung ({:.1}s)",
            storm.identical,
            storm.typed_faults,
            storm.reconnects,
            storm.invalid,
            storm.hung,
            storm_secs,
        );
        // Snapshot before the guard drops: disarming clears the counters.
        let stats: Vec<String> = failpoint::snapshot()
            .into_iter()
            .map(|site| {
                json_object(&[
                    ("site", json_string(&site.site)),
                    ("hits", site.hits.to_string()),
                    ("fired", site.fired.to_string()),
                ])
            })
            .collect();
        (storm, stats)
    };

    // --- Phase B: reload storm. Most rebuilds fail by injection; every
    // failure must leave the old world serving (version unchanged), every
    // success bumps the version by exactly one: monotonic throughout.
    // Light client load keeps flowing (typed-outcome mode: a reload mid-
    // pass may legitimately change 2xx bodies).
    let stop = Arc::new(AtomicBool::new(false));
    let reload_load = {
        // Last use of the steady oracle: the recovery pass re-derives its
        // own from the (possibly swapped) live engine.
        let expected = steady_expected;
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut tally = Tally::default();
            while !stop.load(Ordering::Relaxed) {
                let (pass, _) = run_pass(addr, &expected, 2, false);
                tally.merge(&pass);
            }
            tally
        })
    };
    let mut reloads_ok = 0u64;
    let mut reloads_failed = 0u64;
    let mut version_monotonic = true;
    let mut last_version = fetch_version(addr);
    assert_eq!(
        last_version, version_at_start,
        "phase A must not swap worlds"
    );
    {
        let _armed = failpoint::armed(&reload_plan);
        for swap in 1..=swaps {
            let body = format!(
                "{{\"op\": \"upsert\", \"class\": {}, \"templates\": \
                 [{{\"category\": \"vp\", \"function\": \"set_power\", \"utterance\": {}}}], \
                 \"mode\": \"full\", \"wait\": true}}",
                genie_server::json::escape(
                    "class @com.chaos.lights { action set_power(in req power : Enum(on, off)); }"
                ),
                genie_server::json::escape(&format!("chaos the lights $power v{swap}")),
            );
            let outcome = probe(
                addr,
                raw_request("POST", "/v1/admin/reload", &body).as_bytes(),
            );
            let version = fetch_version(addr);
            match outcome {
                Wire::Response(response) if response.status == 200 => {
                    reloads_ok += 1;
                    if version != last_version + 1 {
                        eprintln!(
                            "chaos: reload {swap} succeeded but version went {last_version} -> {version}"
                        );
                        version_monotonic = false;
                    }
                }
                Wire::Response(response) if is_typed_fault(response.status, &response.body) => {
                    reloads_failed += 1;
                    if version != last_version {
                        eprintln!(
                            "chaos: reload {swap} failed typed but version went \
                             {last_version} -> {version}"
                        );
                        version_monotonic = false;
                    }
                }
                Wire::Response(response) => {
                    panic!(
                        "reload {swap}: unexpected response {} {}",
                        response.status, response.body
                    );
                }
                Wire::Closed => panic!("reload {swap}: admin connection dropped"),
                Wire::Hung => panic!("reload {swap}: admin connection hung"),
            }
            if version < last_version {
                version_monotonic = false;
            }
            last_version = version;
        }
    }
    stop.store(true, Ordering::Relaxed);
    let reload_tally = reload_load.join().expect("reload-phase load thread");
    let chaos_secs = chaos_start.elapsed().as_secs_f64();
    println!(
        "chaos-soak: reload storm: {reloads_ok} swapped, {reloads_failed} failed typed, \
         version {version_at_start} -> {last_version} (monotonic: {version_monotonic})"
    );

    // --- Recovery: disarm everything, re-derive the oracle from the
    // now-current world, and require a 100% clean byte-identity pass.
    assert!(!failpoint::is_armed(), "fault plans must be disarmed");
    let recovered_expected = expected_responses(live.engine(), &workload);
    let (recovery, recovery_secs) = run_pass(addr, &recovered_expected, clients, true);
    println!(
        "chaos-soak: recovery pass: {} identical, {} typed faults, {} invalid, {} hung ({:.1}s)",
        recovery.identical, recovery.typed_faults, recovery.invalid, recovery.hung, recovery_secs,
    );

    let metrics_text = server.metrics_text();
    let panics = scrape_metric(&metrics_text, "server_panics_total");
    let respawns = scrape_metric(&metrics_text, "server_acceptor_respawns_total");
    let shed = scrape_metric(&metrics_text, "server_shed_total");
    let deadline_exceeded = scrape_metric(&metrics_text, "server_deadline_exceeded_total");
    let reload_failed_metric = scrape_metric(&metrics_text, "server_reload_failed_total");

    let all_responses_valid = storm.invalid == 0 && reload_tally.invalid == 0;
    let recovered_to_steady_state = recovery.invalid == 0
        && recovery.typed_faults == 0
        && recovery.reconnects == 0
        && recovery.identical == recovered_expected.len() as u64;
    let zero_hung_connections =
        storm.hung == 0 && reload_tally.hung == 0 && recovery.hung == 0 && warm.hung == 0;

    let report = json_object(&[
        ("bench", json_string("chaos_soak")),
        ("smoke", smoke.to_string()),
        (
            "config",
            json_object(&[
                ("seed", format!("\"{seed:#018x}\"")),
                ("clients", clients.to_string()),
                ("requests", requests.to_string()),
                ("swaps", swaps.to_string()),
                ("digest_horizon", DIGEST_HORIZON.to_string()),
                ("target_per_rule", target_per_rule.to_string()),
                ("paraphrase_sample", paraphrase_sample.to_string()),
            ]),
        ),
        (
            "fault_schedule_digest",
            format!("\"{parse_digest:#018x}-{reload_digest:#018x}\""),
        ),
        (
            "storm_fault_sites",
            format!("[{}]", storm_fault_stats.join(", ")),
        ),
        (
            "storm",
            json_object(&[
                ("identical", storm.identical.to_string()),
                ("typed_faults", storm.typed_faults.to_string()),
                ("reconnects", storm.reconnects.to_string()),
                ("invalid", storm.invalid.to_string()),
                ("hung", storm.hung.to_string()),
            ]),
        ),
        (
            "reload_storm",
            json_object(&[
                ("attempted", swaps.to_string()),
                ("swapped", reloads_ok.to_string()),
                ("failed_typed", reloads_failed.to_string()),
                ("version_before", version_at_start.to_string()),
                ("version_after", last_version.to_string()),
                ("load_identical", reload_tally.identical.to_string()),
                ("load_typed_faults", reload_tally.typed_faults.to_string()),
                ("load_invalid", reload_tally.invalid.to_string()),
            ]),
        ),
        (
            "recovery",
            json_object(&[
                ("identical", recovery.identical.to_string()),
                ("typed_faults", recovery.typed_faults.to_string()),
                ("invalid", recovery.invalid.to_string()),
            ]),
        ),
        (
            "server_metrics",
            json_object(&[
                ("server_panics_total", panics.to_string()),
                ("server_acceptor_respawns_total", respawns.to_string()),
                ("server_shed_total", shed.to_string()),
                (
                    "server_deadline_exceeded_total",
                    deadline_exceeded.to_string(),
                ),
                (
                    "server_reload_failed_total",
                    reload_failed_metric.to_string(),
                ),
            ]),
        ),
        ("chaos_secs", format!("{chaos_secs:.3}")),
        ("bootstrap_secs", format!("{bootstrap_secs:.3}")),
        ("all_responses_valid", all_responses_valid.to_string()),
        ("version_monotonic", version_monotonic.to_string()),
        (
            "recovered_to_steady_state",
            recovered_to_steady_state.to_string(),
        ),
        ("zero_hung_connections", zero_hung_connections.to_string()),
    ]);
    std::fs::write(&out_path, format!("{report}\n")).expect("write the robustness report");
    println!("chaos-soak: report written to {out_path}");

    assert!(all_responses_valid, "invalid responses under chaos");
    assert!(version_monotonic, "world version went backwards");
    assert!(
        recovered_to_steady_state,
        "post-chaos recovery pass was not clean"
    );
    assert!(zero_hung_connections, "a connection hung");
    println!("chaos-soak: PASS");
}
