//! Reproduces the §5.5 error analysis: fine-grained accuracy of the Genie
//! model on the validation set (syntactic correctness, type correctness,
//! primitive-vs-compound identification, device accuracy, function accuracy,
//! full program accuracy).

use genie::experiments::error_analysis;
use genie_bench::{pct, print_table, scale_from_args};
use thingpedia::Thingpedia;

fn main() -> genie::GenieResult<()> {
    let scale = scale_from_args();
    let library = Thingpedia::builtin();
    let result = error_analysis(&library, scale)?;
    print_table(
        "§5.5 — error analysis on the validation set",
        &["metric", "measured", "paper"],
        &[
            vec!["sentences".into(), result.count.to_string(), "1480".into()],
            vec![
                "syntactically correct".into(),
                pct(result.syntax_correct),
                "96%".into(),
            ],
            vec![
                "type correct".into(),
                pct(result.type_correct),
                "96%".into(),
            ],
            vec![
                "primitive vs compound identified".into(),
                pct(result.primitive_compound_accuracy),
                "91%".into(),
            ],
            vec![
                "correct skills (devices)".into(),
                pct(result.device_accuracy),
                "87%".into(),
            ],
            vec![
                "correct functions".into(),
                pct(result.function_accuracy),
                "82%".into(),
            ],
            vec![
                "full program accuracy".into(),
                pct(result.program_accuracy),
                "68%".into(),
            ],
        ],
    );
    println!("\nExpected shape: syntax >= type >= primitive/compound >= device >= function >= program accuracy.");
    Ok(())
}
