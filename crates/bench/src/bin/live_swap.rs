//! Live hot-swap bench: boots a **live** `genie-server`
//! ([`GenieServer::bind_live`]), hammers `/v1/parse` with concurrent
//! keep-alive clients, and drives `POST /v1/admin/reload` skill deltas
//! through the socket while the load is running. Hard assertions (the
//! process exits non-zero on any):
//!
//! * **zero dropped or errored requests** across all swaps — every parse
//!   sent during a reload gets a typed 2xx/422 answer, never a 5xx, a
//!   quota kick, or a closed socket;
//! * the first swap (class add → pool length change) reports a **full
//!   rebuild**, every later content-only swap reports **reused batches**;
//! * after the last swap, socket responses are **byte-identical** to a
//!   cold engine bootstrapped from scratch at the final library;
//! * `/metrics` and `GET /v1/admin/version` report the new
//!   `world_version` and the exact swap count.
//!
//! The report (`BENCH_live.json`) records steady-state p50/p99 alongside
//! p99 *during* swaps, so swap-induced tail latency is a tracked
//! trajectory, and reload latency itself (synthesis + retrain + swap).
//!
//! Usage:
//!   live_swap [--swaps N] [--clients N] [--requests N] [--out BENCH_live.json]
//!
//! `GENIE_BENCH_SMOKE=1` shrinks the workload to CI-smoke size.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use genie::engine::{GenieEngine, ParseRequest};
use genie::live::LiveWorld;
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie_bench::{flag_value, json_object};
use genie_server::{api, GenieServer, ServerConfig};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;
use thingpedia::{PhraseCategory, PrimitiveTemplate, Thingpedia};

/// The class every swap upserts. The first upsert adds it (a pool length
/// change, forcing the full-rebuild path); later upserts only re-word its
/// template (content-only, exercising incremental re-synthesis).
const BENCH_CLASS: &str =
    "class @com.bench.lights { action set_power(in req power : Enum(on, off)); }";

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1).cloned()
}

/// The template utterance swap `i` installs.
fn swap_utterance(swap: usize) -> String {
    format!("swap the bench lights $power pronto v{swap}")
}

/// The wire body of swap `i`'s `POST /v1/admin/reload`. `wait: true`: this
/// bench times the full rebuild and reads the swap report synchronously,
/// so it opts out of the default 202-accepted background handoff.
fn reload_body(swap: usize) -> String {
    format!(
        "{{\"op\": \"upsert\", \"class\": {}, \"templates\": \
         [{{\"category\": \"vp\", \"function\": \"set_power\", \"utterance\": {}}}], \
         \"mode\": \"full\", \"wait\": true}}",
        genie_server::json::escape(BENCH_CLASS),
        genie_server::json::escape(&swap_utterance(swap)),
    )
}

/// The library swap `i` leaves behind, applied in-process — the oracle the
/// cold reference engine is bootstrapped from.
fn patched_library(swap: usize) -> Thingpedia {
    let class = thingtalk::syntax::parse_class(BENCH_CLASS).expect("the bench class parses");
    let template = PrimitiveTemplate::new(
        &class.name,
        "set_power",
        PhraseCategory::VerbPhrase,
        swap_utterance(swap),
    );
    let mut library = Thingpedia::builtin();
    library.upsert_class(class, vec![template]);
    library
}

fn pipeline_config(target_per_rule: usize, paraphrase_sample: usize) -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(target_per_rule)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(1)
                .shards(4)
                .quiet(true)
                .build()
                .expect("valid synthesis config"),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .expect("valid paraphrase config"),
        )
        .paraphrase_sample(paraphrase_sample)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .expect("valid pipeline config")
}

fn model_config() -> ModelConfig {
    ModelConfig {
        epochs: 4,
        seed: 7,
        threads: 1,
        ..ModelConfig::default()
    }
}

/// Utterances from the base library's training distribution — classes the
/// bench deltas never touch, so they must keep parsing across every swap.
fn workload(requests: usize, config: &PipelineConfig) -> Vec<ParseRequest> {
    let library = Thingpedia::builtin();
    let pipeline = genie::DataPipeline::new(&library, *config);
    let mut commands: Vec<String> = Vec::new();
    pipeline
        .run_streaming(genie::NnOptions::default(), |example| {
            if commands.len() < 48 {
                commands.push(example.sentence_text());
            }
        })
        .expect("builtin pipeline streams");
    (0..requests)
        .map(|i| ParseRequest::new(commands[i % commands.len()].clone()))
        .collect()
}

// --- A minimal blocking HTTP client -----------------------------------

struct Response {
    status: u16,
    body: String,
}

fn read_response<R: BufRead>(reader: &mut R) -> Option<Response> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).ok()? == 0 {
        return None;
    }
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Response {
        status,
        body: String::from_utf8(body).ok()?,
    })
}

fn raw_request(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len(),
    )
}

fn parse_body(utterance: &str) -> String {
    format!(
        "{{\"utterance\": {}}}",
        genie_server::json::escape(utterance)
    )
}

fn probe(addr: SocketAddr, wire: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.write_all(wire).ok()?;
    read_response(&mut BufReader::new(stream))
}

fn quantile(sorted_micros: &[f64], q: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * q).round() as usize;
    sorted_micros[idx]
}

fn sorted(mut micros: Vec<f64>) -> Vec<f64> {
    micros.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    micros
}

/// One byte-identity client: serve its jobs over a keep-alive connection,
/// asserting each socket response equals the in-process rendering.
fn run_identity_client(
    addr: SocketAddr,
    jobs: Vec<(String, u16, String)>, // (utterance, expected status, expected body)
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect to the bench server");
    let mut writer = stream.try_clone().expect("clone client stream");
    let mut reader = BufReader::new(stream);
    let mut micros = Vec::with_capacity(jobs.len());
    for (utterance, expected_status, expected_body) in jobs {
        let start = Instant::now();
        writer
            .write_all(raw_request("POST", "/v1/parse", &parse_body(&utterance)).as_bytes())
            .expect("write request");
        let response = read_response(&mut reader).expect("read response");
        micros.push(start.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            (response.status, response.body.as_str()),
            (expected_status, expected_body.as_str()),
            "socket response for `{utterance}` drifted from the in-process rendering"
        );
    }
    micros
}

/// One swap-phase client: cycle the workload until told to stop. Any
/// answer that is not a typed parse outcome (2xx or 422), or a dead
/// socket, counts as a dropped/errored request — the gate requires zero.
fn run_swap_client(
    addr: SocketAddr,
    utterances: Vec<String>,
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect to the bench server");
    let mut writer = stream.try_clone().expect("clone client stream");
    let mut reader = BufReader::new(stream);
    let mut micros = Vec::new();
    let mut next = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let utterance = &utterances[next % utterances.len()];
        next += 1;
        let start = Instant::now();
        if writer
            .write_all(raw_request("POST", "/v1/parse", &parse_body(utterance)).as_bytes())
            .is_err()
        {
            errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        match read_response(&mut reader) {
            Some(response) if response.status == 422 || (200..300).contains(&response.status) => {
                micros.push(start.elapsed().as_secs_f64() * 1e6);
            }
            Some(response) => {
                eprintln!(
                    "live-swap: request errored during swap: {} {}",
                    response.status, response.body
                );
                errors.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                eprintln!("live-swap: connection dropped during swap");
                errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    micros
}

fn scrape_metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .map(|rest| rest.trim().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing"))
}

/// Expected `(utterance, status, body)` triples rendered in-process
/// through the server's own rendering functions — the byte-identity
/// oracle for socket responses against `engine`.
fn expected_responses(
    engine: &GenieEngine,
    workload: &[ParseRequest],
) -> Vec<(String, u16, String)> {
    let expected = workload
        .iter()
        .zip(engine.parse_batch(workload))
        .map(|(request, result)| {
            let (status, _, body) = api::render_result(&result);
            (request.utterance.clone(), status, body)
        })
        .collect();
    engine.clear_cache();
    expected
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let target_per_rule = if smoke { 10 } else { 15 };
    let paraphrase_sample = if smoke { 20 } else { 40 };
    let swaps = flag_value(&args, "--swaps")
        .unwrap_or(if smoke { 3 } else { 5 })
        .max(2);
    let clients = flag_value(&args, "--clients").unwrap_or(4).max(1);
    let requests = flag_value(&args, "--requests").unwrap_or(if smoke { 120 } else { 400 });
    let out_path = flag_str(&args, "--out").unwrap_or_else(|| "BENCH_live.json".to_owned());

    let pipeline = pipeline_config(target_per_rule, paraphrase_sample);
    let model = model_config();
    let workload = workload(requests, &pipeline);

    let boot_start = Instant::now();
    let live = Arc::new(
        LiveWorld::bootstrap(Thingpedia::builtin(), pipeline, model.clone())
            .expect("bootstrap the live world"),
    );
    let bootstrap_secs = boot_start.elapsed().as_secs_f64();

    // Steady-state oracle before anything swaps: socket responses must be
    // byte-identical to the in-process rendering at world version 1.
    let steady_expected = expected_responses(live.engine(), &workload);

    let server = GenieServer::bind_live(
        live,
        ServerConfig::builder()
            .worker_threads((clients + 2).min(32))
            .build()
            .expect("valid server config"),
    )
    .expect("bind the live bench server");
    let addr = server.local_addr();
    println!("live-swap: listening on {addr} (bootstrap {bootstrap_secs:.3}s, world version 1)");

    // --- Steady state: two passes (warm, then measured) of byte-identity
    // clients, no swap in flight.
    let mut steady_micros: Vec<f64> = Vec::new();
    let mut steady_secs = 0.0f64;
    for pass in 0..2 {
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let jobs: Vec<(String, u16, String)> = steady_expected
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == client)
                    .map(|(_, job)| job.clone())
                    .collect();
                std::thread::spawn(move || run_identity_client(addr, jobs))
            })
            .collect();
        let mut micros: Vec<f64> = Vec::with_capacity(steady_expected.len());
        for handle in handles {
            micros.extend(handle.join().expect("steady client thread"));
        }
        if pass == 1 {
            steady_micros = micros;
            steady_secs = start.elapsed().as_secs_f64();
        }
    }
    let steady_micros = sorted(steady_micros);
    let steady_p50 = quantile(&steady_micros, 0.50);
    let steady_p99 = quantile(&steady_micros, 0.99);
    let steady_mean = steady_micros.iter().sum::<f64>() / steady_micros.len().max(1) as f64;
    let steady_rate = steady_expected.len() as f64 / steady_secs;
    println!(
        "live-swap: steady state p50 {steady_p50:.0}us p99 {steady_p99:.0}us \
         ({steady_rate:.0} req/s, byte-identical to in-process)"
    );

    // --- Swap phase: clients hammer continuously; the main thread drives
    // every reload through the socket, back to back, so client latencies
    // in this phase are latencies *during* a swap.
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let swap_handles: Vec<_> = (0..clients)
        .map(|client| {
            let utterances: Vec<String> = steady_expected
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == client)
                .map(|(_, (utterance, _, _))| utterance.clone())
                .collect();
            let stop = stop.clone();
            let errors = errors.clone();
            std::thread::spawn(move || run_swap_client(addr, utterances, stop, errors))
        })
        .collect();

    let mut full_rebuild_swaps = 0usize;
    let mut incremental_swaps = 0usize;
    let mut last_reused_batches = 0u64;
    let mut last_changed_pool_entries = 0u64;
    let mut reload_ms: Vec<f64> = Vec::new();
    for swap in 1..=swaps {
        let start = Instant::now();
        let response = probe(
            addr,
            raw_request("POST", "/v1/admin/reload", &reload_body(swap)).as_bytes(),
        )
        .expect("reload response");
        reload_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            response.status, 200,
            "reload {swap} failed: {}",
            response.body
        );
        let field = |name: &str| {
            genie_bench::json_number(&response.body, name)
                .unwrap_or_else(|| panic!("reload report lacks `{name}`: {}", response.body))
        };
        assert_eq!(
            field("world_version") as u64,
            1 + swap as u64,
            "reload {swap} swapped the wrong version: {}",
            response.body
        );
        let full_rebuild = response.body.contains("\"full_rebuild\": true");
        if swap == 1 {
            // The class add changes a pool length: full rebuild, by design.
            assert!(
                full_rebuild,
                "the class-adding swap must report a full rebuild: {}",
                response.body
            );
        } else {
            assert!(
                !full_rebuild && field("reused_batches") > 0.0,
                "content-only swap {swap} must reuse memoized batches: {}",
                response.body
            );
        }
        if full_rebuild {
            full_rebuild_swaps += 1;
        } else {
            incremental_swaps += 1;
        }
        last_reused_batches = field("reused_batches") as u64;
        last_changed_pool_entries = field("changed_pool_entries") as u64;
        println!(
            "live-swap: swap {swap}/{swaps} -> version {} in {:.0}ms \
             (full_rebuild {full_rebuild}, reused {last_reused_batches})",
            1 + swap,
            reload_ms[swap - 1],
        );
    }
    stop.store(true, Ordering::Relaxed);
    let mut swap_micros: Vec<f64> = Vec::new();
    for handle in swap_handles {
        swap_micros.extend(handle.join().expect("swap client thread"));
    }
    let swap_requests = swap_micros.len();
    let swap_micros = sorted(swap_micros);
    let swap_p50 = quantile(&swap_micros, 0.50);
    let swap_p99 = quantile(&swap_micros, 0.99);
    let request_errors = errors.load(Ordering::Relaxed);
    assert_eq!(
        request_errors, 0,
        "requests dropped or errored during the swap phase"
    );
    let mean_reload_ms = reload_ms.iter().sum::<f64>() / reload_ms.len() as f64;
    println!(
        "live-swap: {swap_requests} requests served during {swaps} swaps with zero errors; \
         during-swap p50 {swap_p50:.0}us p99 {swap_p99:.0}us; mean reload {mean_reload_ms:.0}ms"
    );

    // --- Post-swap: byte identity against a cold engine bootstrapped from
    // scratch at the final library — the acceptance criterion that the
    // incremental path never drifts from a full rebuild.
    let cold = LiveWorld::bootstrap(patched_library(swaps), pipeline, model)
        .expect("bootstrap the cold reference world");
    let mut post_workload = workload;
    // Exercise the swapped class itself, not just the untouched ones.
    post_workload.push(ParseRequest::new(
        swap_utterance(swaps).replace("$power", "on"),
    ));
    let post_expected = expected_responses(cold.engine(), &post_workload);
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let jobs: Vec<(String, u16, String)> = post_expected
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == client)
                .map(|(_, job)| job.clone())
                .collect();
            std::thread::spawn(move || run_identity_client(addr, jobs))
        })
        .collect();
    for handle in handles {
        handle.join().expect("post-swap client thread");
    }
    println!("live-swap: post-swap responses byte-identical to a cold engine at the final library");

    // --- The serving metadata must agree on what just happened.
    let version_body = probe(
        addr,
        b"GET /v1/admin/version HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n",
    )
    .expect("version response")
    .body;
    let reported_version =
        genie_bench::json_number(&version_body, "world_version").expect("version field") as u64;
    assert_eq!(
        reported_version,
        1 + swaps as u64,
        "GET /v1/admin/version disagrees: {version_body}"
    );
    let metrics = server.metrics_text();
    assert_eq!(scrape_metric(&metrics, "world_version"), 1 + swaps as u64);
    assert_eq!(scrape_metric(&metrics, "world_swaps_total"), swaps as u64);
    assert_eq!(
        scrape_metric(&metrics, "server_reload_ok_total"),
        swaps as u64
    );
    assert_eq!(scrape_metric(&metrics, "server_reload_failed_total"), 0);
    assert_eq!(scrape_metric(&metrics, "server_http_5xx_total"), 0);
    println!("live-swap: /metrics and /v1/admin/version agree on world version {reported_version}");

    let config = json_object(&[
        ("swaps", swaps.to_string()),
        ("clients", clients.to_string()),
        ("requests", requests.to_string()),
        ("target_per_rule", target_per_rule.to_string()),
        ("paraphrase_sample", paraphrase_sample.to_string()),
        ("epochs", 4.to_string()),
    ]);
    let steady = json_object(&[
        ("p50_us", format!("{steady_p50:.1}")),
        ("p99_us", format!("{steady_p99:.1}")),
        ("mean_us", format!("{steady_mean:.1}")),
        ("requests_per_sec", format!("{steady_rate:.1}")),
    ]);
    let swap = json_object(&[
        ("requests_completed", swap_requests.to_string()),
        ("request_errors", request_errors.to_string()),
        ("p50_during_swap_us", format!("{swap_p50:.1}")),
        ("p99_during_swap_us", format!("{swap_p99:.1}")),
        ("mean_reload_ms", format!("{mean_reload_ms:.1}")),
        ("full_rebuild_swaps", full_rebuild_swaps.to_string()),
        ("incremental_swaps", incremental_swaps.to_string()),
        ("last_reused_batches", last_reused_batches.to_string()),
        (
            "last_changed_pool_entries",
            last_changed_pool_entries.to_string(),
        ),
    ]);
    let post_swap = json_object(&[
        ("world_version", (1 + swaps).to_string()),
        ("byte_identical", "true".to_owned()),
        ("metrics_consistent", "true".to_owned()),
    ]);
    let report = json_object(&[
        ("bench", "\"live_swap\"".to_owned()),
        ("smoke", smoke.to_string()),
        ("bootstrap_secs", format!("{bootstrap_secs:.3}")),
        ("config", config),
        ("steady", steady),
        ("swap", swap),
        ("post_swap", post_swap),
    ]);
    std::fs::write(&out_path, format!("{report}\n")).expect("write the live report");
    println!("wrote {out_path}");
}
