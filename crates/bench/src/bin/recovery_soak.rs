//! Recovery soak: the durability and replication counterpart to
//! `chaos_soak`. Two phases, both seeded and byte-replayable:
//!
//! **Phase A — crash-restart storm.** A durable [`LiveWorld`] takes skill
//! deltas while the failpoint registry injects I/O errors and torn writes
//! into `journal.append`, `bundle.write`, and `reload.retrain`; then the
//! process "crashes" (the world is dropped with no clean shutdown) and
//! recovery re-opens the directory. Hard assertions:
//!
//! * every injected failure is a **typed** error and leaves the serving
//!   version untouched — never a wedged or half-swapped world;
//! * recovery always lands on the journal's last effective version;
//! * a version's `weights_digest` is **byte-identical across
//!   incarnations**: whenever two rounds (or a recovery) observe the same
//!   version, they observe the same digest. Delta content is a pure
//!   function of the target version, so this is the paper determinism
//!   contract under crash fire.
//!
//! **Phase B — follower convergence under a fault storm.** A durable
//! primary serves its delta feed while `server.handle` faults are armed;
//! a follower (`GenieServer::bind_follower`) polls through the storm with
//! retry/backoff. After disarming, the follower must converge on the
//! primary's exact `weights_digest`; after the primary is shut down the
//! follower must flip `/readyz` to 503 (degraded) while `/v1/parse` keeps
//! answering typed responses.
//!
//! Usage:
//!   recovery_soak [--seed N] [--rounds N] [--deltas N] [--out BENCH_recovery.json]
//!
//! `GENIE_BENCH_SMOKE=1` shrinks the workload to CI-smoke size.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use genie::live::LiveWorld;
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie::{RetrainMode, SkillDelta};
use genie_bench::{flag_value, json_object, json_string};
use genie_nlp::failpoint::{self, FaultPlan, SiteSpec};
use genie_server::{FollowerConfig, GenieServer, ServerConfig};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;
use thingpedia::{PhraseCategory, PrimitiveTemplate, Thingpedia};

/// Fixed default seed: the committed `BENCH_recovery.json` was produced
/// with it, and the CI gate pins the schedule digests it induces.
const DEFAULT_SEED: u64 = 0x9E3779B97F4A7C15;
/// Hits per site over which the schedule digests are computed.
const DIGEST_HORIZON: u64 = 4096;
/// How long the follower gets to converge after the storm disarms.
const CONVERGENCE_BUDGET: Duration = Duration::from_secs(300);

/// Phase A: the durability fault storm — errors and torn writes at every
/// journal/bundle site plus injected rebuild failures.
fn crash_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .site("journal.append", SiteSpec::new().error(0.15).torn(0.15))
        .site("bundle.write", SiteSpec::new().error(0.15).torn(0.15))
        .site("reload.retrain", SiteSpec::new().error(0.20))
}

/// Phase B: the replication fault storm — the primary's request handlers
/// fail often enough that follower polls must retry and back off.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0x5EED_FEED).site("server.handle", SiteSpec::new().error(0.20))
}

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1).cloned()
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(1)
                .shards(4)
                .quiet(true)
                .build()
                .expect("valid synthesis config"),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .expect("valid paraphrase config"),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .expect("valid pipeline config")
}

fn model_config() -> ModelConfig {
    ModelConfig {
        epochs: 4,
        seed: 7,
        threads: 1,
        ..ModelConfig::default()
    }
}

/// The delta targeting `version` — a pure function of the version, so any
/// incarnation that commits `version` commits the identical library and
/// the digest cross-check below is meaningful.
fn delta_for(version: u64) -> SkillDelta {
    let class = thingtalk::syntax::parse_class(
        "class @com.soak.lights { action set_power(in req power : Enum(on, off)); }",
    )
    .expect("the soak class parses");
    let template = PrimitiveTemplate::new(
        &class.name,
        "set_power",
        PhraseCategory::VerbPhrase,
        format!("operate the soak lights mark {version} $power"),
    );
    SkillDelta::Upsert {
        class,
        templates: vec![template],
    }
}

/// The retrain mode for `version` — also version-keyed (the mode is part
/// of the journaled record, and recovery must replay it exactly): even
/// versions rebuild from scratch, odd versions fine-tune.
fn mode_for(version: u64) -> RetrainMode {
    if version.is_multiple_of(2) {
        RetrainMode::Full
    } else {
        RetrainMode::FineTune { epochs: 2 }
    }
}

/// Assert-or-insert into the cross-incarnation digest ledger. Returns
/// false when an existing entry disagrees — the determinism contract
/// broke.
fn ledger_check(ledger: &mut HashMap<u64, u64>, version: u64, digest: u64) -> bool {
    match ledger.get(&version) {
        Some(&known) => known == digest,
        None => {
            ledger.insert(version, digest);
            true
        }
    }
}

// --- A minimal blocking HTTP client (probe-grade: panics on wire noise) --

struct Response {
    status: u16,
    body: String,
}

fn read_response<R: BufRead>(reader: &mut R) -> Response {
    let mut status_line = String::new();
    assert!(
        reader.read_line(&mut status_line).expect("read status") > 0,
        "unexpected EOF from server"
    );
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("malformed status line")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    Response {
        status,
        body: String::from_utf8(body).expect("UTF-8 body"),
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: soak\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len(),
            )
            .as_bytes(),
        )
        .expect("send request");
    read_response(&mut BufReader::new(stream))
}

fn metric(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("genie-recovery-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Phase A outcome.
struct CrashStorm {
    rounds: usize,
    applied: u64,
    typed_faults: u64,
    recoveries: u64,
    final_version: u64,
    mean_recovery_secs: f64,
    max_recovery_secs: f64,
    version_matches: bool,
    digest_matches: bool,
    typed_only: bool,
}

fn crash_restart_storm(
    dir: &Path,
    seed: u64,
    rounds: usize,
    deltas_per_round: usize,
    ledger: &mut HashMap<u64, u64>,
) -> CrashStorm {
    let plan = crash_plan(seed);
    let mut out = CrashStorm {
        rounds,
        applied: 0,
        typed_faults: 0,
        recoveries: 0,
        final_version: 0,
        mean_recovery_secs: 0.0,
        max_recovery_secs: 0.0,
        version_matches: true,
        digest_matches: true,
        typed_only: true,
    };
    let mut recovery_secs: Vec<f64> = Vec::new();
    for round in 0..rounds {
        // Recovery runs disarmed: crashes are injected around the deltas,
        // not around the recovery that must clean them up.
        let recover_start = Instant::now();
        let (world, report) = LiveWorld::open_durable(
            dir,
            Thingpedia::builtin(),
            pipeline_config(),
            model_config(),
        )
        .expect("recovery must always succeed");
        let elapsed = recover_start.elapsed().as_secs_f64();
        recovery_secs.push(elapsed);
        out.recoveries += 1;
        // Invariant: recovery lands exactly on the journal's last
        // effective version (or the cold-bootstrap version 1).
        let expected = world.journal_last_version().max(1);
        if world.version() != expected {
            eprintln!(
                "recovery-soak: round {round}: recovered version {} != journal last {expected}",
                world.version(),
            );
            out.version_matches = false;
        }
        if !ledger_check(ledger, world.version(), world.weights_digest()) {
            eprintln!(
                "recovery-soak: round {round}: digest for version {} drifted across incarnations",
                world.version(),
            );
            out.digest_matches = false;
        }
        println!(
            "recovery-soak: round {round}: recovered v{} (replayed {}, bundle {}) in {elapsed:.3}s",
            world.version(),
            report.replayed,
            report.recovered_from_bundle,
        );

        // Deltas under fire: injected journal/bundle/retrain faults must
        // surface typed and leave the version where it was.
        let guard = failpoint::armed(&plan);
        for _ in 0..deltas_per_round {
            let before = world.version();
            let target = before + 1;
            match world.reload_with(&delta_for(target), mode_for(target)) {
                Ok(swap) => {
                    out.applied += 1;
                    if !ledger_check(ledger, swap.version, world.weights_digest()) {
                        eprintln!(
                            "recovery-soak: round {round}: digest for version {} drifted",
                            swap.version,
                        );
                        out.digest_matches = false;
                    }
                }
                Err(error) => {
                    out.typed_faults += 1;
                    if world.version() != before {
                        eprintln!(
                            "recovery-soak: round {round}: failed reload moved the version: {error}",
                        );
                        out.typed_only = false;
                    }
                }
            }
        }
        drop(guard);
        out.final_version = world.version();
        // Crash: no clean shutdown, just drop mid-life. The journal and
        // bundle on disk are whatever the faulted appends left behind.
        drop(world);
    }
    out.mean_recovery_secs = recovery_secs.iter().sum::<f64>() / recovery_secs.len() as f64;
    out.max_recovery_secs = recovery_secs.iter().cloned().fold(0.0, f64::max);
    out
}

/// Phase B outcome.
struct Replication {
    primary_version: u64,
    follower_version: u64,
    polls: u64,
    applied: u64,
    resyncs: u64,
    errors: u64,
    converged: bool,
    digest_matches: bool,
    degraded_served: bool,
}

fn follower_storm(dir: &Path, seed: u64, storm_deltas: usize) -> Replication {
    let (primary_live, _) = LiveWorld::open_durable(
        dir,
        Thingpedia::builtin(),
        pipeline_config(),
        model_config(),
    )
    .expect("bootstrap the durable primary");
    let primary_live = Arc::new(primary_live);
    let follower_live = Arc::new(
        LiveWorld::bootstrap(Thingpedia::builtin(), pipeline_config(), model_config())
            .expect("bootstrap the follower world"),
    );
    let server_config = || {
        ServerConfig::builder()
            .worker_threads(2)
            .build()
            .expect("valid server config")
    };
    let mut primary =
        GenieServer::bind_live(primary_live.clone(), server_config()).expect("bind the primary");
    let follower_config = FollowerConfig::builder(primary.local_addr().to_string())
        .poll_interval(Duration::from_millis(25))
        .backoff(Duration::from_millis(20), Duration::from_millis(200))
        .attempt_timeout(Duration::from_secs(5))
        .retry_budget(2)
        .seed(seed)
        .build()
        .expect("valid follower config");
    let mut follower =
        GenieServer::bind_follower(follower_live.clone(), server_config(), follower_config)
            .expect("bind the follower");
    let follower_addr = follower.local_addr();

    // Advance the primary while its handlers are under fire: follower
    // polls fail typed, back off, and keep retrying.
    {
        let _armed = failpoint::armed(&storm_plan(seed));
        for _ in 0..storm_deltas {
            let target = primary_live.version() + 1;
            primary_live
                .reload_with(&delta_for(target), mode_for(target))
                .expect("primary reloads run disarmed sites only");
        }
        // Hold the storm open long enough for polls to fail against the
        // already-advanced primary, so backoff and the error counters are
        // actually exercised.
        std::thread::sleep(Duration::from_secs(2));
    }

    // Storm over: the follower must converge on the primary's world.
    let deadline = Instant::now() + CONVERGENCE_BUDGET;
    while follower_live.version() < primary_live.version() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let converged = follower_live.version() == primary_live.version();
    let digest_matches =
        converged && follower_live.weights_digest() == primary_live.weights_digest();

    let metrics_text = follower.metrics_text();
    let mut out = Replication {
        primary_version: primary_live.version(),
        follower_version: follower_live.version(),
        polls: metric(&metrics_text, "server_replication_polls_total"),
        applied: metric(&metrics_text, "server_replication_applied_total"),
        resyncs: metric(&metrics_text, "server_replication_resyncs_total"),
        errors: metric(&metrics_text, "server_replication_errors_total"),
        converged,
        digest_matches,
        degraded_served: false,
    };
    println!(
        "recovery-soak: follower at v{} / primary v{} ({} polls, {} applied, {} resyncs, {} errors)",
        out.follower_version, out.primary_version, out.polls, out.applied, out.resyncs, out.errors,
    );

    // Kill the primary: the follower must degrade (503 readiness) while
    // its parse path keeps answering typed responses.
    primary.shutdown();
    drop(primary);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut degraded = false;
    while Instant::now() < deadline {
        if request(follower_addr, "GET", "/readyz", "").status == 503 {
            degraded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let parse = request(
        follower_addr,
        "POST",
        "/v1/parse",
        "{\"utterance\": \"zz recovery soak zz\"}",
    );
    out.degraded_served = degraded && parse.status == 422 && parse.body.contains("\"error\"");
    if !out.degraded_served {
        eprintln!(
            "recovery-soak: degraded serving failed (degraded={degraded}, parse {} {})",
            parse.status, parse.body,
        );
    }
    follower.shutdown();
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let seed = flag_str(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let rounds = flag_value(&args, "--rounds")
        .unwrap_or(if smoke { 3 } else { 5 })
        .max(2);
    let deltas_per_round = flag_value(&args, "--deltas").unwrap_or(2).max(1);
    let storm_deltas = if smoke { 1 } else { 2 };
    let out_path = flag_str(&args, "--out").unwrap_or_else(|| "BENCH_recovery.json".to_owned());

    let crash_digest = failpoint::schedule_digest(&crash_plan(seed), DIGEST_HORIZON);
    let storm_digest = failpoint::schedule_digest(&storm_plan(seed), DIGEST_HORIZON);
    println!(
        "recovery-soak: seed {seed:#x}, schedule digests {crash_digest:#018x}/{storm_digest:#018x}"
    );

    // The cross-incarnation digest ledger spans both phases: phase B's
    // primary recovers from phase A's directory, so its versions are
    // checked against what phase A observed.
    let mut ledger: HashMap<u64, u64> = HashMap::new();
    let dir = scratch_dir("world");
    let total_start = Instant::now();
    let crash = crash_restart_storm(&dir, seed, rounds, deltas_per_round, &mut ledger);
    let replication = follower_storm(&dir, seed, storm_deltas);
    let total_secs = total_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    let invariants = [
        ("recovered_version_matches", crash.version_matches),
        ("recovered_digest_matches", crash.digest_matches),
        ("typed_faults_only", crash.typed_only),
        ("follower_converged", replication.converged),
        ("follower_digest_matches", replication.digest_matches),
        ("degraded_mode_served", replication.degraded_served),
    ];

    let report = json_object(&[
        ("bench", json_string("recovery_soak")),
        ("smoke", smoke.to_string()),
        (
            "config",
            json_object(&[
                ("seed", json_string(&format!("{seed:#018x}"))),
                ("rounds", rounds.to_string()),
                ("deltas_per_round", deltas_per_round.to_string()),
                ("storm_deltas", storm_deltas.to_string()),
            ]),
        ),
        (
            "fault_schedule_digest",
            json_string(&format!("{crash_digest:#018x}-{storm_digest:#018x}")),
        ),
        (
            "crash_storm",
            json_object(&[
                ("rounds", crash.rounds.to_string()),
                ("applied", crash.applied.to_string()),
                ("typed_faults", crash.typed_faults.to_string()),
                ("recoveries", crash.recoveries.to_string()),
                ("final_version", crash.final_version.to_string()),
                (
                    "mean_recovery_secs",
                    format!("{:.3}", crash.mean_recovery_secs),
                ),
                (
                    "max_recovery_secs",
                    format!("{:.3}", crash.max_recovery_secs),
                ),
            ]),
        ),
        (
            "replication",
            json_object(&[
                ("primary_version", replication.primary_version.to_string()),
                ("follower_version", replication.follower_version.to_string()),
                ("polls", replication.polls.to_string()),
                ("applied", replication.applied.to_string()),
                ("resyncs", replication.resyncs.to_string()),
                ("errors", replication.errors.to_string()),
            ]),
        ),
        (
            "invariants",
            json_object(
                &invariants
                    .iter()
                    .map(|(name, held)| (*name, held.to_string()))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("total_secs", format!("{total_secs:.3}")),
    ]);
    std::fs::write(&out_path, format!("{report}\n")).expect("write the recovery report");
    println!("recovery-soak: report written to {out_path}");

    let mut failed = false;
    for (name, held) in invariants {
        if !held {
            eprintln!("recovery-soak: INVARIANT BROKEN: {name}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("recovery-soak: PASS");
}
