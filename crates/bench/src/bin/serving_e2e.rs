//! End-to-end socket serving bench: boots a real `genie-server` on
//! loopback from a **snapshot-loaded** engine (the production cold-start
//! path), hammers it with concurrent HTTP clients, and records socket-level
//! p50/p99 latency and req/s alongside hard correctness assertions:
//!
//! * every socket response is **byte-identical** to rendering the same
//!   request in-process through `genie_server::api::render_result`;
//! * malformed probes (garbage request line, missing `Content-Length`,
//!   oversized body, broken JSON, unknown route) get **typed 4xx** answers;
//! * every single-request parse flows through the coalescer;
//! * a live world under the same client load answers every request with a
//!   typed outcome while admin reloads swap worlds underneath it — the
//!   p99 *during* those swaps is reported alongside the steady-state p99,
//!   so swap-induced tail latency is tracked in the trajectory rather
//!   than asserted.
//!
//! The process exits non-zero if any assertion fails, so the CI job fails
//! even before the regression gate reads the numbers.
//!
//! Usage:
//!   serving_e2e [--requests N] [--clients N] [--passes N]
//!               [--base BENCH_serving.json] [--out BENCH_serving.json]
//!
//! With `--base`, the socket section is spliced into an existing
//! `BENCH_serving.json` written by the in-process serving bench (the CI
//! flow); without it, a standalone report is written. `GENIE_BENCH_SMOKE=1`
//! shrinks the workload to CI-smoke size.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use genie::engine::{GenieEngine, ParseRequest};
use genie::live::LiveWorld;
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie_bench::{flag_value, json_object};
use genie_server::{api, GenieServer, ServerConfig};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1).cloned()
}

/// Train the bench engine (same seeds/shape as the in-process serving
/// bench, so the two halves of `BENCH_serving.json` describe one model).
fn train_engine(target_per_rule: usize) -> GenieEngine {
    let pipeline = PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(target_per_rule)
                .instantiations_per_template(1)
                .seed(7)
                .quiet(true)
                .build()
                .expect("valid synthesis config"),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .expect("valid paraphrase config"),
        )
        .paraphrase_sample(120)
        .seed(7)
        .build()
        .expect("valid pipeline config");
    GenieEngine::builder()
        .train(
            pipeline,
            ModelConfig {
                epochs: 3,
                seed: 7,
                ..ModelConfig::default()
            },
        )
        .expect("training the bench engine cannot fail")
        .build()
        .expect("the bench engine builds")
}

/// Production-shaped workload: utterances from the training distribution,
/// salted with empty utterances the engine must reject deterministically.
fn workload(requests: usize, target_per_rule: usize) -> Vec<ParseRequest> {
    let library = thingpedia::Thingpedia::builtin();
    let pipeline = genie::DataPipeline::new(
        &library,
        PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(target_per_rule)
                    .instantiations_per_template(1)
                    .seed(7)
                    .quiet(true)
                    .build()
                    .expect("valid synthesis config"),
            )
            .parameter_expansion(false)
            .paraphrase_sample(0)
            .seed(7)
            .build()
            .expect("valid pipeline config"),
    );
    let mut commands: Vec<String> = Vec::new();
    pipeline
        .run_streaming(genie::NnOptions::default(), |example| {
            if commands.len() < 64 {
                commands.push(example.sentence_text());
            }
        })
        .expect("builtin pipeline streams");
    (0..requests)
        .map(|i| {
            if i % 16 == 15 {
                ParseRequest::new("")
            } else {
                ParseRequest::new(commands[i % commands.len()].clone())
            }
        })
        .collect()
}

// --- A minimal blocking HTTP client -----------------------------------

struct Response {
    status: u16,
    body: String,
}

fn read_response<R: BufRead>(reader: &mut R) -> Option<Response> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).ok()? == 0 {
        return None;
    }
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Response {
        status,
        body: String::from_utf8(body).ok()?,
    })
}

fn raw_post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len(),
    )
}

fn probe(addr: SocketAddr, wire: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.write_all(wire).ok()?;
    read_response(&mut BufReader::new(stream))
}

fn quantile(sorted_micros: &[f64], q: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * q).round() as usize;
    sorted_micros[idx]
}

/// One client thread: serve its share of the workload over a keep-alive
/// connection, asserting byte identity against the in-process rendering.
fn run_client(
    addr: SocketAddr,
    jobs: Vec<(String, u16, String)>, // (utterance, expected status, expected body)
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect to the bench server");
    let mut writer = stream.try_clone().expect("clone client stream");
    let mut reader = BufReader::new(stream);
    let mut micros = Vec::with_capacity(jobs.len());
    for (utterance, expected_status, expected_body) in jobs {
        let body = format!(
            "{{\"utterance\": {}}}",
            genie_server::json::escape(&utterance)
        );
        let start = Instant::now();
        writer
            .write_all(raw_post("/v1/parse", &body).as_bytes())
            .expect("write request");
        let response = read_response(&mut reader).expect("read response");
        micros.push(start.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            (response.status, response.body.as_str()),
            (expected_status, expected_body.as_str()),
            "socket response for `{utterance}` drifted from the in-process rendering"
        );
    }
    micros
}

fn assert_typed_4xx(addr: SocketAddr) {
    let cases: Vec<(&str, Vec<u8>, u16, &str)> = vec![
        (
            "garbage request line",
            b"\x01\x02\x03 garbage\r\n\r\n".to_vec(),
            400,
            "bad_request",
        ),
        (
            "missing Content-Length",
            b"POST /v1/parse HTTP/1.1\r\nHost: b\r\n\r\n".to_vec(),
            411,
            "length_required",
        ),
        (
            "oversized declared body",
            b"POST /v1/parse HTTP/1.1\r\nHost: b\r\nContent-Length: 99999999\r\n\r\n".to_vec(),
            413,
            "payload_too_large",
        ),
        (
            "broken JSON",
            raw_post("/v1/parse", "{not json").into_bytes(),
            400,
            "bad_request",
        ),
        (
            "wrong field type",
            raw_post("/v1/parse", "{\"utterance\": 7}").into_bytes(),
            400,
            "bad_request",
        ),
        (
            "unknown route",
            b"GET /v1/nope HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n".to_vec(),
            404,
            "not_found",
        ),
    ];
    for (name, wire, expected_status, expected_code) in cases {
        let response =
            probe(addr, &wire).unwrap_or_else(|| panic!("no response to malformed probe `{name}`"));
        assert_eq!(
            response.status, expected_status,
            "probe `{name}` got status {} body {}",
            response.status, response.body
        );
        assert!(
            response.body.contains(expected_code),
            "probe `{name}` body lacks code `{expected_code}`: {}",
            response.body
        );
    }
    println!("serving-e2e: all malformed probes answered with typed 4xx");
}

/// Tail latency *during* a world swap: boot a small live world under the
/// same client pressure, run two admin reloads back to back (a pool-shape
/// change forcing a full rebuild, then a content-only incremental one),
/// and record the p99 of parse requests answered while the reloads were
/// in flight. Every request must still get a typed outcome (2xx/422) —
/// drops or 5xx abort the bench — but the latency itself is reported, not
/// gated: swap-induced tail latency is a tracked trajectory.
fn swap_tail_latency(clients: usize, utterances: &[String]) -> (f64, usize, usize) {
    let pipeline = PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(1)
                .shards(4)
                .quiet(true)
                .build()
                .expect("valid synthesis config"),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .expect("valid paraphrase config"),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .expect("valid pipeline config");
    let live = Arc::new(
        LiveWorld::bootstrap(
            thingpedia::Thingpedia::builtin(),
            pipeline,
            ModelConfig {
                epochs: 4,
                seed: 7,
                threads: 1,
                ..ModelConfig::default()
            },
        )
        .expect("bootstrap the live world"),
    );
    let mut server = GenieServer::bind_live(
        live,
        ServerConfig::builder()
            .worker_threads((clients + 2).min(32))
            .build()
            .expect("valid server config"),
    )
    .expect("bind the live server");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let jobs: Vec<String> = utterances
                .iter()
                .enumerate()
                .filter(|(i, utterance)| i % clients == client && !utterance.is_empty())
                .map(|(_, utterance)| utterance.clone())
                .collect();
            let stop = stop.clone();
            let errors = errors.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect to the live server");
                let mut writer = stream.try_clone().expect("clone client stream");
                let mut reader = BufReader::new(stream);
                let mut micros = Vec::new();
                let mut next = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let body = format!(
                        "{{\"utterance\": {}}}",
                        genie_server::json::escape(&jobs[next % jobs.len()])
                    );
                    next += 1;
                    let start = Instant::now();
                    if writer
                        .write_all(raw_post("/v1/parse", &body).as_bytes())
                        .is_err()
                    {
                        errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    match read_response(&mut reader) {
                        Some(r) if r.status == 422 || (200..300).contains(&r.status) => {
                            micros.push(start.elapsed().as_secs_f64() * 1e6);
                        }
                        Some(r) => {
                            eprintln!("serving-e2e: {} during swap: {}", r.status, r.body);
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            eprintln!("serving-e2e: connection dropped during swap");
                            errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                micros
            })
        })
        .collect();

    // Two back-to-back reloads: adding the class changes a pool length
    // (full rebuild); re-wording its template is the incremental path.
    let class = "class @com.bench.lights { action set_power(in req power : Enum(on, off)); }";
    let reloads = 2usize;
    for swap in 1..=reloads {
        // `wait: true`: the bench wants the synchronous swap report, not
        // the default 202-accepted handoff to the background builder.
        let body = format!(
            "{{\"op\": \"upsert\", \"class\": {}, \"templates\": \
             [{{\"category\": \"vp\", \"function\": \"set_power\", \
             \"utterance\": {}}}], \"mode\": \"full\", \"wait\": true}}",
            genie_server::json::escape(class),
            genie_server::json::escape(&format!("swap the bench lights $power v{swap}")),
        );
        let response =
            probe(addr, raw_post("/v1/admin/reload", &body).as_bytes()).expect("reload response");
        assert_eq!(
            response.status, 200,
            "live reload {swap} failed: {}",
            response.body
        );
    }
    stop.store(true, Ordering::Relaxed);
    let mut micros: Vec<f64> = Vec::new();
    for handle in handles {
        micros.extend(handle.join().expect("swap client thread"));
    }
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "requests dropped or errored while worlds swapped"
    );
    micros.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p99 = quantile(&micros, 0.99);
    server.shutdown();
    (p99, micros.len(), reloads)
}

fn scrape_metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .map(|rest| rest.trim().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let target_per_rule = if smoke { 15 } else { 60 };
    let requests = flag_value(&args, "--requests").unwrap_or(if smoke { 80 } else { 400 });
    let clients = flag_value(&args, "--clients").unwrap_or(4).max(1);
    let passes = flag_value(&args, "--passes").unwrap_or(2).max(1);
    let base = flag_str(&args, "--base");
    let out_path = flag_str(&args, "--out")
        .or_else(|| base.clone())
        .unwrap_or_else(|| "BENCH_serving.json".to_owned());

    // Train once, snapshot, and serve from the snapshot — the bench
    // measures the cold-start path replicas actually take.
    let trained = train_engine(target_per_rule);
    let snapshot_path =
        std::env::temp_dir().join(format!("genie-serving-e2e-{}.snapshot", std::process::id()));
    luinet::snapshot::save(&trained.model(), &snapshot_path).expect("save snapshot");
    drop(trained);
    let load_start = Instant::now();
    let engine = GenieEngine::builder()
        .model_from_snapshot(&snapshot_path)
        .expect("load snapshot")
        .build()
        .expect("the snapshot engine builds");
    let snapshot_load_secs = load_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&snapshot_path);

    let workload = workload(requests, target_per_rule);

    // In-process reference through the server's own rendering functions:
    // this is the byte-identity oracle.
    let expected: Vec<(String, u16, String)> = workload
        .iter()
        .zip(engine.parse_batch(&workload))
        .map(|(request, result)| {
            let (status, _, body) = api::render_result(&result);
            (request.utterance.clone(), status, body)
        })
        .collect();
    engine.clear_cache();

    let server = GenieServer::bind(
        engine,
        ServerConfig::builder()
            .worker_threads(clients.min(16))
            .build()
            .expect("valid server config"),
    )
    .expect("bind the bench server");
    let addr = server.local_addr();
    println!("serving-e2e: listening on {addr} (snapshot load {snapshot_load_secs:.3}s)");

    assert_typed_4xx(addr);

    // Concurrent load: each pass splits the workload round-robin across
    // keep-alive client connections. The first pass warms the response
    // cache; the last pass is the measured steady state.
    let mut measured_micros: Vec<f64> = Vec::new();
    let mut measured_secs = 0.0f64;
    for pass in 0..passes {
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let jobs: Vec<(String, u16, String)> = expected
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == client)
                    .map(|(_, job)| job.clone())
                    .collect();
                std::thread::spawn(move || run_client(addr, jobs))
            })
            .collect();
        let mut micros: Vec<f64> = Vec::with_capacity(expected.len());
        for handle in handles {
            micros.extend(handle.join().expect("client thread"));
        }
        let secs = start.elapsed().as_secs_f64();
        if pass + 1 == passes {
            measured_micros = micros;
            measured_secs = secs;
        }
    }
    measured_micros.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p50 = quantile(&measured_micros, 0.50);
    let p99 = quantile(&measured_micros, 0.99);
    let mean = measured_micros.iter().sum::<f64>() / measured_micros.len().max(1) as f64;
    let rate = expected.len() as f64 / measured_secs;
    println!(
        "serving-e2e: {} requests x {passes} passes over {clients} clients; \
         socket p50 {p50:.0}us p99 {p99:.0}us mean {mean:.0}us; {rate:.0} req/s \
         (byte-identical to in-process)",
        expected.len(),
    );

    let metrics = server.metrics_text();
    let coalesced = scrape_metric(&metrics, "server_coalesced_requests_total");
    assert_eq!(
        coalesced,
        (passes * expected.len()) as u64,
        "every single-request parse must flow through the coalescer"
    );
    let batches = scrape_metric(&metrics, "server_coalesce_batches_total");
    let max_batch = scrape_metric(&metrics, "server_coalesce_max_batch");
    println!(
        "serving-e2e: {coalesced} requests coalesced into {batches} micro-batches \
         (largest {max_batch})"
    );

    let swap_utterances: Vec<String> = expected.iter().map(|(u, _, _)| u.clone()).collect();
    let (swap_p99, swap_requests, swap_reloads) = swap_tail_latency(clients, &swap_utterances);
    println!(
        "serving-e2e: p99 during swap {swap_p99:.0}us over {swap_requests} requests \
         across {swap_reloads} reloads (steady-state p99 {p99:.0}us, zero errors)"
    );

    let socket = json_object(&[
        ("clients", clients.to_string()),
        ("requests", expected.len().to_string()),
        ("passes", passes.to_string()),
        ("snapshot_load_secs", format!("{snapshot_load_secs:.6}")),
        ("p50_us", format!("{p50:.1}")),
        ("p99_us", format!("{p99:.1}")),
        ("mean_us", format!("{mean:.1}")),
        ("requests_per_sec", format!("{rate:.1}")),
        ("coalesce_batches", batches.to_string()),
        ("coalesce_max_batch", max_batch.to_string()),
        ("p99_during_swap_us", format!("{swap_p99:.1}")),
        ("swap_requests", swap_requests.to_string()),
        ("swap_reloads", swap_reloads.to_string()),
        ("swap_request_errors", "0".to_owned()),
        ("byte_identical", "true".to_owned()),
        ("malformed_probes_typed", "true".to_owned()),
    ]);

    // Splice the socket section into the in-process report when given one
    // (the CI flow: `--bench serving` writes the base, this bin completes
    // it); standalone otherwise.
    let report = match base.as_deref().map(std::fs::read_to_string) {
        Some(Ok(existing)) => {
            let trimmed = existing.trim_end().trim_end_matches('}').trim_end();
            let trimmed = trimmed.strip_suffix(',').unwrap_or(trimmed);
            format!("{trimmed}, \"socket\": {socket}}}")
        }
        Some(Err(error)) => {
            eprintln!(
                "serving-e2e: cannot read --base {}: {error}",
                base.as_deref().unwrap_or_default()
            );
            std::process::exit(1);
        }
        None => json_object(&[
            ("bench", "\"serving_e2e\"".to_owned()),
            ("smoke", smoke.to_string()),
            ("socket", socket),
        ]),
    };
    std::fs::write(&out_path, format!("{report}\n")).expect("write the serving report");
    println!("wrote {out_path}");
}
