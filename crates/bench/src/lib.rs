//! Support library for the experiment binaries and Criterion benches:
//! command-line scale parsing, fixed-width table printing (so every binary
//! prints its figure/table in a consistent format recorded in
//! EXPERIMENTS.md), and the process-level perf probes behind
//! `BENCH_synthesis.json`.

use genie::experiments::ExperimentScale;

/// Parse the experiment scale from the command line.
///
/// Supported flags: `--tiny` (CI-sized), `--scale N` (multiply the standard
/// data sizes by `N`), `--seeds N` (number of training runs per
/// configuration), and the streaming-synthesis knobs `--threads N`,
/// `--shards N`, `--batch-size N` (threads and shards never change the
/// dataset; the batch size selects the per-batch RNG streams).
pub fn scale_from_args() -> ExperimentScale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = ExperimentScale::standard();
    if args.iter().any(|a| a == "--tiny") {
        scale = ExperimentScale::tiny();
    }
    if let Some(factor) = flag_value(&args, "--scale") {
        scale = scale.scaled_by(factor);
    }
    if let Some(seeds) = flag_value(&args, "--seeds") {
        scale.seeds = seeds.max(1);
    }
    if let Some(threads) = flag_value(&args, "--threads") {
        scale.threads = threads;
    }
    if let Some(shards) = flag_value(&args, "--shards") {
        scale.shards = shards;
    }
    if let Some(batch) = flag_value(&args, "--batch-size") {
        scale.batch_size = batch;
    }
    scale
}

/// The value following `flag` in `args`, parsed as `usize`.
pub fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1)?.parse().ok()
}

/// The shared training workload of the training bench, the
/// `training_digest` CI bin and the determinism tests: a fixed-seed
/// pipeline build converted to parser examples. `target_per_rule` 20 with
/// `paraphrase_sample` 80 is the smoke size (~670 examples) the committed
/// `BENCH_training.json` baseline was measured on.
pub fn training_workload(
    target_per_rule: usize,
    paraphrase_sample: usize,
) -> Vec<luinet::ParserExample> {
    use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};

    let library = thingpedia::Thingpedia::builtin();
    let synthesis = genie_templates::GeneratorConfig::builder()
        .target_per_rule(target_per_rule)
        .max_depth(5)
        .instantiations_per_template(1)
        .seed(5)
        .include_aggregation(false)
        .include_timers(true)
        .threads(0)
        .quiet(true)
        .build()
        .expect("valid synthesis config");
    let config = PipelineConfig::builder()
        .synthesis(synthesis)
        .paraphrase_sample(paraphrase_sample)
        .seed(5)
        .build()
        .expect("valid pipeline config");
    let pipeline = DataPipeline::new(&library, config);
    let data = pipeline.build().expect("builtin pipeline builds");
    pipeline.to_parser_examples(&data.combined(), NnOptions::default())
}

/// The CPUs available to this process (`1` when the count cannot be
/// determined). The synthesis bench uses this to skip the parallel-vs-
/// sequential speedup comparison on single-CPU hosts, where thread overhead
/// makes the ratio meaningless.
pub fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process' peak resident-set size ("VmHWM") in kilobytes, from
/// `/proc/self/status`. `None` off Linux or if the field is missing — the
/// bench reports then omit the memory column rather than guessing.
pub fn peak_rss_kb() -> Option<u64> {
    proc_status_kb("VmHWM:")
}

/// The process' current resident-set size ("VmRSS") in kilobytes.
pub fn current_rss_kb() -> Option<u64> {
    proc_status_kb("VmRSS:")
}

fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|line| line.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Render a flat list of key/value pairs as a JSON object string. Values
/// are emitted verbatim, so callers pass pre-rendered JSON (numbers,
/// strings with quotes, nested arrays). The vendored `serde` stand-in has
/// no serializer, hence this tiny hand-rolled emitter.
pub fn json_object(pairs: &[(&str, String)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(key, value)| format!("\"{key}\": {value}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Quote and escape a string for JSON output.
pub fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extract the raw value of a top-level `"key": value` pair from a JSON
/// object rendered by [`json_object`] — the read-side twin of that
/// emitter, not a general JSON parser (the vendored `serde` stand-in has no
/// deserializer either). Returns the value text verbatim: numbers and
/// `true`/`null` as written, strings with their quotes, nested
/// objects/arrays whole. The multi-process bench parent uses this to fold
/// per-worker numbers out of child report lines.
pub fn json_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (at, c) in rest.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' | '{' => depth += 1,
            ']' | '}' | ',' if depth == 0 => return Some(rest[..at].trim()),
            ']' | '}' => depth -= 1,
            _ => {}
        }
    }
    Some(rest.trim())
}

/// [`json_field`], parsed as an `f64` (numbers only).
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    json_field(json, key)?.parse().ok()
}

/// Render a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:5.1}%", value * 100.0)
}

/// Render an accuracy summary as `mean ± half-range` percentages.
pub fn pct_range(summary: &genie::eval::AccuracySummary) -> String {
    format!(
        "{:5.1} ± {:4.1}",
        summary.mean * 100.0,
        summary.half_range() * 100.0
    )
}

/// Print a fixed-width table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", render(header.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", render(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie::eval::AccuracySummary;

    #[test]
    fn percentage_formatting() {
        assert_eq!(pct(0.625), " 62.5%");
        let summary = AccuracySummary::of(&[0.6, 0.64]);
        assert!(pct_range(&summary).contains("62.0"));
    }

    #[test]
    fn flag_parsing() {
        let args = vec![
            "bin".to_owned(),
            "--scale".to_owned(),
            "3".to_owned(),
            "--seeds".to_owned(),
            "2".to_owned(),
        ];
        assert_eq!(flag_value(&args, "--scale"), Some(3));
        assert_eq!(flag_value(&args, "--seeds"), Some(2));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn json_emission_escapes_and_nests() {
        let object = json_object(&[
            ("count", "3".to_owned()),
            ("label", json_string("a \"b\"\nc")),
        ]);
        assert_eq!(object, "{\"count\": 3, \"label\": \"a \\\"b\\\"\\nc\"}");
    }

    #[test]
    fn json_field_extraction_inverts_the_emitter() {
        let object = json_object(&[
            ("count", "3".to_owned()),
            ("rate", "125.5".to_owned()),
            ("label", json_string("a, \"b\"} c")),
            ("workers", "[{\"n\": 1}, {\"n\": 2}]".to_owned()),
            ("tail", "true".to_owned()),
        ]);
        assert_eq!(json_field(&object, "count"), Some("3"));
        assert_eq!(json_number(&object, "rate"), Some(125.5));
        assert_eq!(json_field(&object, "label"), Some("\"a, \\\"b\\\"} c\""));
        assert_eq!(
            json_field(&object, "workers"),
            Some("[{\"n\": 1}, {\"n\": 2}]")
        );
        assert_eq!(json_field(&object, "tail"), Some("true"));
        assert_eq!(json_field(&object, "missing"), None);
        assert_eq!(json_number(&object, "label"), None);
    }

    #[test]
    fn cpu_count_is_positive() {
        assert!(available_cpus() >= 1);
    }

    #[test]
    fn rss_probes_report_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().unwrap_or(0) > 0);
            assert!(current_rss_kb().unwrap_or(0) > 0);
        }
    }
}
