//! Support library for the experiment binaries and Criterion benches:
//! command-line scale parsing and fixed-width table printing, so every
//! binary prints its figure/table in a consistent format recorded in
//! EXPERIMENTS.md.

use genie::experiments::ExperimentScale;

/// Parse the experiment scale from the command line.
///
/// Supported flags: `--tiny` (CI-sized), `--scale N` (multiply the standard
/// data sizes by `N`), `--seeds N` (number of training runs per
/// configuration).
pub fn scale_from_args() -> ExperimentScale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = ExperimentScale::standard();
    if args.iter().any(|a| a == "--tiny") {
        scale = ExperimentScale::tiny();
    }
    if let Some(factor) = flag_value(&args, "--scale") {
        scale = scale.scaled_by(factor);
    }
    if let Some(seeds) = flag_value(&args, "--seeds") {
        scale.seeds = seeds.max(1);
    }
    scale
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    let position = args.iter().position(|a| a == flag)?;
    args.get(position + 1)?.parse().ok()
}

/// Render a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:5.1}%", value * 100.0)
}

/// Render an accuracy summary as `mean ± half-range` percentages.
pub fn pct_range(summary: &genie::eval::AccuracySummary) -> String {
    format!(
        "{:5.1} ± {:4.1}",
        summary.mean * 100.0,
        summary.half_range() * 100.0
    )
}

/// Print a fixed-width table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", render(header.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", render(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie::eval::AccuracySummary;

    #[test]
    fn percentage_formatting() {
        assert_eq!(pct(0.625), " 62.5%");
        let summary = AccuracySummary::of(&[0.6, 0.64]);
        assert!(pct_range(&summary).contains("62.0"));
    }

    #[test]
    fn flag_parsing() {
        let args = vec![
            "bin".to_owned(),
            "--scale".to_owned(),
            "3".to_owned(),
            "--seeds".to_owned(),
            "2".to_owned(),
        ];
        assert_eq!(flag_value(&args, "--scale"), Some(3));
        assert_eq!(flag_value(&args, "--seeds"), Some(2));
        assert_eq!(flag_value(&args, "--missing"), None);
    }
}
