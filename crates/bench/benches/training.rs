//! The training bench: throughput of the LUInet trainer and decoder,
//! written as machine-readable `BENCH_training.json` for the CI perf
//! trajectory.
//!
//! The report measures, on a fixed-seed pipeline workload:
//!
//! * **train examples/sec** — example-visits per second of a full
//!   `LuinetParser::train` run at `threads = 1` (the honest sequential
//!   number; the container CI runs on is single-core, so parallel speedup
//!   is reported informationally at {2, 8} threads but not gated);
//! * **decode tokens/sec** — greedy decode throughput over a slice of the
//!   workload;
//! * **weights digest** — [`luinet::LuinetParser::weights_digest`] of the
//!   trained model, asserted byte-identical across worker counts
//!   {1, 2, 8} before anything is reported;
//! * **exact-match accuracy** on the training set — the model-quality
//!   guard: the committed value must reproduce exactly (training is a
//!   pure function of data + config);
//! * **peak-RSS delta** (`VmHWM`) over the measured runs.
//!
//! The baseline constants record the pre-symbol-rewrite trainer (string
//! candidates, monolithic per-bucket feature hashing, fully sequential
//! epochs) measured on this container immediately before the rewrite; the
//! CI regression gate compares fresh smoke runs against the *committed*
//! `BENCH_training.json`, so the constants only document where the
//! trajectory started.
//!
//! Environment: `GENIE_BENCH_SMOKE=1` shrinks the workload to CI-smoke
//! size; `GENIE_BENCH_TRAINING_JSON=path` overrides where the JSON report
//! is written (default `BENCH_training.json` in the working directory).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use genie_bench::{json_object, json_string, training_workload};
use genie_nlp::TokenStream;
use luinet::{LuinetParser, ModelConfig, ParserExample};

/// The pre-rewrite sequential trainer on the smoke workload (667 examples,
/// 3 epochs, threads = 1), measured on the CI container.
const BASELINE_TRAIN_EXAMPLES_PER_SEC: f64 = 1103.0;
const BASELINE_DECODE_TOKENS_PER_SEC: f64 = 22471.0;
const BASELINE_TRAIN_ACCURACY: f64 = 0.5307;

fn bench_config(threads: usize) -> ModelConfig {
    ModelConfig {
        epochs: 3,
        seed: 11,
        threads,
        ..ModelConfig::default()
    }
}

fn train(examples: &[ParserExample], threads: usize) -> LuinetParser {
    let mut parser = LuinetParser::new(bench_config(threads));
    parser.train(examples);
    parser
}

fn bench_training_report(_c: &mut Criterion) {
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let (target_per_rule, paraphrase_sample) = if smoke { (20, 80) } else { (60, 240) };
    let samples: u32 = if smoke { 5 } else { 3 };
    let examples = training_workload(target_per_rule, paraphrase_sample);
    let epochs = bench_config(1).epochs;
    let rss_start_kb = genie_bench::peak_rss_kb();

    // --- Determinism first: the digest must be byte-identical across
    // worker counts before any number is worth reporting. ---
    let sequential = train(&examples, 1);
    let digest = sequential.weights_digest();
    for threads in [2usize, 8] {
        let parallel = train(&examples, threads);
        assert_eq!(
            parallel.weights_digest(),
            digest,
            "trained weights differ at {threads} threads"
        );
    }

    // --- Train throughput (sequential; the gated number). ---
    let start = Instant::now();
    for _ in 0..samples {
        black_box(train(&examples, 1).trained_examples());
    }
    let train_secs = start.elapsed().as_secs_f64() / samples as f64;
    let visits = examples.len() * epochs;
    let train_rate = visits as f64 / train_secs;

    // --- Decode throughput (greedy, sequential). ---
    let sentences: Vec<&TokenStream> = examples.iter().take(200).map(|e| &e.sentence).collect();
    let decoded = sequential.predict_batch_with_threads(&sentences, 1);
    let tokens: usize = decoded.iter().map(|p| p.len()).sum();
    let start = Instant::now();
    for _ in 0..samples {
        black_box(sequential.predict_batch_with_threads(&sentences, 1));
    }
    let decode_secs = start.elapsed().as_secs_f64() / samples as f64;
    let decode_rate = tokens as f64 / decode_secs;

    let accuracy = sequential.exact_match_accuracy(&examples);
    let rss_end_kb = genie_bench::peak_rss_kb();
    let rss_delta_kb = match (rss_start_kb, rss_end_kb) {
        (Some(start), Some(end)) => Some(end.saturating_sub(start)),
        _ => None,
    };

    println!(
        "training: {} examples x {epochs} epochs; train {train_rate:>8.0} examples/sec \
         ({:.2}x baseline); decode {decode_rate:>8.0} tokens/sec ({:.2}x baseline); \
         accuracy {accuracy:.4}; weights digest {digest:016x} (byte-identical at 1/2/8 threads); \
         peak-rss-delta {} kB",
        examples.len(),
        train_rate / BASELINE_TRAIN_EXAMPLES_PER_SEC,
        decode_rate / BASELINE_DECODE_TOKENS_PER_SEC,
        rss_delta_kb.map_or("n/a".to_owned(), |kb| kb.to_string()),
    );

    let report = json_object(&[
        ("bench", json_string("training")),
        ("smoke", smoke.to_string()),
        (
            "config",
            json_object(&[
                ("examples", examples.len().to_string()),
                ("epochs", epochs.to_string()),
                ("seed", bench_config(1).seed.to_string()),
                ("train_shards", bench_config(1).train_shards.to_string()),
                ("target_per_rule", target_per_rule.to_string()),
                ("paraphrase_sample", paraphrase_sample.to_string()),
            ]),
        ),
        (
            "baseline",
            json_object(&[
                (
                    "label",
                    json_string("pre-rewrite sequential string trainer (PR 4)"),
                ),
                (
                    "train_examples_per_sec",
                    format!("{BASELINE_TRAIN_EXAMPLES_PER_SEC:.1}"),
                ),
                (
                    "decode_tokens_per_sec",
                    format!("{BASELINE_DECODE_TOKENS_PER_SEC:.1}"),
                ),
                (
                    "exact_match_accuracy",
                    format!("{BASELINE_TRAIN_ACCURACY:.4}"),
                ),
            ]),
        ),
        ("train_examples_per_sec", format!("{train_rate:.1}")),
        ("train_seconds", format!("{train_secs:.6}")),
        ("decode_tokens_per_sec", format!("{decode_rate:.1}")),
        ("decode_sentences", sentences.len().to_string()),
        (
            "train_speedup_vs_baseline",
            format!("{:.4}", train_rate / BASELINE_TRAIN_EXAMPLES_PER_SEC),
        ),
        (
            "decode_speedup_vs_baseline",
            format!("{:.4}", decode_rate / BASELINE_DECODE_TOKENS_PER_SEC),
        ),
        ("weights_digest", json_string(&format!("{digest:016x}"))),
        ("digest_thread_invariant", "[1, 2, 8]".to_owned()),
        ("exact_match_accuracy", format!("{accuracy:.4}")),
        (
            "peak_rss_delta_kb",
            rss_delta_kb.map_or("null".to_owned(), |kb| kb.to_string()),
        ),
    ]);
    let path = std::env::var("GENIE_BENCH_TRAINING_JSON")
        .unwrap_or_else(|_| "BENCH_training.json".to_owned());
    std::fs::write(&path, format!("{report}\n")).expect("write BENCH_training.json");
    println!("wrote {path}");
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training_report
);
criterion_main!(benches);
