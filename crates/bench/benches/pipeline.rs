//! Criterion benches for the data-acquisition pipeline (§3.2–§3.4):
//! paraphrase simulation, parameter expansion, PPDB augmentation, argument
//! identification, and full training-set assembly.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use genie::expansion::{augment_ppdb, expand_parameters};
use genie::paraphrase::{ParaphraseConfig, ParaphraseSimulator};
use genie::pipeline::{DataPipeline, PipelineConfig};
use genie::{Example, ExampleSource};
use genie_nlp::{identify_arguments, tokenize, Ppdb};
use genie_templates::GeneratorConfig;
use thingpedia::{ParamDatasets, Thingpedia};
use thingtalk::syntax::parse_program;

fn sample_example() -> Example {
    Example::new(
        "when i receive an email , send a slack message to #general saying check your inbox",
        parse_program(
            "monitor (@com.gmail.inbox()) => @com.slack.send(channel = \"#general\"^^tt:slack_channel, message = \"check your inbox\")",
        )
        .unwrap(),
        ExampleSource::Synthesized,
    )
}

fn bench_paraphrase_simulation(c: &mut Criterion) {
    let simulator = ParaphraseSimulator::new(ParaphraseConfig::default());
    let examples = vec![sample_example(); 50];
    c.bench_function("paraphrase_simulation_50", |b| {
        b.iter(|| black_box(simulator.paraphrase_all(black_box(&examples))))
    });
}

fn bench_parameter_expansion(c: &mut Criterion) {
    let datasets = ParamDatasets::builtin();
    let example = sample_example();
    c.bench_function("parameter_expansion_10x", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            black_box(expand_parameters(&example, &datasets, 10, &mut rng))
        })
    });
}

fn bench_ppdb_augmentation(c: &mut Criterion) {
    let ppdb = Ppdb::builtin().compile(genie_templates::intern::shared());
    let example = sample_example();
    c.bench_function("ppdb_augmentation_5x", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            black_box(augment_ppdb(&example, &ppdb, 5, &mut rng))
        })
    });
}

fn bench_argument_identification(c: &mut Criterion) {
    let sentences = [
        "remind me at 8:30am tomorrow to email bob@example.com about the $25 invoice",
        "post \"hello brave new world\" on twitter when the temperature drops below 60f",
        "text +16505551234 the report.pdf link https://example.com/report",
    ];
    c.bench_function("argument_identification", |b| {
        b.iter(|| {
            for sentence in sentences {
                black_box(identify_arguments(&tokenize(black_box(sentence))));
            }
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    c.bench_function("pipeline_build_small", |b| {
        b.iter(|| {
            let pipeline = DataPipeline::new(
                &library,
                PipelineConfig {
                    synthesis: GeneratorConfig {
                        target_per_rule: 10,
                        max_depth: 5,
                        instantiations_per_template: 1,
                        seed: 1,
                        include_aggregation: false,
                        include_timers: true,
                        threads: 0,
                        ..GeneratorConfig::default()
                    },
                    paraphrase_sample: 50,
                    ..PipelineConfig::default()
                },
            );
            black_box(pipeline.build().expect("builtin pipeline"))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_paraphrase_simulation,
        bench_parameter_expansion,
        bench_ppdb_augmentation,
        bench_argument_identification,
        bench_full_pipeline
);
criterion_main!(benches);
