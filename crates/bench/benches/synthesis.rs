//! Benches for the NL-template synthesizer (§3.1): full sampled synthesis
//! at two target sizes, policy synthesis, and the synthesis-throughput
//! comparison between the sequential and the rule-parallel engine at depth
//! 5. The paper reports that full-scale synthesis (100,000 samples per
//! rule, depth 5) takes ~25 minutes; these benches track the per-sample
//! cost and the parallel speedup.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;

fn depth5_config(target: usize, threads: usize) -> GeneratorConfig {
    GeneratorConfig {
        target_per_rule: target,
        max_depth: 5,
        instantiations_per_template: 1,
        seed: 1,
        include_aggregation: false,
        include_timers: true,
        threads,
    }
}

fn bench_synthesis(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for target in [10usize, 40] {
        group.bench_with_input(
            BenchmarkId::new("target_per_rule", target),
            &target,
            |b, &target| {
                b.iter(|| {
                    let generator = SentenceGenerator::new(&library, depth5_config(target, 0));
                    black_box(generator.synthesize())
                })
            },
        );
    }
    group.finish();
}

/// Sentences/sec at depth 5, sequential vs parallel, plus the speedup and a
/// check that both engines produce byte-identical output.
fn bench_parallel_throughput(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    const TARGET: usize = 400;
    const SAMPLES: u32 = 5;

    let measure = |threads: usize| -> (f64, usize, Vec<genie_templates::SynthesizedExample>) {
        let generator = SentenceGenerator::new(&library, depth5_config(TARGET, threads));
        let mut out = generator.synthesize();
        let start = Instant::now();
        for _ in 0..SAMPLES {
            out = black_box(generator.synthesize());
        }
        let per_run = start.elapsed().as_secs_f64() / SAMPLES as f64;
        (out.len() as f64 / per_run, out.len(), out)
    };

    let (seq_rate, count, seq_out) = measure(1);
    let (par_rate, _, par_out) = measure(0);
    assert_eq!(seq_out, par_out, "parallel output must be byte-identical");
    println!(
        "synthesis-throughput depth=5 target={TARGET}: {count} sentences; \
         sequential {seq_rate:>10.0} sentences/sec; parallel {par_rate:>10.0} sentences/sec; \
         speedup {:.2}x",
        par_rate / seq_rate
    );

    let mut group = c.benchmark_group("synthesis_throughput_depth5");
    group.sample_size(5);
    for (name, threads) in [("sequential", 1usize), ("parallel", 0)] {
        group.bench_with_input(
            BenchmarkId::new("threads", name),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let generator =
                        SentenceGenerator::new(&library, depth5_config(TARGET, threads));
                    black_box(generator.synthesize())
                })
            },
        );
    }
    group.finish();
}

/// The pre-refactor engine deduplicated by rendering `utterance\tprogram`
/// into a `BTreeSet<String>`; the rule-registry engine fingerprints the
/// structural hash into a `HashSet<u128>`. Measure both on identical output
/// to record the per-sample dedup cost delta.
fn bench_dedup_strategies(c: &mut Criterion) {
    use std::collections::{BTreeSet, HashSet};

    let library = Thingpedia::builtin();
    let examples = SentenceGenerator::new(&library, depth5_config(200, 0)).synthesize();
    let mut group = c.benchmark_group("dedup");
    group.sample_size(20);
    group.bench_function("legacy_rendered_strings", |b| {
        b.iter(|| {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            for example in &examples {
                seen.insert(format!("{}\t{}", example.utterance, example.program));
            }
            black_box(seen.len())
        })
    });
    group.bench_function("interned_hash_keys", |b| {
        b.iter(|| {
            let mut seen: HashSet<u128> = HashSet::new();
            for example in &examples {
                seen.insert(genie_templates::dedup::example_key(
                    &example.utterance,
                    &example.program,
                ));
            }
            black_box(seen.len())
        })
    });
    group.finish();
}

fn bench_policy_synthesis(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    c.bench_function("synthesize_policies", |b| {
        b.iter(|| {
            let generator = SentenceGenerator::new(
                &library,
                GeneratorConfig {
                    target_per_rule: 20,
                    max_depth: 3,
                    instantiations_per_template: 1,
                    seed: 2,
                    include_aggregation: false,
                    include_timers: false,
                    threads: 0,
                },
            );
            black_box(generator.synthesize_policies())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synthesis, bench_parallel_throughput, bench_dedup_strategies, bench_policy_synthesis
);
criterion_main!(benches);
