//! Benches for the NL-template synthesizer (§3.1): full sampled synthesis
//! at two target sizes, policy synthesis, the synthesis-throughput
//! comparison between the sequential and the batched streaming engine at
//! depth 5, and the machine-readable `BENCH_synthesis.json` report
//! (sentences/sec + peak resident-set delta) that CI uploads as an
//! artifact. The paper reports that full-scale synthesis (100,000 samples
//! per rule, depth 5) takes ~25 minutes; these benches track the
//! per-sample cost and the parallel speedup.
//!
//! Environment: `GENIE_BENCH_SMOKE=1` shrinks the streaming report to
//! CI-smoke size; `GENIE_BENCH_JSON=path` overrides where the JSON report
//! is written (default `BENCH_synthesis.json` in the working directory).

use std::hash::Hasher;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use genie_bench::{json_object, json_string};
use genie_templates::dedup::Fnv64;
use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;

fn depth5_config(target: usize, threads: usize) -> GeneratorConfig {
    GeneratorConfig {
        target_per_rule: target,
        max_depth: 5,
        instantiations_per_template: 1,
        seed: 1,
        include_aggregation: false,
        include_timers: true,
        threads,
        quiet: true,
        ..GeneratorConfig::default()
    }
}

fn bench_synthesis(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for target in [10usize, 40] {
        group.bench_with_input(
            BenchmarkId::new("target_per_rule", target),
            &target,
            |b, &target| {
                b.iter(|| {
                    let generator = SentenceGenerator::new(&library, depth5_config(target, 0));
                    black_box(generator.synthesize())
                })
            },
        );
    }
    group.finish();
}

/// Sentences/sec at depth 5, sequential vs parallel, plus the speedup and a
/// check that both engines produce byte-identical output.
fn bench_parallel_throughput(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    // GENIE_BENCH_SMOKE shrinks every bench in this file, so the CI smoke
    // job pays smoke prices for the whole invocation.
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let target: usize = if smoke { 60 } else { 400 };
    let samples: u32 = if smoke { 2 } else { 5 };

    let measure = |threads: usize| -> (f64, usize, Vec<genie_templates::SynthesizedExample>) {
        let generator = SentenceGenerator::new(&library, depth5_config(target, threads));
        let mut out = generator.synthesize();
        let start = Instant::now();
        for _ in 0..samples {
            out = black_box(generator.synthesize());
        }
        let per_run = start.elapsed().as_secs_f64() / samples as f64;
        (out.len() as f64 / per_run, out.len(), out)
    };

    let (seq_rate, count, seq_out) = measure(1);
    let (par_rate, _, par_out) = measure(0);
    assert_eq!(seq_out, par_out, "parallel output must be byte-identical");
    // On a single-CPU host the "parallel" run is the sequential run plus
    // thread overhead, so the ratio is noise, not a speedup — skip it.
    let speedup = if genie_bench::available_cpus() > 1 {
        format!("speedup {:.2}x", par_rate / seq_rate)
    } else {
        "speedup n/a (1 cpu)".to_owned()
    };
    println!(
        "synthesis-throughput depth=5 target={target}: {count} sentences; \
         sequential {seq_rate:>10.0} sentences/sec; parallel {par_rate:>10.0} sentences/sec; \
         {speedup}"
    );

    let mut group = c.benchmark_group("synthesis_throughput_depth5");
    group.sample_size(samples as usize);
    for (name, threads) in [("sequential", 1usize), ("parallel", 0)] {
        group.bench_with_input(
            BenchmarkId::new("threads", name),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let generator =
                        SentenceGenerator::new(&library, depth5_config(target, threads));
                    black_box(generator.synthesize())
                })
            },
        );
    }
    group.finish();
}

/// Dedup-strategy trajectory on identical output: the original engine
/// rendered `utterance\tprogram` into a `BTreeSet<String>`; PR 1 hashed the
/// rendered text into `u128` fingerprints; this PR fingerprints the interned
/// symbol ids directly — no utterance byte is touched.
fn bench_dedup_strategies(c: &mut Criterion) {
    use std::collections::{BTreeSet, HashSet};

    let library = Thingpedia::builtin();
    let generator = SentenceGenerator::new(&library, depth5_config(200, 0));
    let interner = generator.interner().clone();
    let examples = generator.synthesize();
    let rendered: Vec<String> = examples
        .iter()
        .map(|e| interner.render(&e.utterance))
        .collect();
    let fingerprints: Vec<(u64, u64)> = examples
        .iter()
        .map(|e| genie_templates::dedup::program_fingerprints(&e.program))
        .collect();
    let mut group = c.benchmark_group("dedup");
    group.sample_size(20);
    group.bench_function("legacy_rendered_strings", |b| {
        b.iter(|| {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            for (example, text) in examples.iter().zip(&rendered) {
                seen.insert(format!("{}\t{}", text, example.program));
            }
            black_box(seen.len())
        })
    });
    group.bench_function("string_hash_keys", |b| {
        b.iter(|| {
            let mut seen: HashSet<u128> = HashSet::new();
            for (example, text) in examples.iter().zip(&rendered) {
                seen.insert(genie_templates::dedup::example_key(text, &example.program));
            }
            black_box(seen.len())
        })
    });
    group.bench_function("interned_symbol_keys", |b| {
        b.iter(|| {
            let mut seen: HashSet<u128> = HashSet::new();
            for (example, &fp) in examples.iter().zip(&fingerprints) {
                seen.insert(genie_templates::dedup::example_stream_key(
                    &example.utterance,
                    fp,
                ));
            }
            black_box(seen.len())
        })
    });
    group.finish();
}

/// The streaming-engine report: sentences/sec (sequential vs parallel),
/// peak resident-set delta over the run, the extra high-water growth a
/// materializing (collecting) run causes on top of the streaming runs, and
/// a dataset digest, written as machine-readable `BENCH_synthesis.json`
/// for the CI perf trajectory.
///
/// `VmHWM` is a monotonic process-lifetime high-water mark, so this report
/// runs **first** in the bench group — otherwise the earlier benches would
/// have already raised the mark and the delta would read 0.
fn bench_streaming_report(_c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let target = if smoke { 60 } else { 400 };
    // The smoke run feeds the CI regression gate, so it takes many samples:
    // a single smoke synthesis finishes in well under a millisecond, far
    // inside wall-clock jitter.
    let samples: u32 = if smoke { 40 } else { 5 };
    let config = depth5_config(target, 0);
    // Warm the shared intern arena before the RSS baseline: the pre-seeded
    // vocabulary is a fixed one-time allocation, not per-run growth — the
    // report measures what the *streaming runs* add to the high-water mark.
    let _ = genie_templates::intern::shared();
    let rss_start_kb = genie_bench::peak_rss_kb();

    let measure = |threads: usize| -> (usize, f64, u64) {
        let generator = SentenceGenerator::new(&library, depth5_config(target, threads));
        let interner = generator.interner().clone();
        // Warm-up run also computes the dataset digest for the report. The
        // digest hashes the *rendered* utterance bytes, so it is directly
        // comparable with the pre-interning trajectory.
        let mut hasher = Fnv64::new();
        let mut count = 0usize;
        let mut buf = String::new();
        generator.synthesize_streaming(|example| {
            interner.render_into(&example.utterance, &mut buf);
            hasher.write(buf.as_bytes());
            hasher.write(example.program.to_string().as_bytes());
            count += 1;
        });
        let digest = hasher.finish();
        let start = Instant::now();
        for _ in 0..samples {
            let mut sink_count = 0usize;
            let stats = generator.synthesize_streaming(|example| {
                sink_count += 1;
                black_box(&example);
            });
            assert_eq!(sink_count, count, "stream size changed between runs");
            black_box(stats);
        }
        (
            count,
            start.elapsed().as_secs_f64() / samples as f64,
            digest,
        )
    };

    let (sequential_count, sequential_secs, sequential_digest) = measure(1);
    let (parallel_count, parallel_secs, parallel_digest) = measure(0);
    assert_eq!(sequential_count, parallel_count);
    assert_eq!(
        sequential_digest, parallel_digest,
        "parallel streaming output must be byte-identical"
    );
    let rss_end_kb = genie_bench::peak_rss_kb();
    let rss_delta_kb = match (rss_start_kb, rss_end_kb) {
        (Some(start), Some(end)) => Some(end.saturating_sub(start)),
        _ => None,
    };

    // Materialize the same dataset as a Vec: any further high-water growth
    // is the resident cost the streaming path avoids.
    let collected = SentenceGenerator::new(&library, depth5_config(target, 0)).synthesize();
    assert_eq!(collected.len(), parallel_count);
    black_box(&collected);
    let rss_after_collect_kb = genie_bench::peak_rss_kb();
    drop(collected);
    let collect_extra_rss_kb = match (rss_end_kb, rss_after_collect_kb) {
        (Some(streamed), Some(collected)) => Some(collected.saturating_sub(streamed)),
        _ => None,
    };

    let sequential_rate = sequential_count as f64 / sequential_secs;
    let parallel_rate = parallel_count as f64 / parallel_secs;
    // A parallel-vs-sequential ratio is only a speedup when there is more
    // than one CPU to run on; on a 1-CPU host the parallel run just pays
    // thread overhead, so the report records `null` instead of a misleading
    // sub-1.0 figure.
    let cpus = genie_bench::available_cpus();
    let speedup = if cpus > 1 {
        format!("{:.4}", parallel_rate / sequential_rate)
    } else {
        "null".to_owned()
    };
    println!(
        "synthesis-streaming depth=5 target={target} cpus={cpus}: {sequential_count} sentences; \
         sequential {sequential_rate:>10.0} sentences/sec; parallel {parallel_rate:>10.0} \
         sentences/sec; speedup {}; peak-rss-delta {} kB; collect-extra-rss {} kB",
        if cpus > 1 {
            format!("{:.2}x", parallel_rate / sequential_rate)
        } else {
            "n/a (1 cpu)".to_owned()
        },
        rss_delta_kb.map_or("n/a".to_owned(), |kb| kb.to_string()),
        collect_extra_rss_kb.map_or("n/a".to_owned(), |kb| kb.to_string()),
    );

    let run_json = |mode: &str, threads: usize, count: usize, secs: f64| {
        json_object(&[
            ("mode", json_string(mode)),
            ("threads", threads.to_string()),
            ("sentences", count.to_string()),
            ("seconds", format!("{secs:.6}")),
            ("sentences_per_sec", format!("{:.1}", count as f64 / secs)),
        ])
    };
    // The recorded pre-interning trajectory point: the PR 2 string-based
    // engine measured on the CI container at the smoke workload, immediately
    // before the interned token-stream engine replaced it. The regression
    // gate in CI compares fresh runs against the *committed*
    // BENCH_synthesis.json, so this constant only documents where the
    // trajectory started.
    const BASELINE_SEQUENTIAL_SENTENCES_PER_SEC: f64 = 375_704.0;
    const BASELINE_PEAK_RSS_DELTA_KB: u64 = 2424;
    const BASELINE_DIGEST: &str = "89cdf1573252580e";

    let report = json_object(&[
        ("bench", json_string("synthesis")),
        ("smoke", smoke.to_string()),
        ("cpus", cpus.to_string()),
        (
            "config",
            json_object(&[
                ("target_per_rule", target.to_string()),
                ("max_depth", config.max_depth.to_string()),
                ("batch_size", config.batch_size.to_string()),
                ("shards", config.shards.to_string()),
                ("seed", config.seed.to_string()),
            ]),
        ),
        (
            "baseline",
            json_object(&[
                ("label", json_string("pre-interning string engine (PR 2)")),
                (
                    "sentences_per_sec_sequential",
                    format!("{BASELINE_SEQUENTIAL_SENTENCES_PER_SEC:.1}"),
                ),
                ("peak_rss_delta_kb", BASELINE_PEAK_RSS_DELTA_KB.to_string()),
                ("dataset_digest", json_string(BASELINE_DIGEST)),
            ]),
        ),
        (
            "runs",
            format!(
                "[{}, {}]",
                run_json("sequential", 1, sequential_count, sequential_secs),
                run_json("parallel", 0, parallel_count, parallel_secs),
            ),
        ),
        ("speedup", speedup),
        (
            "speedup_vs_baseline",
            format!(
                "{:.4}",
                sequential_rate / BASELINE_SEQUENTIAL_SENTENCES_PER_SEC
            ),
        ),
        (
            "peak_rss_start_kb",
            rss_start_kb.map_or("null".to_owned(), |kb| kb.to_string()),
        ),
        (
            "peak_rss_end_kb",
            rss_end_kb.map_or("null".to_owned(), |kb| kb.to_string()),
        ),
        (
            "peak_rss_delta_kb",
            rss_delta_kb.map_or("null".to_owned(), |kb| kb.to_string()),
        ),
        (
            "collect_extra_rss_kb",
            collect_extra_rss_kb.map_or("null".to_owned(), |kb| kb.to_string()),
        ),
        (
            "dataset_digest",
            json_string(&format!("{parallel_digest:016x}")),
        ),
    ]);
    let path =
        std::env::var("GENIE_BENCH_JSON").unwrap_or_else(|_| "BENCH_synthesis.json".to_owned());
    std::fs::write(&path, format!("{report}\n")).expect("write BENCH_synthesis.json");
    println!("wrote {path}");
}

fn bench_policy_synthesis(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    c.bench_function("synthesize_policies", |b| {
        b.iter(|| {
            let generator = SentenceGenerator::new(
                &library,
                GeneratorConfig {
                    target_per_rule: 20,
                    max_depth: 3,
                    instantiations_per_template: 1,
                    seed: 2,
                    include_aggregation: false,
                    include_timers: false,
                    threads: 0,
                    ..GeneratorConfig::default()
                },
            );
            black_box(generator.synthesize_policies())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    // The streaming report must run first: it measures VmHWM deltas, and the
    // high-water mark is process-monotonic.
    targets = bench_streaming_report, bench_synthesis, bench_parallel_throughput, bench_dedup_strategies, bench_policy_synthesis
);
criterion_main!(benches);
