//! Criterion benches for the NL-template synthesizer (§3.1): phrase
//! instantiation and full sampled synthesis at two target sizes. The paper
//! reports that full-scale synthesis (100,000 samples per rule, depth 5)
//! takes ~25 minutes; these benches track the per-sample cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;

fn bench_synthesis(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for target in [10usize, 40] {
        group.bench_with_input(BenchmarkId::new("target_per_rule", target), &target, |b, &target| {
            b.iter(|| {
                let generator = SentenceGenerator::new(
                    &library,
                    GeneratorConfig {
                        target_per_rule: target,
                        max_depth: 5,
                        instantiations_per_template: 1,
                        seed: 1,
                        include_aggregation: false,
                        include_timers: true,
                    },
                );
                black_box(generator.synthesize())
            })
        });
    }
    group.finish();
}

fn bench_policy_synthesis(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    c.bench_function("synthesize_policies", |b| {
        b.iter(|| {
            let generator = SentenceGenerator::new(
                &library,
                GeneratorConfig {
                    target_per_rule: 20,
                    max_depth: 3,
                    instantiations_per_template: 1,
                    seed: 2,
                    include_aggregation: false,
                    include_timers: false,
                },
            );
            black_box(generator.synthesize_policies())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synthesis, bench_policy_synthesis
);
criterion_main!(benches);
