//! Criterion benches for the ThingTalk language layer: parsing,
//! typechecking, canonicalization, NN-syntax round-trip, and program
//! execution on the simulated runtime.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use thingpedia::{SimulatedDevices, Thingpedia};
use thingtalk::canonical::canonicalized;
use thingtalk::nn_syntax::{from_tokens, to_tokens, NnSyntaxOptions};
use thingtalk::runtime::ExecutionEngine;
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::typecheck;

const PROGRAMS: &[&str] = &[
    "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")",
    "monitor (@com.twitter.timeline() filter author == \"PLDI\") => @com.twitter.retweet(tweet_id = tweet_id)",
    "now => agg sum file_size of (@com.dropbox.list_folder()) => notify",
    "edge (monitor (@org.thingpedia.weather.current())) on temperature < 60F => notify",
    "now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on (text = title) => notify",
];

fn bench_parsing(c: &mut Criterion) {
    c.bench_function("parse_program", |b| {
        b.iter(|| {
            for source in PROGRAMS {
                black_box(parse_program(black_box(source)).unwrap());
            }
        })
    });
}

fn bench_typecheck(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let programs: Vec<_> = PROGRAMS.iter().map(|s| parse_program(s).unwrap()).collect();
    c.bench_function("typecheck", |b| {
        b.iter(|| {
            for program in &programs {
                typecheck(&library, black_box(program)).unwrap();
            }
        })
    });
}

fn bench_canonicalize(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let programs: Vec<_> = PROGRAMS.iter().map(|s| parse_program(s).unwrap()).collect();
    c.bench_function("canonicalize", |b| {
        b.iter(|| {
            for program in &programs {
                black_box(canonicalized(&library, black_box(program)));
            }
        })
    });
}

fn bench_nn_syntax_roundtrip(c: &mut Criterion) {
    let programs: Vec<_> = PROGRAMS.iter().map(|s| parse_program(s).unwrap()).collect();
    c.bench_function("nn_syntax_roundtrip", |b| {
        b.iter(|| {
            for program in &programs {
                let tokens = to_tokens(black_box(program), NnSyntaxOptions::default());
                black_box(from_tokens(&tokens).unwrap());
            }
        })
    });
}

fn bench_runtime_execution(c: &mut Criterion) {
    let program =
        parse_program("now => @com.dropbox.list_folder() filter file_size > 100MB => notify")
            .unwrap();
    c.bench_function("runtime_execute_once", |b| {
        b.iter(|| {
            let mut engine = ExecutionEngine::new(SimulatedDevices::builtin(7));
            black_box(engine.execute_once(black_box(&program)).unwrap());
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parsing,
        bench_typecheck,
        bench_canonicalize,
        bench_nn_syntax_roundtrip,
        bench_runtime_execution
);
criterion_main!(benches);
