//! Criterion benches for the semantic parser: training throughput, greedy
//! decoding latency, program-LM scoring, and the baseline matcher.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie_templates::GeneratorConfig;
use luinet::{BaselineParser, LuinetParser, ModelConfig, ParserExample, ProgramLm};
use thingpedia::Thingpedia;

fn training_data(library: &Thingpedia) -> Vec<ParserExample> {
    let pipeline = DataPipeline::new(
        library,
        PipelineConfig {
            synthesis: GeneratorConfig {
                target_per_rule: 20,
                max_depth: 5,
                instantiations_per_template: 1,
                seed: 5,
                include_aggregation: false,
                include_timers: true,
                threads: 0,
                ..GeneratorConfig::default()
            },
            paraphrase_sample: 80,
            ..PipelineConfig::default()
        },
    );
    let data = pipeline.build().expect("builtin pipeline");
    pipeline.to_parser_examples(&data.combined(), NnOptions::default())
}

fn bench_training(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let examples = training_data(&library);
    c.bench_function("parser_training_one_epoch", |b| {
        b.iter(|| {
            let mut parser = LuinetParser::new(ModelConfig {
                epochs: 1,
                ..ModelConfig::default()
            });
            parser.train(black_box(&examples));
            black_box(parser.trained_examples())
        })
    });
}

fn bench_decoding(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let examples = training_data(&library);
    let mut parser = LuinetParser::new(ModelConfig {
        epochs: 2,
        ..ModelConfig::default()
    });
    parser.train(&examples);
    let sentences: Vec<&genie_nlp::TokenStream> =
        examples.iter().take(50).map(|e| &e.sentence).collect();
    c.bench_function("parser_greedy_decode_50", |b| {
        b.iter(|| black_box(parser.predict_batch(black_box(&sentences))))
    });
}

fn bench_program_lm(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let examples = training_data(&library);
    let mut lm = ProgramLm::new();
    lm.train(examples.iter().map(|e| &e.program));
    c.bench_function("program_lm_perplexity", |b| {
        b.iter(|| {
            for example in examples.iter().take(100) {
                black_box(lm.perplexity(&example.program));
            }
        })
    });
}

fn bench_baseline(c: &mut Criterion) {
    let library = Thingpedia::builtin();
    let examples = training_data(&library);
    let mut baseline = BaselineParser::new();
    baseline.train(&examples);
    let sentences: Vec<&genie_nlp::TokenStream> =
        examples.iter().take(20).map(|e| &e.sentence).collect();
    c.bench_function("baseline_matching_20", |b| {
        b.iter(|| black_box(baseline.predict_batch(black_box(&sentences))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training, bench_decoding, bench_program_lm, bench_baseline
);
criterion_main!(benches);
