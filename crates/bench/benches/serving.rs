//! The serving bench: request latency and throughput of the
//! [`genie::GenieEngine`] facade, written as machine-readable
//! `BENCH_serving.json` for the CI perf trajectory.
//!
//! The bench trains a small engine once, then measures:
//!
//! * **latency** — per-request wall time over the workload with the cache
//!   bypassed (p50 / p99 / mean), i.e. the cost of a cold parse:
//!   top-k decode + NN-syntax decode + typecheck per candidate;
//! * **cached latency** — the same workload served from the warm response
//!   cache (p50 / p99);
//! * **throughput** — requests/sec of `parse_batch` at worker counts
//!   {1, 2, 8}, with the responses checked byte-identical across counts.
//!
//! Environment: `GENIE_BENCH_SMOKE=1` shrinks the workload to CI-smoke
//! size; `GENIE_BENCH_SERVING_JSON=path` overrides where the JSON report
//! is written (default `BENCH_serving.json` in the working directory).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use genie::engine::{GenieEngine, ParseRequest};
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie::GenieResult;
use genie_bench::{json_object, json_string};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;

fn build_engine(target_per_rule: usize) -> GenieEngine {
    let pipeline = PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(target_per_rule)
                .instantiations_per_template(1)
                .seed(7)
                .quiet(true)
                .build()
                .expect("valid synthesis config"),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .expect("valid paraphrase config"),
        )
        .paraphrase_sample(120)
        .seed(7)
        .build()
        .expect("valid pipeline config");
    GenieEngine::builder()
        .train(
            pipeline,
            ModelConfig {
                epochs: 3,
                seed: 7,
                ..ModelConfig::default()
            },
        )
        .expect("training the bench engine cannot fail")
        .threads(1)
        .build()
        .expect("the bench engine builds")
}

/// A sibling engine over the same trained model (fresh cache and
/// counters) with a different `parse_batch` worker count — training is
/// paid once, by [`build_engine`].
fn with_threads(base: &GenieEngine, threads: usize) -> GenieEngine {
    GenieEngine::builder()
        .model_shared(base.model())
        .threads(threads)
        .build()
        .expect("the sibling engine builds")
}

/// A serving workload: utterances drawn from the engine's own training
/// distribution (so most requests parse, like production traffic against
/// a converged model), salted with malformed requests the engine must
/// reject without panicking.
fn workload(requests: usize, target_per_rule: usize) -> Vec<ParseRequest> {
    let library = thingpedia::Thingpedia::builtin();
    let pipeline = genie::DataPipeline::new(
        &library,
        PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(target_per_rule)
                    .instantiations_per_template(1)
                    .seed(7)
                    .quiet(true)
                    .build()
                    .expect("valid synthesis config"),
            )
            .parameter_expansion(false)
            .paraphrase_sample(0)
            .seed(7)
            .build()
            .expect("valid pipeline config"),
    );
    let mut commands: Vec<String> = Vec::new();
    pipeline
        .run_streaming(genie::NnOptions::default(), |example| {
            if commands.len() < 64 {
                commands.push(example.sentence_text());
            }
        })
        .expect("builtin pipeline streams");
    (0..requests)
        .map(|i| {
            // One request in sixteen is garbage the engine must reject.
            if i % 16 == 15 {
                ParseRequest::new("")
            } else {
                ParseRequest::new(commands[i % commands.len()].clone())
            }
        })
        .collect()
}

fn quantile(sorted_micros: &[f64], q: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * q).round() as usize;
    sorted_micros[idx]
}

/// Render responses into a canonical comparison string (errors included),
/// used to assert byte-identical batches across thread counts.
fn render(results: &[GenieResult<genie::ParseResponse>]) -> String {
    results
        .iter()
        .map(|result| match result {
            Ok(response) => format!(
                "ok {} => {}",
                response.sentence.join(" "),
                response
                    .candidates
                    .iter()
                    .map(|c| c.tokens.join(" "))
                    .collect::<Vec<_>>()
                    .join(" ;; ")
            ),
            Err(error) => format!("err {error}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn bench_serving_report(_c: &mut Criterion) {
    let smoke = std::env::var("GENIE_BENCH_SMOKE").is_ok();
    let target_per_rule = if smoke { 15 } else { 60 };
    let requests = if smoke { 80 } else { 400 };

    let train_start = Instant::now();
    let engine = build_engine(target_per_rule);
    let train_secs = train_start.elapsed().as_secs_f64();
    let workload = workload(requests, target_per_rule);

    // --- Cold latency distribution (cache bypassed). ---
    let mut cold_micros: Vec<f64> = Vec::with_capacity(workload.len());
    let mut parsed_ok = 0usize;
    for request in &workload {
        let request = request.clone().bypass_cache();
        let start = Instant::now();
        let result = engine.parse(&request);
        cold_micros.push(start.elapsed().as_secs_f64() * 1e6);
        if result.is_ok() {
            parsed_ok += 1;
        }
        black_box(result).ok();
    }
    cold_micros.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    // --- Warm latency distribution (cache populated by the cold pass's
    // inserts; repeats hit). ---
    let mut warm_micros: Vec<f64> = Vec::with_capacity(workload.len());
    for request in &workload {
        let start = Instant::now();
        black_box(engine.parse(request)).ok();
        warm_micros.push(start.elapsed().as_secs_f64() * 1e6);
    }
    warm_micros.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    // --- Throughput at worker counts {1, 2, 8}, byte-identical output. ---
    let model_threads = [1usize, 2, 8];
    let mut throughput: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<String> = None;
    for &threads in &model_threads {
        let engine = with_threads(&engine, threads);
        // Warm-up populates the cache so throughput measures the served
        // steady state; the first rendered batch doubles as the
        // determinism reference.
        let rendered = render(&engine.parse_batch(&workload));
        match &reference {
            None => reference = Some(rendered),
            Some(expected) => assert_eq!(
                &rendered, expected,
                "parse_batch output differs at {threads} threads"
            ),
        }
        let start = Instant::now();
        let passes: usize = if smoke { 2 } else { 5 };
        for _ in 0..passes {
            black_box(engine.parse_batch(&workload));
        }
        let secs = start.elapsed().as_secs_f64() / passes as f64;
        throughput.push((threads, workload.len() as f64 / secs));
    }

    let p50 = quantile(&cold_micros, 0.50);
    let p99 = quantile(&cold_micros, 0.99);
    let mean = cold_micros.iter().sum::<f64>() / cold_micros.len().max(1) as f64;
    let warm_p50 = quantile(&warm_micros, 0.50);
    let warm_p99 = quantile(&warm_micros, 0.99);
    let stats = engine.stats();
    println!(
        "serving: {} requests, {} parsed ok; cold p50 {p50:.0}us p99 {p99:.0}us mean {mean:.0}us; \
         warm p50 {warm_p50:.1}us p99 {warm_p99:.1}us; cache hits {} of {} requests",
        workload.len(),
        parsed_ok,
        stats.cache_hits,
        stats.requests,
    );
    for (threads, rate) in &throughput {
        println!("serving-throughput threads={threads}: {rate:>9.0} req/s (byte-identical)");
    }

    let throughput_json: Vec<String> = throughput
        .iter()
        .map(|(threads, rate)| {
            json_object(&[
                ("threads", threads.to_string()),
                ("requests_per_sec", format!("{rate:.1}")),
            ])
        })
        .collect();
    let report = json_object(&[
        ("bench", json_string("serving")),
        ("smoke", smoke.to_string()),
        (
            "config",
            json_object(&[
                ("target_per_rule", target_per_rule.to_string()),
                ("requests", workload.len().to_string()),
                ("train_seconds", format!("{train_secs:.3}")),
            ]),
        ),
        ("parsed_ok", parsed_ok.to_string()),
        (
            "cold_latency_us",
            json_object(&[
                ("p50", format!("{p50:.1}")),
                ("p99", format!("{p99:.1}")),
                ("mean", format!("{mean:.1}")),
            ]),
        ),
        (
            "warm_latency_us",
            json_object(&[
                ("p50", format!("{warm_p50:.2}")),
                ("p99", format!("{warm_p99:.2}")),
            ]),
        ),
        ("throughput", format!("[{}]", throughput_json.join(", "))),
        ("cache_hits", stats.cache_hits.to_string()),
        ("rejected_candidates", stats.rejected_candidates.to_string()),
    ]);
    let path = std::env::var("GENIE_BENCH_SERVING_JSON")
        .unwrap_or_else(|_| "BENCH_serving.json".to_owned());
    std::fs::write(&path, format!("{report}\n")).expect("write BENCH_serving.json");
    println!("wrote {path}");
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serving_report
);
criterion_main!(benches);
