//! The ThingTalk type system (Fig. 3 of the paper).
//!
//! The type system is intentionally fine grained: besides the standard
//! strings, numbers, booleans and enumerations, it natively supports the
//! object types that recur in IoT devices and web services (measures with
//! units, dates, times, locations, URLs, path names, currencies, pictures,
//! phone numbers, email addresses) as well as developer-defined *entity*
//! types, which are opaque identifiers that can be recalled by name in
//! natural language. Arrays are the only compound type.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::units::BaseUnit;

/// A ThingTalk type.
///
/// # Examples
///
/// ```
/// use thingtalk::types::Type;
/// use thingtalk::units::BaseUnit;
///
/// let t = Type::Measure(BaseUnit::Byte);
/// assert!(t.is_numeric());
/// assert!(t.is_comparable());
/// assert_eq!(t.to_string(), "Measure(byte)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// Free-form text. Values of this type can be copied word-by-word from
    /// the input sentence by the pointer-generator decoder.
    String,
    /// A double-precision number.
    Number,
    /// A boolean.
    Boolean,
    /// An enumerated type with a fixed set of lowercase identifiers.
    Enum(Vec<String>),
    /// A physical measure over the given base dimension (e.g. bytes, meters).
    Measure(BaseUnit),
    /// A point in time (date, possibly with a time component).
    Date,
    /// A time of day.
    Time,
    /// A geographic location.
    Location,
    /// A monetary amount with a currency code.
    Currency,
    /// A file-system path name.
    PathName,
    /// A URL.
    Url,
    /// A picture URL (kept distinct from [`Type::Url`] so parameter passing
    /// prefers picture-producing functions, as in Fig. 1 of the paper).
    Picture,
    /// An email address.
    EmailAddress,
    /// A phone number.
    PhoneNumber,
    /// A named entity of the given entity type, e.g. `tt:username`,
    /// `com.spotify:song`. Entities are opaque identifiers with an optional
    /// human-readable display name.
    Entity(String),
    /// An ordered collection of elements of a single type.
    Array(Box<Type>),
    /// The type of `$undefined` placeholders before slot filling; also used
    /// by the typechecker as a bottom type that unifies with anything.
    Any,
}

impl Type {
    /// Whether values of this type are ordered numbers (so `<`, `>` filters
    /// and the TT+A `sum`/`avg`/`max`/`min` aggregations apply).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Type::Number | Type::Measure(_) | Type::Currency | Type::Date | Type::Time
        )
    }

    /// Whether values of this type can appear in equality / comparison
    /// filters.
    pub fn is_comparable(&self) -> bool {
        !matches!(self, Type::Array(_) | Type::Any)
    }

    /// Whether this is a string-like type supporting `substr`, `starts_with`,
    /// `ends_with` filters.
    pub fn is_string_like(&self) -> bool {
        matches!(
            self,
            Type::String
                | Type::PathName
                | Type::Url
                | Type::Picture
                | Type::EmailAddress
                | Type::PhoneNumber
                | Type::Entity(_)
        )
    }

    /// Whether this type is an entity type.
    pub fn is_entity(&self) -> bool {
        matches!(self, Type::Entity(_))
    }

    /// Whether a value of type `other` can be assigned to a slot of this
    /// type. This is the *assignability* relation used by the typechecker:
    /// it is reflexive, allows `Any` on either side, allows entities to be
    /// filled from free-form strings (quote-free commands), and allows
    /// element-wise assignability for arrays.
    pub fn assignable_from(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Any, _) | (_, Type::Any) => true,
            (Type::Array(a), Type::Array(b)) => a.assignable_from(b),
            // Quote-free free-form parameters: any string-like slot can be
            // filled from raw text copied out of the sentence, and vice
            // versa (the runtime resolves entities after parsing).
            (t, Type::String) | (Type::String, t) if t.is_string_like() => true,
            (Type::Url, Type::Picture) | (Type::Picture, Type::Url) => true,
            (Type::Enum(a), Type::Enum(b)) => b.iter().all(|v| a.contains(v)),
            (a, b) => a == b,
        }
    }

    /// The element type if this is an array, otherwise the type itself.
    pub fn element_type(&self) -> &Type {
        match self {
            Type::Array(inner) => inner,
            other => other,
        }
    }

    /// A short token used by the NN syntax when type annotations are enabled
    /// (§2.3: "We annotate each parameter with its type").
    pub fn annotation_token(&self) -> String {
        match self {
            Type::String => "String".to_owned(),
            Type::Number => "Number".to_owned(),
            Type::Boolean => "Boolean".to_owned(),
            Type::Enum(_) => "Enum".to_owned(),
            Type::Measure(base) => format!("Measure({})", base_unit_name(*base)),
            Type::Date => "Date".to_owned(),
            Type::Time => "Time".to_owned(),
            Type::Location => "Location".to_owned(),
            Type::Currency => "Currency".to_owned(),
            Type::PathName => "PathName".to_owned(),
            Type::Url => "URL".to_owned(),
            Type::Picture => "Picture".to_owned(),
            Type::EmailAddress => "EmailAddress".to_owned(),
            Type::PhoneNumber => "PhoneNumber".to_owned(),
            Type::Entity(kind) => format!("Entity({kind})"),
            Type::Array(inner) => format!("Array({})", inner.annotation_token()),
            Type::Any => "Any".to_owned(),
        }
    }
}

fn base_unit_name(base: BaseUnit) -> &'static str {
    match base {
        BaseUnit::Byte => "byte",
        BaseUnit::Millisecond => "ms",
        BaseUnit::Meter => "m",
        BaseUnit::Celsius => "C",
        BaseUnit::Gram => "g",
        BaseUnit::MeterPerSecond => "mps",
        BaseUnit::Calorie => "cal",
        BaseUnit::BeatPerMinute => "bpm",
        BaseUnit::Pascal => "Pa",
        BaseUnit::Milliliter => "ml",
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Enum(values) => write!(f, "Enum({})", values.join(",")),
            other => f.write_str(&other.annotation_token()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_types() {
        assert!(Type::Number.is_numeric());
        assert!(Type::Measure(BaseUnit::Meter).is_numeric());
        assert!(Type::Currency.is_numeric());
        assert!(!Type::String.is_numeric());
        assert!(!Type::Boolean.is_numeric());
    }

    #[test]
    fn assignability_is_reflexive() {
        let types = [
            Type::String,
            Type::Number,
            Type::Boolean,
            Type::Date,
            Type::Measure(BaseUnit::Byte),
            Type::Entity("tt:username".into()),
            Type::Array(Box::new(Type::Number)),
        ];
        for t in &types {
            assert!(t.assignable_from(t), "{t} should be assignable from itself");
        }
    }

    #[test]
    fn entities_accept_free_form_strings() {
        let song = Type::Entity("com.spotify:song".into());
        assert!(song.assignable_from(&Type::String));
        assert!(Type::String.assignable_from(&song));
    }

    #[test]
    fn enums_are_assignable_when_subset() {
        let big = Type::Enum(vec!["asc".into(), "desc".into()]);
        let small = Type::Enum(vec!["asc".into()]);
        assert!(big.assignable_from(&small));
        assert!(!small.assignable_from(&big));
    }

    #[test]
    fn incompatible_measures_do_not_unify() {
        let bytes = Type::Measure(BaseUnit::Byte);
        let meters = Type::Measure(BaseUnit::Meter);
        assert!(!bytes.assignable_from(&meters));
    }

    #[test]
    fn array_element_type() {
        let t = Type::Array(Box::new(Type::PathName));
        assert_eq!(t.element_type(), &Type::PathName);
        assert_eq!(Type::Number.element_type(), &Type::Number);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Measure(BaseUnit::Byte).to_string(), "Measure(byte)");
        assert_eq!(
            Type::Entity("tt:hashtag".into()).to_string(),
            "Entity(tt:hashtag)"
        );
        assert_eq!(
            Type::Enum(vec!["increasing".into(), "decreasing".into()]).to_string(),
            "Enum(increasing,decreasing)"
        );
    }
}
