//! # ThingTalk — the Virtual Assistant Programming Language
//!
//! This crate implements the revised ThingTalk language described in Section 2
//! of *Genie: A Generator of Natural Language Semantic Parsers for Virtual
//! Assistant Commands* (PLDI 2019): a statically-typed, data-focused language
//! with a single construct
//!
//! ```text
//! stream => query? => action
//! ```
//!
//! built on top of a skill library of classes with *query* functions (no side
//! effects, possibly monitorable) and *action* functions (side effects, no
//! results).
//!
//! The crate provides, bottom to top:
//!
//! * [`types`] and [`value`] — the fine-grained type system (Fig. 3) and the
//!   rich constant language (compound measures, dates, entities, …).
//! * [`class`] — the skill-library class grammar (Fig. 3) used by Thingpedia.
//! * [`ast`] — the program grammar (Fig. 5), plus the TT+A aggregation
//!   extension (§6.3).
//! * [`syntax`] — a lexer and recursive-descent parser for the surface syntax
//!   of programs, classes, and access-control policies.
//! * [`typecheck`] — static typing of programs against a [`SchemaRegistry`].
//! * [`canonical`] — semantic-preserving canonicalization (§2.4), the most
//!   important VAPL feature in the paper's ablation (Table 3).
//! * [`nn_syntax`] — the linearized token form of programs consumed and
//!   produced by the neural semantic parser, with keyword parameters and
//!   optional type annotations.
//! * [`describe`] — converting programs back to canonical English for
//!   confirmation and for the Wang-et-al baseline.
//! * [`policy`] — TACL, the ThingTalk Access Control Language (§6.2).
//! * [`runtime`] — an execution engine with a virtual clock, monitors, edge
//!   filters, timers, joins, filters, parameter passing, and aggregation.
//!
//! # Example
//!
//! ```
//! use thingtalk::syntax::parse_program;
//!
//! let program = parse_program(
//!     "monitor (@com.twitter.timeline() filter author == \"PLDI\") \
//!      => @com.twitter.retweet(tweet_id = tweet_id)",
//! )?;
//! assert!(program.is_compound());
//! assert_eq!(program.functions().len(), 2);
//! # Ok::<(), thingtalk::Error>(())
//! ```

pub mod ast;
pub mod canonical;
pub mod class;
pub mod describe;
pub mod error;
pub mod nn_syntax;
pub mod optimize;
pub mod policy;
pub mod runtime;
pub mod syntax;
pub mod typecheck;
pub mod types;
pub mod units;
pub mod value;

pub use ast::{Action, AggregationOp, CompareOp, Invocation, Predicate, Program, Query, Stream};
pub use class::{ClassDef, FunctionDef, FunctionKind, ParamDef, ParamDirection};
pub use error::{Error, Result};
pub use typecheck::SchemaRegistry;
pub use types::Type;
pub use units::Unit;
pub use value::Value;
