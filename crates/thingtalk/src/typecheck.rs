//! Static typechecking of ThingTalk programs against a schema registry.
//!
//! The typechecker enforces the VAPL design principles of §2.1–§2.3:
//!
//! * every invoked function must exist in the skill library;
//! * every keyword parameter must be declared as an input of its function and
//!   be bound to a value of an assignable type;
//! * required input parameters must be bound (or explicitly `$?` for slot
//!   filling);
//! * parameter passing (`ip = op`) must refer to an output parameter of an
//!   earlier function in the program, with a compatible type;
//! * filters may only mention output parameters of the filtered query, with
//!   operators appropriate for the parameter type;
//! * only `monitorable` queries may be monitored; aggregation requires `list`
//!   queries and numeric fields (except `count`);
//! * actions have no output parameters, so nothing can be passed out of them.

use std::collections::BTreeMap;

use crate::ast::{Action, AggregationOp, CompareOp, Invocation, Predicate, Program, Query, Stream};
use crate::class::{ClassDef, FunctionDef};
use crate::error::{Error, Result};
use crate::types::Type;
use crate::value::Value;

/// Read-only access to the skill library, used by the typechecker, the
/// canonicalizer, the describer, and the NN-syntax decoder.
///
/// Thingpedia implements this trait; tests may implement it over a small
/// in-memory map.
pub trait SchemaRegistry {
    /// Look up a class by name.
    fn class(&self, name: &str) -> Option<&ClassDef>;

    /// All class names, in a stable order.
    fn class_names(&self) -> Vec<&str>;

    /// Look up a function definition.
    fn function(&self, class: &str, function: &str) -> Option<&FunctionDef> {
        self.class(class)?.functions.get(function)
    }

    /// Total number of functions in the registry.
    fn function_count(&self) -> usize {
        self.class_names()
            .iter()
            .filter_map(|c| self.class(c))
            .map(|c| c.functions.len())
            .sum()
    }
}

/// A simple in-memory schema registry backed by a map of classes.
///
/// This is the reference implementation of [`SchemaRegistry`] used by tests
/// and by small tools; the `thingpedia` crate provides the full builtin
/// library.
#[derive(Debug, Default, Clone)]
pub struct MapRegistry {
    classes: BTreeMap<String, ClassDef>,
}

impl MapRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        MapRegistry::default()
    }

    /// Add a class to the registry, replacing any previous class with the
    /// same name.
    pub fn add_class(&mut self, class: ClassDef) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Iterate over the classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }
}

impl SchemaRegistry for MapRegistry {
    fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    fn class_names(&self) -> Vec<&str> {
        self.classes.keys().map(|s| s.as_str()).collect()
    }
}

/// The typechecker. Holds a reference to the schema registry and accumulates
/// the output-parameter environment as it walks the program left to right.
pub struct Typechecker<'a, R: SchemaRegistry + ?Sized> {
    registry: &'a R,
}

impl<'a, R: SchemaRegistry + ?Sized> Typechecker<'a, R> {
    /// Create a typechecker over the given registry.
    pub fn new(registry: &'a R) -> Self {
        Typechecker { registry }
    }

    /// Typecheck a complete program.
    ///
    /// # Errors
    ///
    /// Returns the first type error found, with a message identifying the
    /// offending clause.
    pub fn check_program(&self, program: &Program) -> Result<()> {
        // The environment of output parameters available for parameter
        // passing, accumulated clause by clause.
        let mut env: BTreeMap<String, Type> = BTreeMap::new();
        self.check_stream(&program.stream, &mut env)?;
        if let Some(query) = &program.query {
            self.check_query(query, &mut env)?;
        }
        self.check_action(&program.action, &env)?;
        Ok(())
    }

    fn check_stream(&self, stream: &Stream, env: &mut BTreeMap<String, Type>) -> Result<()> {
        match stream {
            Stream::Now => Ok(()),
            Stream::AtTimer { time } => {
                if matches!(time, Value::Time(..) | Value::Undefined) {
                    Ok(())
                } else {
                    Err(Error::type_error(format!(
                        "attimer requires a time of day, found {time}"
                    )))
                }
            }
            Stream::Timer { base, interval } => {
                if !matches!(base, Value::Date(_) | Value::Undefined) {
                    return Err(Error::type_error(format!(
                        "timer base must be a date, found {base}"
                    )));
                }
                let duration_ok = match interval {
                    Value::Undefined => true,
                    Value::Measure(_, unit) => {
                        unit.base() == crate::units::BaseUnit::Millisecond
                            && interval.measure_in_base().is_some_and(|ms| ms > 0.0)
                    }
                    Value::CompoundMeasure(parts) => {
                        parts
                            .iter()
                            .all(|(_, u)| u.base() == crate::units::BaseUnit::Millisecond)
                            && interval.measure_in_base().is_some_and(|ms| ms > 0.0)
                    }
                    _ => false,
                };
                if duration_ok {
                    Ok(())
                } else {
                    Err(Error::type_error(format!(
                        "timer interval must be a positive duration, found {interval}"
                    )))
                }
            }
            Stream::Monitor { query, on } => {
                self.check_query(query, env)?;
                // Every function in the monitored query must be monitorable.
                for inv in query.invocations() {
                    let def = self.lookup(inv)?;
                    if !def.kind.is_monitorable() {
                        return Err(Error::type_error(format!(
                            "@{}.{} cannot be monitored",
                            inv.function.class, inv.function.function
                        )));
                    }
                }
                for param in on {
                    if !env.contains_key(param) {
                        return Err(Error::type_error(format!(
                            "monitor on new `{param}`: no such output parameter"
                        )));
                    }
                }
                Ok(())
            }
            Stream::EdgeFilter { stream, predicate } => {
                self.check_stream(stream, env)?;
                self.check_predicate(predicate, env)
            }
        }
    }

    fn check_query(&self, query: &Query, env: &mut BTreeMap<String, Type>) -> Result<()> {
        match query {
            Query::Invocation(inv) => self.check_invocation(inv, env, true),
            Query::Filter { query, predicate } => {
                self.check_query(query, env)?;
                self.check_predicate(predicate, env)
            }
            Query::Join { lhs, rhs, on } => {
                self.check_query(lhs, env)?;
                // The right-hand side sees the left-hand side's outputs for
                // the `on` parameter passing.
                let lhs_env = env.clone();
                // Explicit `on (input = output)` clauses bind input
                // parameters of the right operand, so inject them before
                // checking required parameters.
                let mut rhs_with_join_params = (**rhs).clone();
                if let Some(inv) = rhs_with_join_params.invocations_mut().into_iter().next() {
                    for jp in on {
                        if inv.param(&jp.input).is_none() {
                            inv.in_params.push(crate::ast::InputParam::new(
                                jp.input.clone(),
                                Value::VarRef(jp.output.clone()),
                            ));
                        }
                    }
                }
                self.check_query(&rhs_with_join_params, env)?;
                for jp in on {
                    let rhs_invocations = rhs.invocations();
                    let def = rhs_invocations
                        .first()
                        .map(|inv| self.lookup(inv))
                        .transpose()?;
                    let input_ty = def
                        .and_then(|d| d.param(&jp.input))
                        .map(|p| p.ty.clone())
                        .unwrap_or(Type::Any);
                    let output_ty = lhs_env.get(&jp.output).cloned().ok_or_else(|| {
                        Error::type_error(format!(
                            "join passes unknown output parameter `{}`",
                            jp.output
                        ))
                    })?;
                    if !input_ty.assignable_from(&output_ty) {
                        return Err(Error::type_error(format!(
                            "join parameter `{}` of type {} cannot receive `{}` of type {}",
                            jp.input, input_ty, jp.output, output_ty
                        )));
                    }
                }
                Ok(())
            }
            Query::Aggregation { op, field, query } => {
                self.check_query(query, env)?;
                let list = query
                    .invocations()
                    .iter()
                    .map(|inv| self.lookup(inv))
                    .collect::<Result<Vec<_>>>()?
                    .iter()
                    .any(|def| def.kind.is_list());
                if !list {
                    return Err(Error::type_error(format!(
                        "aggregation `{op}` requires a list query"
                    )));
                }
                match (op, field) {
                    (AggregationOp::Count, None) => {
                        env.insert("count".to_owned(), Type::Number);
                        Ok(())
                    }
                    (AggregationOp::Count, Some(field)) => Err(Error::type_error(format!(
                        "count does not take a field, found `{field}`"
                    ))),
                    (_, None) => Err(Error::type_error(format!(
                        "aggregation `{op}` requires a field"
                    ))),
                    (_, Some(field)) => {
                        let ty = env.get(field).cloned().ok_or_else(|| {
                            Error::type_error(format!(
                                "aggregated field `{field}` is not an output parameter"
                            ))
                        })?;
                        if !ty.is_numeric() {
                            return Err(Error::type_error(format!(
                                "aggregated field `{field}` of type {ty} is not numeric"
                            )));
                        }
                        // The aggregation replaces the result set with a
                        // single value of the field's type.
                        env.insert(field.clone(), ty);
                        Ok(())
                    }
                }
            }
        }
    }

    fn check_action(&self, action: &Action, env: &BTreeMap<String, Type>) -> Result<()> {
        match action {
            Action::Notify => Ok(()),
            Action::Invocation(inv) => {
                let def = self.lookup(inv)?;
                if !def.kind.is_action() {
                    return Err(Error::type_error(format!(
                        "@{}.{} is a query, not an action",
                        inv.function.class, inv.function.function
                    )));
                }
                let mut scratch = env.clone();
                self.check_invocation(inv, &mut scratch, false)
            }
        }
    }

    fn check_invocation(
        &self,
        inv: &Invocation,
        env: &mut BTreeMap<String, Type>,
        add_outputs: bool,
    ) -> Result<()> {
        let def = self.lookup(inv)?;
        for param in &inv.in_params {
            let decl = def
                .param(&param.name)
                .ok_or_else(|| Error::UnknownParameter {
                    class: inv.function.class.clone(),
                    function: inv.function.function.clone(),
                    param: param.name.clone(),
                })?;
            if !decl.direction.is_input() {
                return Err(Error::type_error(format!(
                    "`{}` is an output parameter of @{}.{} and cannot be bound",
                    param.name, inv.function.class, inv.function.function
                )));
            }
            match &param.value {
                Value::VarRef(source) => {
                    let source_ty = env.get(source).ok_or_else(|| {
                        Error::type_error(format!(
                            "parameter passing from unknown output parameter `{source}`"
                        ))
                    })?;
                    if !decl.ty.assignable_from(source_ty) {
                        return Err(Error::type_error(format!(
                            "cannot pass `{source}` of type {} into `{}` of type {}",
                            source_ty, param.name, decl.ty
                        )));
                    }
                }
                Value::Undefined | Value::Event => {}
                value => {
                    let value_ty = value_type(value);
                    if !decl.ty.assignable_from(&value_ty) {
                        return Err(Error::type_error(format!(
                            "parameter `{}` of @{}.{} expects {}, found {} of type {}",
                            param.name,
                            inv.function.class,
                            inv.function.function,
                            decl.ty,
                            value,
                            value_ty
                        )));
                    }
                    if let (Type::Enum(variants), Value::Enum(v)) = (&decl.ty, value) {
                        if !variants.contains(v) {
                            return Err(Error::type_error(format!(
                                "`{v}` is not a variant of {}",
                                decl.ty
                            )));
                        }
                    }
                }
            }
        }
        // Missing required parameters are allowed only for slot filling; the
        // dataset synthesizer always fills them, so flag them here.
        for required in def.required_params() {
            if inv.param(&required.name).is_none() {
                return Err(Error::type_error(format!(
                    "missing required parameter `{}` of @{}.{}",
                    required.name, inv.function.class, inv.function.function
                )));
            }
        }
        if add_outputs {
            for output in def.output_params() {
                env.insert(output.name.clone(), output.ty.clone());
            }
        }
        Ok(())
    }

    fn check_predicate(&self, predicate: &Predicate, env: &BTreeMap<String, Type>) -> Result<()> {
        match predicate {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Not(inner) => self.check_predicate(inner, env),
            Predicate::And(items) | Predicate::Or(items) => {
                for item in items {
                    self.check_predicate(item, env)?;
                }
                Ok(())
            }
            Predicate::Atom { param, op, value } => {
                let ty = env.get(param).ok_or_else(|| {
                    Error::type_error(format!(
                        "filter mentions `{param}`, which is not an output parameter in scope"
                    ))
                })?;
                check_filter_op(param, ty, *op)?;
                let value_ty = match value {
                    Value::VarRef(source) => env.get(source).cloned().ok_or_else(|| {
                        Error::type_error(format!(
                            "filter compares against unknown output parameter `{source}`"
                        ))
                    })?,
                    Value::Undefined | Value::Event => Type::Any,
                    other => value_type(other),
                };
                let compatible = match op {
                    CompareOp::Contains => ty.element_type().assignable_from(&value_ty),
                    CompareOp::InArray => {
                        value_ty.element_type().assignable_from(ty) || value_ty == Type::Any
                    }
                    _ => ty.assignable_from(&value_ty) || value_ty.assignable_from(ty),
                };
                if !compatible {
                    return Err(Error::type_error(format!(
                        "filter `{param} {op} {value}` compares {ty} against {value_ty}"
                    )));
                }
                Ok(())
            }
            Predicate::External {
                invocation,
                predicate,
            } => {
                let def = self.lookup(invocation)?;
                if !def.kind.is_query() {
                    return Err(Error::type_error(format!(
                        "external predicate @{}.{} must be a query",
                        invocation.function.class, invocation.function.function
                    )));
                }
                let mut inner_env = BTreeMap::new();
                self.check_invocation(invocation, &mut inner_env, true)?;
                self.check_predicate(predicate, &inner_env)
            }
        }
    }

    fn lookup(&self, inv: &Invocation) -> Result<&FunctionDef> {
        self.registry
            .function(&inv.function.class, &inv.function.function)
            .ok_or_else(|| Error::UnknownFunction {
                class: inv.function.class.clone(),
                function: inv.function.function.clone(),
            })
    }
}

fn check_filter_op(param: &str, ty: &Type, op: CompareOp) -> Result<()> {
    let ok = match op {
        CompareOp::Eq | CompareOp::Neq => ty.is_comparable() || matches!(ty, Type::Array(_)),
        CompareOp::Gt | CompareOp::Lt | CompareOp::Geq | CompareOp::Leq => {
            ty.is_numeric() || *ty == Type::String
        }
        CompareOp::Substr | CompareOp::StartsWith | CompareOp::EndsWith => ty.is_string_like(),
        CompareOp::Contains => matches!(ty, Type::Array(_)) || ty.is_string_like(),
        CompareOp::InArray => ty.is_comparable(),
    };
    if ok {
        Ok(())
    } else {
        Err(Error::type_error(format!(
            "operator `{op}` cannot be applied to `{param}` of type {ty}"
        )))
    }
}

/// The static type of a constant value.
pub fn value_type(value: &Value) -> Type {
    match value {
        Value::String(_) => Type::String,
        Value::Number(_) => Type::Number,
        Value::Boolean(_) => Type::Boolean,
        Value::Measure(_, unit) => Type::Measure(unit.base()),
        Value::CompoundMeasure(parts) => parts
            .first()
            .map(|(_, unit)| Type::Measure(unit.base()))
            .unwrap_or(Type::Any),
        Value::Date(_) => Type::Date,
        Value::Time(..) => Type::Time,
        Value::Location(_) => Type::Location,
        Value::Enum(v) => Type::Enum(vec![v.clone()]),
        Value::Currency(..) => Type::Currency,
        Value::Entity { kind, .. } => Type::Entity(kind.clone()),
        Value::Array(items) => {
            Type::Array(Box::new(items.first().map(value_type).unwrap_or(Type::Any)))
        }
        Value::VarRef(_) | Value::Event | Value::Undefined => Type::Any,
    }
}

/// Typecheck a program against a registry (convenience wrapper around
/// [`Typechecker`]).
///
/// # Errors
///
/// Returns the first type error found.
pub fn typecheck<R: SchemaRegistry + ?Sized>(registry: &R, program: &Program) -> Result<()> {
    Typechecker::new(registry).check_program(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{FunctionKind, ParamDef, ParamDirection};
    use crate::syntax::parse_program;
    use crate::units::BaseUnit;

    fn registry() -> MapRegistry {
        let mut registry = MapRegistry::new();
        registry.add_class(
            ClassDef::new("com.twitter")
                .with_function(FunctionDef::new(
                    "timeline",
                    FunctionKind::MONITORABLE_LIST_QUERY,
                    vec![
                        ParamDef::new("text", Type::String, ParamDirection::Out),
                        ParamDef::new(
                            "author",
                            Type::Entity("tt:username".into()),
                            ParamDirection::Out,
                        ),
                        ParamDef::new(
                            "tweet_id",
                            Type::Entity("com.twitter:id".into()),
                            ParamDirection::Out,
                        ),
                    ],
                ))
                .with_function(FunctionDef::new(
                    "retweet",
                    FunctionKind::Action,
                    vec![ParamDef::new(
                        "tweet_id",
                        Type::Entity("com.twitter:id".into()),
                        ParamDirection::InReq,
                    )],
                ))
                .with_function(FunctionDef::new(
                    "post",
                    FunctionKind::Action,
                    vec![ParamDef::new("status", Type::String, ParamDirection::InReq)],
                )),
        );
        registry.add_class(ClassDef::new("com.dropbox").with_function(FunctionDef::new(
            "list_folder",
            FunctionKind::MONITORABLE_LIST_QUERY,
            vec![
                ParamDef::new("file_name", Type::PathName, ParamDirection::Out),
                ParamDef::new(
                    "file_size",
                    Type::Measure(BaseUnit::Byte),
                    ParamDirection::Out,
                ),
            ],
        )));
        registry.add_class(
            ClassDef::new("com.thecatapi").with_function(FunctionDef::new(
                "get",
                FunctionKind::QUERY,
                vec![ParamDef::new(
                    "picture_url",
                    Type::Picture,
                    ParamDirection::Out,
                )],
            )),
        );
        registry
    }

    fn check(source: &str) -> Result<()> {
        typecheck(&registry(), &parse_program(source).unwrap())
    }

    #[test]
    fn accepts_well_typed_programs() {
        check("monitor (@com.twitter.timeline()) => @com.twitter.retweet(tweet_id = tweet_id)")
            .unwrap();
        check("now => @com.twitter.timeline() filter author == \"PLDI\" => notify").unwrap();
        check("now => agg sum file_size of (@com.dropbox.list_folder()) => notify").unwrap();
        check("now => @com.twitter.post(status = \"hello world\")").unwrap();
    }

    #[test]
    fn rejects_unknown_functions_and_params() {
        assert!(matches!(
            check("now => @com.instagram.get_pictures() => notify"),
            Err(Error::UnknownFunction { .. })
        ));
        assert!(matches!(
            check("now => @com.twitter.post(body = \"hi\")"),
            Err(Error::UnknownParameter { .. })
        ));
    }

    #[test]
    fn rejects_monitoring_non_monitorable() {
        let err = check("monitor (@com.thecatapi.get()) => notify").unwrap_err();
        assert!(matches!(err, Error::Type { .. }));
    }

    #[test]
    fn rejects_missing_required_param() {
        let err = check("now => @com.twitter.retweet()").unwrap_err();
        assert!(err.to_string().contains("missing required parameter"));
    }

    #[test]
    fn rejects_bad_param_passing() {
        // picture_url is not an output of twitter.timeline
        let err = check(
            "monitor (@com.twitter.timeline()) => @com.twitter.retweet(tweet_id = picture_url)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown output parameter"));
    }

    #[test]
    fn rejects_filters_on_unknown_params() {
        let err = check("now => @com.twitter.timeline() filter hashtag == \"rust\" => notify")
            .unwrap_err();
        assert!(err.to_string().contains("not an output parameter"));
    }

    #[test]
    fn rejects_incomparable_filter_types() {
        let err = check("now => @com.dropbox.list_folder() filter file_size > \"big\" => notify")
            .unwrap_err();
        assert!(matches!(err, Error::Type { .. }));
    }

    #[test]
    fn rejects_aggregation_on_non_numeric() {
        let err = check("now => agg sum file_name of (@com.dropbox.list_folder()) => notify")
            .unwrap_err();
        assert!(err.to_string().contains("not numeric"));
    }

    #[test]
    fn rejects_query_used_as_action() {
        let err =
            check("now => @com.twitter.timeline() => @com.dropbox.list_folder()").unwrap_err();
        assert!(err.to_string().contains("not an action"));
    }

    #[test]
    fn count_aggregation_needs_no_field() {
        check("now => agg count of (@com.dropbox.list_folder()) => notify").unwrap();
        assert!(
            check("now => agg count file_size of (@com.dropbox.list_folder()) => notify").is_err()
        );
    }
}
