//! Canonicalization of ThingTalk programs (§2.4).
//!
//! Canonicalization is key to training a neural semantic parser: the output
//! of the network is checked for exact match against the canonicalized gold
//! program, so semantically equivalent programs must have a single canonical
//! form. The paper's ablation (Table 3) finds canonicalization to be the
//! single most important VAPL feature (5–8% accuracy).
//!
//! The transformation rules implemented here follow the paper:
//!
//! * query joins without parameter passing are commutative and are
//!   canonicalized by ordering the operands lexically;
//! * nested applications of `filter` are merged into a single filter with
//!   the `&&` connective;
//! * boolean predicates are simplified, converted to conjunctive normal
//!   form, and sorted (see [`crate::optimize`]);
//! * filters are moved to the left-most query operand that provides all the
//!   output parameters they mention;
//! * input parameters are listed in alphabetical order, which helps the
//!   neural model learn a single global order across functions.

use std::sync::Arc;

use crate::ast::{Action, Invocation, Predicate, Program, Query, Stream};
use crate::optimize::simplify;
use crate::typecheck::SchemaRegistry;

/// Canonicalize a program in place. The `registry` is used to find which
/// query operand provides the output parameters mentioned by a filter; pass
/// a registry without the relevant classes and filters simply stay where the
/// parser put them.
pub fn canonicalize<R: SchemaRegistry + ?Sized>(registry: &R, program: &mut Program) {
    program.stream = canonicalize_stream(
        registry,
        std::mem::replace(&mut program.stream, Stream::Now),
    );
    if let Some(query) = program.query.take() {
        program.query = Some(Arc::new(canonicalize_query(
            registry,
            Arc::unwrap_or_clone(query),
        )));
    }
    if let Action::Invocation(inv) = &mut program.action {
        sort_input_params(Arc::make_mut(inv));
    }
}

/// Return the canonical form of a program, leaving the original untouched.
pub fn canonicalized<R: SchemaRegistry + ?Sized>(registry: &R, program: &Program) -> Program {
    let mut clone = program.clone();
    canonicalize(registry, &mut clone);
    clone
}

/// Two programs are semantically equivalent under canonicalization if their
/// canonical forms are structurally equal. This is the *program accuracy*
/// criterion used throughout the evaluation.
pub fn equivalent<R: SchemaRegistry + ?Sized>(registry: &R, a: &Program, b: &Program) -> bool {
    canonicalized(registry, a) == canonicalized(registry, b)
}

fn canonicalize_stream<R: SchemaRegistry + ?Sized>(registry: &R, stream: Stream) -> Stream {
    match stream {
        Stream::Monitor { query, mut on } => {
            on.sort();
            on.dedup();
            Stream::Monitor {
                query: Arc::new(canonicalize_query(registry, Arc::unwrap_or_clone(query))),
                on,
            }
        }
        Stream::EdgeFilter { stream, predicate } => Stream::EdgeFilter {
            stream: Arc::new(canonicalize_stream(registry, Arc::unwrap_or_clone(stream))),
            predicate: simplify(predicate),
        },
        other => other,
    }
}

fn canonicalize_query<R: SchemaRegistry + ?Sized>(registry: &R, query: Query) -> Query {
    // 1. Collect all filters, merging nested applications.
    let (skeleton, mut predicates) = strip_filters(query);
    // 2. Canonicalize the skeleton (joins, invocations).
    let skeleton = canonicalize_skeleton(registry, skeleton);
    // 3. Re-attach the filters to the left-most operand providing all the
    //    mentioned output parameters, or to the top if none does.
    predicates.retain(|p| !p.is_true());
    if predicates.is_empty() {
        return skeleton;
    }
    let merged = predicates
        .into_iter()
        .reduce(Predicate::and)
        .expect("at least one predicate");
    let simplified = simplify(merged);
    if simplified.is_true() {
        return skeleton;
    }
    attach_filter(registry, skeleton, simplified)
}

/// Remove all filter nodes from the query, returning the filter-free
/// skeleton and the collected predicates. Aggregation boundaries are kept:
/// filters inside an aggregation stay inside it.
fn strip_filters(query: Query) -> (Query, Vec<Predicate>) {
    match query {
        Query::Invocation(inv) => (Query::Invocation(inv), Vec::new()),
        Query::Filter { query, predicate } => {
            let (skeleton, mut predicates) = strip_filters(Arc::unwrap_or_clone(query));
            predicates.push(predicate);
            (skeleton, predicates)
        }
        Query::Join { lhs, rhs, on } => {
            let (lhs_skeleton, mut lhs_preds) = strip_filters(Arc::unwrap_or_clone(lhs));
            let (rhs_skeleton, rhs_preds) = strip_filters(Arc::unwrap_or_clone(rhs));
            lhs_preds.extend(rhs_preds);
            (
                Query::Join {
                    lhs: Arc::new(lhs_skeleton),
                    rhs: Arc::new(rhs_skeleton),
                    on,
                },
                lhs_preds,
            )
        }
        Query::Aggregation { op, field, query } => {
            // Filters under an aggregation change its value, so canonicalize
            // them recursively but do not hoist them out.
            (
                Query::Aggregation {
                    op,
                    field,
                    query: Arc::new(canonicalize_query(
                        &EmptyRegistry,
                        Arc::unwrap_or_clone(query),
                    )),
                },
                Vec::new(),
            )
        }
    }
}

/// A registry with no classes, used when canonicalizing nested queries whose
/// filters must not be hoisted.
struct EmptyRegistry;

impl SchemaRegistry for EmptyRegistry {
    fn class(&self, _name: &str) -> Option<&crate::class::ClassDef> {
        None
    }

    fn class_names(&self) -> Vec<&str> {
        Vec::new()
    }
}

fn canonicalize_skeleton<R: SchemaRegistry + ?Sized>(registry: &R, query: Query) -> Query {
    match query {
        Query::Invocation(mut inv) => {
            sort_input_params(&mut inv);
            Query::Invocation(inv)
        }
        Query::Join { lhs, rhs, mut on } => {
            let mut lhs = canonicalize_skeleton(registry, Arc::unwrap_or_clone(lhs));
            let mut rhs = canonicalize_skeleton(registry, Arc::unwrap_or_clone(rhs));
            on.sort_by(|a, b| a.input.cmp(&b.input).then_with(|| a.output.cmp(&b.output)));
            on.dedup();
            // Joins without parameter passing (explicit `on` or implicit via
            // var refs in the right operand) are commutative: order operands
            // lexically by their first function name.
            let implicit_passing = rhs_uses_lhs_outputs(registry, &lhs, &rhs);
            if on.is_empty() && !implicit_passing {
                let lhs_key = join_sort_key(&lhs);
                let rhs_key = join_sort_key(&rhs);
                if rhs_key < lhs_key {
                    std::mem::swap(&mut lhs, &mut rhs);
                }
            }
            Query::Join {
                lhs: Arc::new(lhs),
                rhs: Arc::new(rhs),
                on,
            }
        }
        Query::Filter { query, predicate } => {
            // strip_filters removes these before we get here, but stay
            // total for robustness.
            Query::Filter {
                query: Arc::new(canonicalize_skeleton(registry, Arc::unwrap_or_clone(query))),
                predicate: simplify(predicate),
            }
        }
        Query::Aggregation { op, field, query } => Query::Aggregation {
            op,
            field,
            query: Arc::new(canonicalize_skeleton(registry, Arc::unwrap_or_clone(query))),
        },
    }
}

fn join_sort_key(query: &Query) -> String {
    query
        .invocations()
        .first()
        .map(|inv| format!("{}.{}", inv.function.class, inv.function.function))
        .unwrap_or_default()
}

fn rhs_uses_lhs_outputs<R: SchemaRegistry + ?Sized>(
    registry: &R,
    lhs: &Query,
    rhs: &Query,
) -> bool {
    let lhs_outputs = query_output_params(registry, lhs);
    rhs.invocations().iter().any(|inv| {
        inv.passed_params()
            .any(|(_, source)| lhs_outputs.contains(&source.to_owned()))
    })
}

/// The output parameters provided by a query (union over its invocations).
fn query_output_params<R: SchemaRegistry + ?Sized>(registry: &R, query: &Query) -> Vec<String> {
    let mut out = Vec::new();
    for inv in query.invocations() {
        if let Some(def) = registry.function(&inv.function.class, &inv.function.function) {
            for p in def.output_params() {
                if !out.contains(&p.name) {
                    out.push(p.name.clone());
                }
            }
        }
    }
    if let Query::Aggregation { op, field, .. } = query {
        match field {
            Some(field) => out.push(field.clone()),
            None => out.push("count".to_owned()),
        }
        let _ = op;
    }
    out
}

/// Attach a filter to the left-most sub-query that provides all the output
/// parameters it mentions (the paper: "each clause is also automatically
/// moved to the left-most function that includes all the output
/// parameters").
fn attach_filter<R: SchemaRegistry + ?Sized>(
    registry: &R,
    query: Query,
    predicate: Predicate,
) -> Query {
    match query {
        Query::Join { lhs, rhs, on } => {
            let mentioned: Vec<String> = predicate
                .mentioned_params()
                .into_iter()
                .map(str::to_owned)
                .collect();
            let lhs_params = query_output_params(registry, &lhs);
            let rhs_params = query_output_params(registry, &rhs);
            let all_in_lhs =
                !mentioned.is_empty() && mentioned.iter().all(|p| lhs_params.contains(p));
            let all_in_rhs =
                !mentioned.is_empty() && mentioned.iter().all(|p| rhs_params.contains(p));
            if all_in_lhs {
                Query::Join {
                    lhs: Arc::new(attach_filter(
                        registry,
                        Arc::unwrap_or_clone(lhs),
                        predicate,
                    )),
                    rhs,
                    on,
                }
            } else if all_in_rhs {
                Query::Join {
                    lhs,
                    rhs: Arc::new(attach_filter(
                        registry,
                        Arc::unwrap_or_clone(rhs),
                        predicate,
                    )),
                    on,
                }
            } else {
                Query::Filter {
                    query: Arc::new(Query::Join { lhs, rhs, on }),
                    predicate,
                }
            }
        }
        other => Query::Filter {
            query: Arc::new(other),
            predicate,
        },
    }
}

fn sort_input_params(inv: &mut Invocation) {
    inv.in_params.sort_by(|a, b| a.name.cmp(&b.name));
    inv.in_params.dedup_by(|a, b| a.name == b.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDef, FunctionDef, FunctionKind, ParamDef, ParamDirection};
    use crate::syntax::parse_program;
    use crate::typecheck::MapRegistry;
    use crate::types::Type;

    fn registry() -> MapRegistry {
        let mut registry = MapRegistry::new();
        registry.add_class(ClassDef::new("com.nytimes").with_function(FunctionDef::new(
            "get_front_page",
            FunctionKind::MONITORABLE_LIST_QUERY,
            vec![
                ParamDef::new("title", Type::String, ParamDirection::Out),
                ParamDef::new("link", Type::Url, ParamDirection::Out),
            ],
        )));
        registry.add_class(
            ClassDef::new("com.washingtonpost").with_function(FunctionDef::new(
                "get_article",
                FunctionKind::MONITORABLE_LIST_QUERY,
                vec![ParamDef::new("headline", Type::String, ParamDirection::Out)],
            )),
        );
        registry.add_class(
            ClassDef::new("com.yandex.translate").with_function(FunctionDef::new(
                "translate",
                FunctionKind::QUERY,
                vec![
                    ParamDef::new("text", Type::String, ParamDirection::InReq),
                    ParamDef::new("translated_text", Type::String, ParamDirection::Out),
                ],
            )),
        );
        registry
    }

    fn canon(source: &str) -> Program {
        let program = parse_program(source).unwrap();
        canonicalized(&registry(), &program)
    }

    #[test]
    fn input_parameters_are_sorted_alphabetically() {
        let a = canon("now => @com.yandex.translate.translate(text = \"ciao\") => notify");
        let b = canon("now => @com.yandex.translate.translate(text = \"ciao\") => notify");
        assert_eq!(a, b);

        let program = parse_program(
            "now => @com.facebook.post_picture(picture_url = \"u\", caption = \"c\")",
        )
        .unwrap();
        let canonical = canonicalized(&registry(), &program);
        if let Action::Invocation(inv) = &canonical.action {
            let names: Vec<&str> = inv.in_params.iter().map(|p| p.name.as_str()).collect();
            assert_eq!(names, vec!["caption", "picture_url"]);
        } else {
            panic!("expected an action invocation");
        }
    }

    #[test]
    fn nested_filters_are_merged_and_sorted() {
        let a = canon(
            "now => (@com.nytimes.get_front_page() filter title substr \"rust\") filter link substr \"blog\" => notify",
        );
        let b = canon(
            "now => (@com.nytimes.get_front_page() filter link substr \"blog\") filter title substr \"rust\" => notify",
        );
        assert_eq!(a, b);
        let query = a.query.unwrap();
        assert!(matches!(&*query, Query::Filter { predicate, .. } if predicate.atom_count() == 2));
    }

    #[test]
    fn commutative_joins_are_ordered_lexically() {
        let a = canon(
            "now => @com.washingtonpost.get_article() join @com.nytimes.get_front_page() => notify",
        );
        let b = canon(
            "now => @com.nytimes.get_front_page() join @com.washingtonpost.get_article() => notify",
        );
        assert_eq!(a, b);
        let query = a.query.unwrap();
        match &*query {
            Query::Join { lhs, .. } => {
                assert_eq!(lhs.invocations()[0].function.class, "com.nytimes");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn joins_with_param_passing_are_not_reordered() {
        let a = canon(
            "now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on (text = title) => notify",
        );
        match &*a.query.unwrap() {
            Query::Join { lhs, .. } => {
                assert_eq!(lhs.invocations()[0].function.class, "com.nytimes");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Even though com.yandex.translate < com.nytimes would not reorder,
        // check the reverse direction is also preserved when passing params.
        let b = canon(
            "now => @com.washingtonpost.get_article() join @com.yandex.translate.translate(text = headline) => notify",
        );
        match &*b.query.unwrap() {
            Query::Join { lhs, .. } => {
                assert_eq!(lhs.invocations()[0].function.class, "com.washingtonpost");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filters_move_to_the_operand_that_provides_the_params() {
        let program = canon(
            "now => (@com.nytimes.get_front_page() join @com.washingtonpost.get_article()) filter title substr \"election\" => notify",
        );
        match &*program.query.unwrap() {
            Query::Join { lhs, rhs, .. } => {
                assert!(
                    matches!(**lhs, Query::Filter { .. }),
                    "filter should move into the nytimes operand"
                );
                assert!(matches!(**rhs, Query::Invocation(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equivalence_checks_canonical_forms() {
        let registry = registry();
        let a = parse_program(
            "now => @com.nytimes.get_front_page() filter title substr \"a\" && link substr \"b\" => notify",
        )
        .unwrap();
        let b = parse_program(
            "now => @com.nytimes.get_front_page() filter link substr \"b\" && title substr \"a\" => notify",
        )
        .unwrap();
        assert!(equivalent(&registry, &a, &b));
        let c = parse_program("now => @com.nytimes.get_front_page() => notify").unwrap();
        assert!(!equivalent(&registry, &a, &c));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let registry = registry();
        let sources = [
            "now => @com.washingtonpost.get_article() join @com.nytimes.get_front_page() => notify",
            "now => (@com.nytimes.get_front_page() filter title substr \"x\") filter link substr \"y\" => notify",
            "monitor (@com.nytimes.get_front_page()) => notify",
        ];
        for source in sources {
            let once = canonicalized(&registry, &parse_program(source).unwrap());
            let twice = canonicalized(&registry, &once);
            assert_eq!(once, twice, "not idempotent for `{source}`");
        }
    }
}
