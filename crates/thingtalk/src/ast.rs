//! The ThingTalk program grammar (Fig. 5), plus the TT+A aggregation
//! extension (§6.3).
//!
//! A program is `stream => query? => action`. The stream clause specifies the
//! evaluation of the program as a continuous stream of events; the optional
//! query clause specifies what data should be retrieved when the events
//! occur; the action clause specifies what the program should do. Queries can
//! be filtered with boolean predicates and joined with parameter passing;
//! streams can be timers, monitors of queries, or edge filters over streams.
//!
//! # Shared subtrees
//!
//! Query, stream, and action subtrees are [`Arc`]-backed so the synthesis
//! engine can compose thousands of programs from a pool of phrase
//! derivations without deep-cloning the fragments: wrapping a query in a
//! filter, a monitor, or a program is a reference-count bump. Mutation goes
//! through [`Arc::make_mut`], which clones lazily only when a subtree is
//! actually shared (copy-on-write), so `&mut` traversals like
//! [`Program::invocations_mut`] keep working unchanged for callers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A reference to a skill-library function: class name + function name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionRef {
    /// The class (skill) name, e.g. `com.twitter`.
    pub class: String,
    /// The function name within the class, e.g. `timeline`.
    pub function: String,
}

impl FunctionRef {
    /// Create a function reference.
    pub fn new(class: impl Into<String>, function: impl Into<String>) -> Self {
        FunctionRef {
            class: class.into(),
            function: function.into(),
        }
    }

    /// Parse a `@class.function` token (without the leading `@`), splitting
    /// at the last dot.
    pub fn parse_qualified(qualified: &str) -> Option<Self> {
        let (class, function) = qualified.rsplit_once('.')?;
        if class.is_empty() || function.is_empty() {
            return None;
        }
        Some(FunctionRef::new(class, function))
    }
}

impl fmt::Display for FunctionRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}.{}", self.class, self.function)
    }
}

/// A keyword input-parameter binding `name = value` in a function invocation.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct InputParam {
    /// The input parameter name.
    pub name: String,
    /// The bound value: a constant, a [`Value::VarRef`] for parameter
    /// passing, `$event`, or `$?`.
    pub value: Value,
}

impl InputParam {
    /// Create an input parameter binding.
    pub fn new(name: impl Into<String>, value: Value) -> Self {
        InputParam {
            name: name.into(),
            value,
        }
    }
}

impl fmt::Display for InputParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// An invocation of a skill-library function with keyword parameters.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct Invocation {
    /// The invoked function.
    pub function: FunctionRef,
    /// Keyword input-parameter bindings.
    pub in_params: Vec<InputParam>,
}

impl Invocation {
    /// Create an invocation with no parameters.
    pub fn new(class: impl Into<String>, function: impl Into<String>) -> Self {
        Invocation {
            function: FunctionRef::new(class, function),
            in_params: Vec::new(),
        }
    }

    /// Add a keyword parameter (builder style).
    pub fn with_param(mut self, name: impl Into<String>, value: Value) -> Self {
        self.in_params.push(InputParam::new(name, value));
        self
    }

    /// Look up a bound input parameter by name.
    pub fn param(&self, name: &str) -> Option<&Value> {
        self.in_params
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.value)
    }

    /// Names of all parameters bound by parameter passing (var references).
    pub fn passed_params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.in_params.iter().filter_map(|p| match &p.value {
            Value::VarRef(source) => Some((p.name.as_str(), source.as_str())),
            _ => None,
        })
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self.in_params.iter().map(|p| p.to_string()).collect();
        write!(f, "{}({})", self.function, params.join(", "))
    }
}

/// Comparison and containment operators usable in filter predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CompareOp {
    Eq,
    Neq,
    Gt,
    Lt,
    Geq,
    Leq,
    /// Array containment: the output array contains the given element.
    Contains,
    /// Substring containment.
    Substr,
    StartsWith,
    EndsWith,
    /// Membership of the output value in a constant array.
    InArray,
}

impl CompareOp {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "==",
            CompareOp::Neq => "!=",
            CompareOp::Gt => ">",
            CompareOp::Lt => "<",
            CompareOp::Geq => ">=",
            CompareOp::Leq => "<=",
            CompareOp::Contains => "contains",
            CompareOp::Substr => "substr",
            CompareOp::StartsWith => "starts_with",
            CompareOp::EndsWith => "ends_with",
            CompareOp::InArray => "in_array",
        }
    }

    /// Parse a surface-syntax spelling.
    pub fn from_symbol(s: &str) -> Option<Self> {
        Some(match s {
            "==" | "=" => CompareOp::Eq,
            "!=" => CompareOp::Neq,
            ">" => CompareOp::Gt,
            "<" => CompareOp::Lt,
            ">=" => CompareOp::Geq,
            "<=" => CompareOp::Leq,
            "contains" => CompareOp::Contains,
            "substr" => CompareOp::Substr,
            "starts_with" => CompareOp::StartsWith,
            "ends_with" => CompareOp::EndsWith,
            "in_array" => CompareOp::InArray,
            _ => return None,
        })
    }

    /// The negation of this operator, when one exists as a single operator.
    pub fn negate(self) -> Option<Self> {
        Some(match self {
            CompareOp::Eq => CompareOp::Neq,
            CompareOp::Neq => CompareOp::Eq,
            CompareOp::Gt => CompareOp::Leq,
            CompareOp::Lt => CompareOp::Geq,
            CompareOp::Geq => CompareOp::Lt,
            CompareOp::Leq => CompareOp::Gt,
            _ => return None,
        })
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A boolean predicate over the output parameters of a query (Fig. 5).
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Logical negation.
    Not(Box<Predicate>),
    /// Conjunction of sub-predicates.
    And(Vec<Predicate>),
    /// Disjunction of sub-predicates.
    Or(Vec<Predicate>),
    /// An atomic comparison `param op value`.
    Atom {
        /// The output parameter being tested.
        param: String,
        /// The comparison operator.
        op: CompareOp,
        /// The right-hand-side value.
        value: Value,
    },
    /// A predicated query function (`f(...) { p }`): the predicate holds if
    /// some result of the external query satisfies the inner predicate.
    External {
        /// The external query invocation.
        invocation: Invocation,
        /// The predicate over the external query's results.
        predicate: Box<Predicate>,
    },
}

impl Predicate {
    /// Convenience constructor for an atomic comparison.
    pub fn atom(param: impl Into<String>, op: CompareOp, value: Value) -> Self {
        Predicate::Atom {
            param: param.into(),
            op,
            value,
        }
    }

    /// Conjunction of two predicates, flattening nested conjunctions.
    pub fn and(self, other: Predicate) -> Predicate {
        let mut operands = Vec::new();
        for p in [self, other] {
            match p {
                Predicate::And(mut inner) => operands.append(&mut inner),
                other => operands.push(other),
            }
        }
        Predicate::And(operands)
    }

    /// Whether the predicate is the trivial `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// Collect the output-parameter names mentioned by this predicate.
    pub fn mentioned_params(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Not(inner) => inner.collect_params(out),
            Predicate::And(items) | Predicate::Or(items) => {
                for item in items {
                    item.collect_params(out);
                }
            }
            Predicate::Atom { param, .. } => out.push(param),
            Predicate::External { predicate, .. } => predicate.collect_params(out),
        }
    }

    /// Count the atomic comparisons in the predicate.
    pub fn atom_count(&self) -> usize {
        match self {
            Predicate::True | Predicate::False => 0,
            Predicate::Not(inner) => inner.atom_count(),
            Predicate::And(items) | Predicate::Or(items) => {
                items.iter().map(|p| p.atom_count()).sum()
            }
            Predicate::Atom { .. } => 1,
            Predicate::External { predicate, .. } => 1 + predicate.atom_count(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Not(inner) => write!(f, "!({inner})"),
            Predicate::And(items) => {
                let rendered: Vec<String> = items.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", rendered.join(" && "))
            }
            Predicate::Or(items) => {
                let rendered: Vec<String> = items.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", rendered.join(" || "))
            }
            Predicate::Atom { param, op, value } => write!(f, "{param} {op} {value}"),
            Predicate::External {
                invocation,
                predicate,
            } => write!(f, "{invocation} {{ {predicate} }}"),
        }
    }
}

/// Aggregation operators of the TT+A extension (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AggregationOp {
    Max,
    Min,
    Sum,
    Avg,
    Count,
}

impl AggregationOp {
    /// The surface-syntax keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggregationOp::Max => "max",
            AggregationOp::Min => "min",
            AggregationOp::Sum => "sum",
            AggregationOp::Avg => "avg",
            AggregationOp::Count => "count",
        }
    }

    /// Parse the surface-syntax keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "max" => AggregationOp::Max,
            "min" => AggregationOp::Min,
            "sum" => AggregationOp::Sum,
            "avg" => AggregationOp::Avg,
            "count" => AggregationOp::Count,
            _ => return None,
        })
    }
}

impl fmt::Display for AggregationOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A parameter-passing clause in a join: `on (input = output)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinParam {
    /// The input parameter of the right-hand query.
    pub input: String,
    /// The output parameter of the left-hand query.
    pub output: String,
}

impl fmt::Display for JoinParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.input, self.output)
    }
}

/// A query expression (Fig. 5, plus TT+A aggregation).
///
/// Subqueries are [`Arc`]-shared: wrapping an existing query in a filter,
/// join, or aggregation does not clone it.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub enum Query {
    /// A direct function invocation.
    Invocation(Invocation),
    /// A filtered query.
    Filter {
        /// The filtered query.
        query: Arc<Query>,
        /// The boolean predicate over output parameters.
        predicate: Predicate,
    },
    /// A join of two queries, with optional parameter passing.
    Join {
        /// The left-hand query.
        lhs: Arc<Query>,
        /// The right-hand query.
        rhs: Arc<Query>,
        /// Parameter passing `on (input = output)` clauses.
        on: Vec<JoinParam>,
    },
    /// A TT+A aggregation over a query.
    Aggregation {
        /// The aggregation operator.
        op: AggregationOp,
        /// The aggregated output parameter; `None` for `count`.
        field: Option<String>,
        /// The aggregated query.
        query: Arc<Query>,
    },
}

impl Query {
    /// Wrap the query in a filter, merging with an existing filter node.
    pub fn filtered(self, predicate: Predicate) -> Query {
        match self {
            Query::Filter {
                query,
                predicate: existing,
            } => Query::Filter {
                query,
                predicate: existing.and(predicate),
            },
            other => Query::Filter {
                query: Arc::new(other),
                predicate,
            },
        }
    }

    /// Wrap a shared query in a filter without cloning its subtree: the
    /// result either shares `base` directly or, when `base` is already a
    /// filter, shares the filtered subquery and merges the predicates.
    pub fn shared_filtered(base: &Arc<Query>, predicate: Predicate) -> Query {
        match &**base {
            Query::Filter {
                query,
                predicate: existing,
            } => Query::Filter {
                query: Arc::clone(query),
                predicate: existing.clone().and(predicate),
            },
            _ => Query::Filter {
                query: Arc::clone(base),
                predicate,
            },
        }
    }

    /// All invocations in the query, left to right.
    pub fn invocations(&self) -> Vec<&Invocation> {
        let mut out = Vec::new();
        self.collect_invocations(&mut out);
        out
    }

    fn collect_invocations<'a>(&'a self, out: &mut Vec<&'a Invocation>) {
        match self {
            Query::Invocation(inv) => out.push(inv),
            Query::Filter { query, .. } => query.collect_invocations(out),
            Query::Join { lhs, rhs, .. } => {
                lhs.collect_invocations(out);
                rhs.collect_invocations(out);
            }
            Query::Aggregation { query, .. } => query.collect_invocations(out),
        }
    }

    /// Mutable access to all invocations in the query.
    pub fn invocations_mut(&mut self) -> Vec<&mut Invocation> {
        let mut out = Vec::new();
        self.collect_invocations_mut(&mut out);
        out
    }

    fn collect_invocations_mut<'a>(&'a mut self, out: &mut Vec<&'a mut Invocation>) {
        match self {
            Query::Invocation(inv) => out.push(inv),
            Query::Filter { query, .. } => Arc::make_mut(query).collect_invocations_mut(out),
            Query::Join { lhs, rhs, .. } => {
                Arc::make_mut(lhs).collect_invocations_mut(out);
                Arc::make_mut(rhs).collect_invocations_mut(out);
            }
            Query::Aggregation { query, .. } => Arc::make_mut(query).collect_invocations_mut(out),
        }
    }

    /// All filter predicates in the query.
    pub fn predicates(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        self.collect_predicates(&mut out);
        out
    }

    fn collect_predicates<'a>(&'a self, out: &mut Vec<&'a Predicate>) {
        match self {
            Query::Invocation(_) => {}
            Query::Filter { query, predicate } => {
                query.collect_predicates(out);
                out.push(predicate);
            }
            Query::Join { lhs, rhs, .. } => {
                lhs.collect_predicates(out);
                rhs.collect_predicates(out);
            }
            Query::Aggregation { query, .. } => query.collect_predicates(out),
        }
    }

    /// Whether the query contains a filter anywhere.
    pub fn has_filter(&self) -> bool {
        !self.predicates().is_empty()
    }

    /// Whether the query contains a join anywhere.
    pub fn has_join(&self) -> bool {
        match self {
            Query::Invocation(_) => false,
            Query::Filter { query, .. } | Query::Aggregation { query, .. } => query.has_join(),
            Query::Join { .. } => true,
        }
    }

    /// Whether the query contains an aggregation anywhere.
    pub fn has_aggregation(&self) -> bool {
        match self {
            Query::Invocation(_) => false,
            Query::Filter { query, .. } => query.has_aggregation(),
            Query::Join { lhs, rhs, .. } => lhs.has_aggregation() || rhs.has_aggregation(),
            Query::Aggregation { .. } => true,
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Invocation(inv) => write!(f, "{inv}"),
            Query::Filter { query, predicate } => write!(f, "({query}) filter {predicate}"),
            Query::Join { lhs, rhs, on } => {
                write!(f, "{lhs} join {rhs}")?;
                if !on.is_empty() {
                    let rendered: Vec<String> = on.iter().map(|p| p.to_string()).collect();
                    write!(f, " on ({})", rendered.join(", "))?;
                }
                Ok(())
            }
            Query::Aggregation { op, field, query } => match field {
                Some(field) => write!(f, "agg {op} {field} of ({query})"),
                None => write!(f, "agg {op} of ({query})"),
            },
        }
    }
}

/// A stream expression (Fig. 5).
///
/// Monitored queries and edge-filtered streams are [`Arc`]-shared, like
/// [`Query`] subtrees.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub enum Stream {
    /// The degenerate stream `now`, which triggers the program once
    /// immediately.
    Now,
    /// A timer firing at a given time of day.
    AtTimer {
        /// The time of day the timer fires.
        time: Value,
    },
    /// A periodic timer.
    Timer {
        /// The base date from which the timer counts.
        base: Value,
        /// The firing interval (a measure of time).
        interval: Value,
    },
    /// A monitor of a query: triggers whenever the query result changes.
    Monitor {
        /// The monitored query.
        query: Arc<Query>,
        /// Optional list of output parameters to watch (`on new file_name`);
        /// empty means any change triggers.
        on: Vec<String>,
    },
    /// An edge filter: triggers when the predicate transitions from false to
    /// true on the underlying stream.
    EdgeFilter {
        /// The filtered stream.
        stream: Arc<Stream>,
        /// The edge predicate.
        predicate: Predicate,
    },
}

impl Stream {
    /// Whether this is the degenerate `now` stream.
    pub fn is_now(&self) -> bool {
        matches!(self, Stream::Now)
    }

    /// The monitored query, if any (looking through edge filters).
    pub fn monitored_query(&self) -> Option<&Query> {
        match self {
            Stream::Monitor { query, .. } => Some(query),
            Stream::EdgeFilter { stream, .. } => stream.monitored_query(),
            _ => None,
        }
    }

    /// All invocations in the stream.
    pub fn invocations(&self) -> Vec<&Invocation> {
        match self {
            Stream::Monitor { query, .. } => query.invocations(),
            Stream::EdgeFilter { stream, .. } => stream.invocations(),
            _ => Vec::new(),
        }
    }

    /// Mutable access to all invocations in the stream.
    pub fn invocations_mut(&mut self) -> Vec<&mut Invocation> {
        match self {
            Stream::Monitor { query, .. } => Arc::make_mut(query).invocations_mut(),
            Stream::EdgeFilter { stream, .. } => Arc::make_mut(stream).invocations_mut(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stream::Now => write!(f, "now"),
            Stream::AtTimer { time } => write!(f, "attimer time = {time}"),
            Stream::Timer { base, interval } => {
                write!(f, "timer base = {base} interval = {interval}")
            }
            Stream::Monitor { query, on } => {
                write!(f, "monitor ({query})")?;
                if !on.is_empty() {
                    write!(f, " on new {}", on.join(", "))?;
                }
                Ok(())
            }
            Stream::EdgeFilter { stream, predicate } => {
                write!(f, "edge ({stream}) on {predicate}")
            }
        }
    }
}

/// An action expression (Fig. 5): either the builtin `notify` or an action
/// function invocation.
///
/// The invocation is [`Arc`]-shared so the same instantiated action phrase
/// can appear in many synthesized programs without cloning.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Present the result to the user.
    Notify,
    /// Invoke an action function.
    Invocation(Arc<Invocation>),
}

impl Action {
    /// Whether this is the builtin `notify`.
    pub fn is_notify(&self) -> bool {
        matches!(self, Action::Notify)
    }

    /// The invocation, if this is not `notify`.
    pub fn invocation(&self) -> Option<&Invocation> {
        match self {
            Action::Notify => None,
            Action::Invocation(inv) => Some(inv),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Notify => write!(f, "notify"),
            Action::Invocation(inv) => write!(f, "{inv}"),
        }
    }
}

/// A complete ThingTalk program: `stream [=> query] => action`.
///
/// # Examples
///
/// ```
/// use thingtalk::ast::{Action, Invocation, Program, Stream};
/// use thingtalk::value::Value;
///
/// // Fig. 1: get a cat picture and post it on Facebook. Query and action
/// // subtrees are Arc-shared; `.into()` wraps the owned fragments.
/// let program = Program {
///     stream: Stream::Now,
///     query: Some(
///         thingtalk::ast::Query::Invocation(Invocation::new("com.thecatapi", "get")).into(),
///     ),
///     action: Action::Invocation(
///         Invocation::new("com.facebook", "post_picture")
///             .with_param("picture_url", Value::VarRef("picture_url".into()))
///             .with_param("caption", Value::string("funny cat"))
///             .into(),
///     ),
/// };
/// assert!(program.is_compound());
/// assert!(program.uses_param_passing());
/// ```
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct Program {
    /// The stream clause.
    pub stream: Stream,
    /// The optional query clause ([`Arc`]-shared).
    pub query: Option<Arc<Query>>,
    /// The action clause.
    pub action: Action,
}

impl Program {
    /// A primitive "do" command: `now => action`.
    pub fn do_action(action: impl Into<Arc<Invocation>>) -> Self {
        Program {
            stream: Stream::Now,
            query: None,
            action: Action::Invocation(action.into()),
        }
    }

    /// A primitive "get" command: `now => query => notify`.
    pub fn get_query(query: impl Into<Arc<Query>>) -> Self {
        Program {
            stream: Stream::Now,
            query: Some(query.into()),
            action: Action::Notify,
        }
    }

    /// A "when" command: `monitor(query) => notify`.
    pub fn when_notify(query: impl Into<Arc<Query>>) -> Self {
        Program {
            stream: Stream::Monitor {
                query: query.into(),
                on: Vec::new(),
            },
            query: None,
            action: Action::Notify,
        }
    }

    /// All function invocations in the program, in clause order.
    pub fn invocations(&self) -> Vec<&Invocation> {
        let mut out = self.stream.invocations();
        if let Some(query) = &self.query {
            out.extend(query.invocations());
        }
        if let Action::Invocation(inv) = &self.action {
            out.push(inv.as_ref());
        }
        out
    }

    /// Mutable access to all invocations in the program (copy-on-write for
    /// shared subtrees).
    pub fn invocations_mut(&mut self) -> Vec<&mut Invocation> {
        let mut out = self.stream.invocations_mut();
        if let Some(query) = &mut self.query {
            out.extend(Arc::make_mut(query).invocations_mut());
        }
        if let Action::Invocation(inv) = &mut self.action {
            out.push(Arc::make_mut(inv));
        }
        out
    }

    /// The distinct functions used by the program, in clause order.
    pub fn functions(&self) -> Vec<&FunctionRef> {
        let mut seen = Vec::new();
        for inv in self.invocations() {
            if !seen.contains(&&inv.function) {
                seen.push(&inv.function);
            }
        }
        seen
    }

    /// The distinct skill (class) names used by the program.
    pub fn devices(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for inv in self.invocations() {
            if !seen.contains(&inv.function.class.as_str()) {
                seen.push(&inv.function.class);
            }
        }
        seen
    }

    /// Whether the program is a compound command (uses two or more skill
    /// functions), as opposed to a primitive command (exactly one).
    pub fn is_compound(&self) -> bool {
        self.invocations().len() >= 2
    }

    /// Whether any clause passes an output parameter into an input parameter.
    pub fn uses_param_passing(&self) -> bool {
        let passes_in_invocation = self
            .invocations()
            .iter()
            .any(|inv| inv.passed_params().next().is_some());
        let passes_in_join = self.query.as_deref().is_some_and(query_has_join_params);
        passes_in_invocation || passes_in_join
    }

    /// Whether any clause has a filter predicate.
    pub fn has_filter(&self) -> bool {
        let stream_filter = match &self.stream {
            Stream::Monitor { query, .. } => query.has_filter(),
            Stream::EdgeFilter { .. } => true,
            _ => false,
        };
        stream_filter || self.query.as_ref().is_some_and(|q| q.has_filter())
    }

    /// Whether the program uses a TT+A aggregation.
    pub fn has_aggregation(&self) -> bool {
        self.query.as_ref().is_some_and(|q| q.has_aggregation())
            || self
                .stream
                .monitored_query()
                .is_some_and(|q| q.has_aggregation())
    }

    /// Whether the program is event driven (stream is not `now`).
    pub fn is_event_driven(&self) -> bool {
        !self.stream.is_now()
    }

    /// All constant values appearing as input parameters or filter operands,
    /// together with the parameter name they are bound to. Used by parameter
    /// replacement (§3.3).
    pub fn constants(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        for inv in self.invocations() {
            for p in &inv.in_params {
                if p.value.is_constant() {
                    out.push((p.name.clone(), p.value.clone()));
                }
            }
        }
        let mut predicates: Vec<&Predicate> = Vec::new();
        if let Some(query) = &self.query {
            predicates.extend(query.predicates());
        }
        if let Some(query) = self.stream.monitored_query() {
            predicates.extend(query.predicates());
        }
        if let Stream::EdgeFilter { predicate, .. } = &self.stream {
            predicates.push(predicate);
        }
        for predicate in predicates {
            collect_predicate_constants(predicate, &mut out);
        }
        out
    }
}

fn query_has_join_params(query: &Query) -> bool {
    match query {
        Query::Invocation(_) => false,
        Query::Filter { query, .. } | Query::Aggregation { query, .. } => {
            query_has_join_params(query)
        }
        Query::Join { lhs, rhs, on } => {
            !on.is_empty() || query_has_join_params(lhs) || query_has_join_params(rhs)
        }
    }
}

fn collect_predicate_constants(predicate: &Predicate, out: &mut Vec<(String, Value)>) {
    match predicate {
        Predicate::True | Predicate::False => {}
        Predicate::Not(inner) => collect_predicate_constants(inner, out),
        Predicate::And(items) | Predicate::Or(items) => {
            for item in items {
                collect_predicate_constants(item, out);
            }
        }
        Predicate::Atom { param, value, .. } => {
            if value.is_constant() {
                out.push((param.clone(), value.clone()));
            }
        }
        Predicate::External {
            invocation,
            predicate,
        } => {
            for p in &invocation.in_params {
                if p.value.is_constant() {
                    out.push((p.name.clone(), p.value.clone()));
                }
            }
            collect_predicate_constants(predicate, out);
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stream)?;
        if let Some(query) = &self.query {
            write!(f, " => {query}")?;
        }
        write!(f, " => {}", self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retweet_program() -> Program {
        // monitor (@com.twitter.timeline() filter author == "PLDI")
        //   => @com.twitter.retweet(tweet_id = tweet_id)
        Program {
            stream: Stream::Monitor {
                query: Arc::new(
                    Query::Invocation(Invocation::new("com.twitter", "timeline")).filtered(
                        Predicate::atom("author", CompareOp::Eq, Value::string("PLDI")),
                    ),
                ),
                on: Vec::new(),
            },
            query: None,
            action: Action::Invocation(Arc::new(
                Invocation::new("com.twitter", "retweet")
                    .with_param("tweet_id", Value::VarRef("tweet_id".into())),
            )),
        }
    }

    #[test]
    fn function_ref_qualified_parsing() {
        let fr = FunctionRef::parse_qualified("com.dropbox.list_folder").unwrap();
        assert_eq!(fr.class, "com.dropbox");
        assert_eq!(fr.function, "list_folder");
        assert!(FunctionRef::parse_qualified("nodots").is_none());
    }

    #[test]
    fn retweet_example_structure() {
        let program = retweet_program();
        assert!(program.is_compound());
        assert!(program.uses_param_passing());
        assert!(program.has_filter());
        assert!(program.is_event_driven());
        assert_eq!(program.devices(), vec!["com.twitter"]);
        assert_eq!(program.functions().len(), 2);
    }

    #[test]
    fn display_matches_surface_syntax() {
        let program = retweet_program();
        assert_eq!(
            program.to_string(),
            "monitor ((@com.twitter.timeline()) filter author == \"PLDI\") \
             => @com.twitter.retweet(tweet_id = tweet_id)"
        );
    }

    #[test]
    fn filtered_merges_nested_filters() {
        let q = Query::Invocation(Invocation::new("com.gmail", "inbox"))
            .filtered(Predicate::atom(
                "sender",
                CompareOp::Eq,
                Value::string("Alice"),
            ))
            .filtered(Predicate::atom(
                "is_unread",
                CompareOp::Eq,
                Value::Boolean(true),
            ));
        match &q {
            Query::Filter { predicate, .. } => {
                assert_eq!(predicate.atom_count(), 2);
                assert!(matches!(predicate, Predicate::And(items) if items.len() == 2));
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn constants_collects_filter_and_param_values() {
        let program = retweet_program();
        let constants = program.constants();
        assert_eq!(constants.len(), 1);
        assert_eq!(constants[0].0, "author");
    }

    #[test]
    fn aggregation_detection() {
        let program = Program::get_query(Query::Aggregation {
            op: AggregationOp::Sum,
            field: Some("file_size".into()),
            query: Arc::new(Query::Invocation(Invocation::new(
                "com.dropbox",
                "list_folder",
            ))),
        });
        assert!(program.has_aggregation());
        assert!(!program.is_compound());
        assert_eq!(
            program.to_string(),
            "now => agg sum file_size of (@com.dropbox.list_folder()) => notify"
        );
    }

    #[test]
    fn primitive_constructors() {
        let p = Program::do_action(Invocation::new("com.slack", "send"));
        assert!(!p.is_compound());
        assert!(!p.is_event_driven());
        let g = Program::get_query(Query::Invocation(Invocation::new("com.gmail", "inbox")));
        assert!(g.action.is_notify());
        let w = Program::when_notify(Query::Invocation(Invocation::new("com.gmail", "inbox")));
        assert!(w.is_event_driven());
    }

    #[test]
    fn compare_op_negation_and_parsing() {
        assert_eq!(CompareOp::from_symbol(">"), Some(CompareOp::Gt));
        assert_eq!(CompareOp::from_symbol("=="), Some(CompareOp::Eq));
        assert_eq!(CompareOp::Gt.negate(), Some(CompareOp::Leq));
        assert_eq!(CompareOp::Contains.negate(), None);
        assert_eq!(CompareOp::from_symbol("~"), None);
    }
}
