//! The neural-network syntax: programs as flat token sequences.
//!
//! The semantic parser is a sequence-to-sequence model, so programs must be
//! linearized into token sequences. Following §2.1 and §2.3 of the paper:
//!
//! * parameters are *keyword* parameters (`param:caption:String = ...`), so
//!   the model only needs to learn partial signatures; the ablation of
//!   Table 3 can switch to positional parameters;
//! * each parameter can be annotated with its type (also ablatable);
//! * string and entity values are split into one token per word surrounded
//!   by quote tokens, so the pointer-generator decoder can copy them from
//!   the input sentence word by word;
//! * numbers, dates and times that were normalized by argument
//!   identification appear as named constants (`NUMBER_0`, `DATE_1`, …),
//!   which are single tokens.
//!
//! [`to_tokens`] and [`from_tokens`] form a round trip for the default
//! options; the positional variant is only used for training-time ablation
//! and is not decodable without the registry.

use crate::ast::{Action, Predicate, Program, Query, Stream};
use crate::error::{Error, Result};
use crate::syntax::parse_program;
use crate::typecheck::{typecheck, SchemaRegistry};
use crate::value::Value;

/// Upper bound on the number of NN tokens [`from_tokens`] will decode.
///
/// Model output is bounded by the decoder's `max_length`, but the decode
/// entry points also accept untrusted token sequences (e.g. replayed
/// requests); the cap turns pathological inputs into an [`Error::Parse`]
/// instead of unbounded work.
pub const MAX_DECODE_TOKENS: usize = 1024;

/// Options controlling the token serialization, used by the Table 3
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NnSyntaxOptions {
    /// Serialize parameters as `param:name = value` keyword tokens; when
    /// `false`, values are emitted positionally in declaration order.
    pub keyword_params: bool,
    /// Append the parameter type to keyword tokens
    /// (`param:caption:String`).
    pub type_annotations: bool,
}

impl Default for NnSyntaxOptions {
    fn default() -> Self {
        NnSyntaxOptions {
            keyword_params: true,
            type_annotations: false,
        }
    }
}

impl NnSyntaxOptions {
    /// The configuration used by the full Genie model (keyword parameters,
    /// type annotations on).
    pub fn full() -> Self {
        NnSyntaxOptions {
            keyword_params: true,
            type_annotations: true,
        }
    }
}

/// Serialize a program into NN-syntax tokens.
///
/// # Examples
///
/// ```
/// use thingtalk::nn_syntax::{to_tokens, NnSyntaxOptions};
/// use thingtalk::syntax::parse_program;
///
/// let program = parse_program(
///     "now => @com.thecatapi.get() => @com.facebook.post_picture(caption = \"funny cat\")",
/// )?;
/// let tokens = to_tokens(&program, NnSyntaxOptions::default());
/// assert!(tokens.contains(&"@com.facebook.post_picture".to_owned()));
/// assert!(tokens.contains(&"funny".to_owned()));
/// # Ok::<(), thingtalk::Error>(())
/// ```
pub fn to_tokens(program: &Program, options: NnSyntaxOptions) -> Vec<String> {
    let mut out = Vec::new();
    stream_tokens(&program.stream, options, &mut out);
    if let Some(query) = &program.query {
        out.push("=>".to_owned());
        query_tokens(query, options, &mut out);
    }
    out.push("=>".to_owned());
    match &program.action {
        Action::Notify => out.push("notify".to_owned()),
        Action::Invocation(inv) => invocation_tokens(inv, options, &mut out),
    }
    out
}

/// Deserialize NN-syntax tokens back into a program. Only the default
/// keyword-parameter form (with or without type annotations) is decodable;
/// this is what the model emits at inference time.
///
/// # Errors
///
/// Returns a parse error if the token sequence is not a well-formed program.
pub fn from_tokens(tokens: &[String]) -> Result<Program> {
    let source = tokens_to_source(tokens)?;
    parse_program(&source)
}

/// Decode NN-syntax tokens and typecheck the result against a schema
/// registry — the decode path a serving system must run on every model
/// candidate before trusting it.
///
/// # Errors
///
/// Returns the decode error if the tokens are not a well-formed program, or
/// the type error if the decoded program does not typecheck (unknown
/// function, unknown parameter, type mismatch).
pub fn from_tokens_checked<R: SchemaRegistry + ?Sized>(
    registry: &R,
    tokens: &[String],
) -> Result<Program> {
    let program = from_tokens(tokens)?;
    typecheck(registry, &program)?;
    Ok(program)
}

/// The textual surface form reconstructed from NN tokens (useful for
/// debugging model output).
pub fn tokens_to_source(tokens: &[String]) -> Result<String> {
    if tokens.len() > MAX_DECODE_TOKENS {
        return Err(Error::parse(format!(
            "token sequence of length {} exceeds the decode limit of {MAX_DECODE_TOKENS}",
            tokens.len()
        )));
    }
    let mut pieces: Vec<String> = Vec::new();
    let mut in_string = false;
    let mut string_words: Vec<String> = Vec::new();
    for token in tokens {
        if token == "\"" {
            if in_string {
                pieces.push(format!("\"{}\"", string_words.join(" ")));
                string_words.clear();
                in_string = false;
            } else {
                in_string = true;
            }
            continue;
        }
        if in_string {
            string_words.push(token.clone());
            continue;
        }
        if let Some(rest) = token.strip_prefix("param:") {
            // `param:name` or `param:name:Type`
            let name = rest.split(':').next().unwrap_or(rest);
            pieces.push(name.to_owned());
            continue;
        }
        if let Some(unit) = token.strip_prefix("unit:") {
            // Attach the unit to the previous number token.
            match pieces.last_mut() {
                Some(last)
                    if last
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_digit() || c == '-') =>
                {
                    last.push_str(unit);
                }
                _ => {
                    return Err(Error::parse(format!(
                        "unit token `{token}` does not follow a number"
                    )))
                }
            }
            continue;
        }
        if let Some(kind) = token.strip_prefix("^^") {
            match pieces.last_mut() {
                Some(last) if last.starts_with('"') => {
                    last.push_str("^^");
                    last.push_str(kind);
                }
                _ => {
                    return Err(Error::parse(format!(
                        "entity type token `{token}` does not follow a string"
                    )))
                }
            }
            continue;
        }
        pieces.push(token.clone());
    }
    if in_string {
        return Err(Error::parse("unterminated quoted span in NN tokens"));
    }
    Ok(pieces.join(" "))
}

/// Whether a decoded token sequence is syntactically valid (parses as a
/// program), used for the error analysis of §5.5.
pub fn is_syntactically_valid(tokens: &[String]) -> bool {
    from_tokens(tokens).is_ok()
}

fn stream_tokens(stream: &Stream, options: NnSyntaxOptions, out: &mut Vec<String>) {
    match stream {
        Stream::Now => out.push("now".to_owned()),
        Stream::AtTimer { time } => {
            out.push("attimer".to_owned());
            out.push("time".to_owned());
            out.push("=".to_owned());
            value_tokens(time, out);
        }
        Stream::Timer { base, interval } => {
            out.push("timer".to_owned());
            out.push("base".to_owned());
            out.push("=".to_owned());
            value_tokens(base, out);
            out.push("interval".to_owned());
            out.push("=".to_owned());
            value_tokens(interval, out);
        }
        Stream::Monitor { query, on } => {
            out.push("monitor".to_owned());
            out.push("(".to_owned());
            query_tokens(query, options, out);
            out.push(")".to_owned());
            if !on.is_empty() {
                out.push("on".to_owned());
                out.push("new".to_owned());
                for (i, param) in on.iter().enumerate() {
                    if i > 0 {
                        out.push(",".to_owned());
                    }
                    out.push(param.clone());
                }
            }
        }
        Stream::EdgeFilter { stream, predicate } => {
            out.push("edge".to_owned());
            out.push("(".to_owned());
            stream_tokens(stream, options, out);
            out.push(")".to_owned());
            out.push("on".to_owned());
            predicate_tokens(predicate, options, out);
        }
    }
}

fn query_tokens(query: &Query, options: NnSyntaxOptions, out: &mut Vec<String>) {
    match query {
        Query::Invocation(inv) => invocation_tokens(inv, options, out),
        Query::Filter { query, predicate } => {
            out.push("(".to_owned());
            query_tokens(query, options, out);
            out.push(")".to_owned());
            out.push("filter".to_owned());
            predicate_tokens(predicate, options, out);
        }
        Query::Join { lhs, rhs, on } => {
            query_tokens(lhs, options, out);
            out.push("join".to_owned());
            query_tokens(rhs, options, out);
            if !on.is_empty() {
                out.push("on".to_owned());
                out.push("(".to_owned());
                for (i, jp) in on.iter().enumerate() {
                    if i > 0 {
                        out.push(",".to_owned());
                    }
                    out.push(jp.input.clone());
                    out.push("=".to_owned());
                    out.push(jp.output.clone());
                }
                out.push(")".to_owned());
            }
        }
        Query::Aggregation { op, field, query } => {
            out.push("agg".to_owned());
            out.push(op.keyword().to_owned());
            if let Some(field) = field {
                out.push(field.clone());
            }
            out.push("of".to_owned());
            out.push("(".to_owned());
            query_tokens(query, options, out);
            out.push(")".to_owned());
        }
    }
}

fn invocation_tokens(
    inv: &crate::ast::Invocation,
    options: NnSyntaxOptions,
    out: &mut Vec<String>,
) {
    out.push(format!("@{}.{}", inv.function.class, inv.function.function));
    out.push("(".to_owned());
    for (i, param) in inv.in_params.iter().enumerate() {
        if i > 0 {
            out.push(",".to_owned());
        }
        if options.keyword_params {
            let name = if options.type_annotations {
                format!(
                    "param:{}:{}",
                    param.name,
                    crate::typecheck::value_type(&param.value).annotation_token()
                )
            } else {
                format!("param:{}", param.name)
            };
            out.push(name);
            out.push("=".to_owned());
        }
        value_tokens(&param.value, out);
    }
    out.push(")".to_owned());
}

fn predicate_tokens(predicate: &Predicate, options: NnSyntaxOptions, out: &mut Vec<String>) {
    match predicate {
        Predicate::True => out.push("true".to_owned()),
        Predicate::False => out.push("false".to_owned()),
        Predicate::Not(inner) => {
            out.push("!".to_owned());
            out.push("(".to_owned());
            predicate_tokens(inner, options, out);
            out.push(")".to_owned());
        }
        Predicate::And(items) | Predicate::Or(items) => {
            let connective = if matches!(predicate, Predicate::And(_)) {
                "&&"
            } else {
                "||"
            };
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(connective.to_owned());
                }
                out.push("(".to_owned());
                predicate_tokens(item, options, out);
                out.push(")".to_owned());
            }
        }
        Predicate::Atom { param, op, value } => {
            if options.keyword_params && options.type_annotations {
                out.push(format!(
                    "param:{}:{}",
                    param,
                    crate::typecheck::value_type(value).annotation_token()
                ));
            } else {
                out.push(param.clone());
            }
            out.push(op.symbol().to_owned());
            value_tokens(value, out);
        }
        Predicate::External {
            invocation,
            predicate,
        } => {
            invocation_tokens(invocation, options, out);
            out.push("{".to_owned());
            predicate_tokens(predicate, options, out);
            out.push("}".to_owned());
        }
    }
}

fn value_tokens(value: &Value, out: &mut Vec<String>) {
    match value {
        Value::String(s) => quoted_span(s, out),
        Value::Entity {
            value,
            kind,
            display,
        } => {
            let text = display.clone().unwrap_or_else(|| value.clone());
            quoted_span(&text, out);
            out.push(format!("^^{kind}"));
        }
        Value::Measure(amount, unit) => {
            out.push(format_number(*amount));
            out.push(format!("unit:{}", unit.symbol()));
        }
        Value::CompoundMeasure(parts) => {
            for (i, (amount, unit)) in parts.iter().enumerate() {
                if i > 0 {
                    out.push("+".to_owned());
                }
                out.push(format_number(*amount));
                out.push(format!("unit:{}", unit.symbol()));
            }
        }
        other => {
            // Numbers, dates, times, enums, booleans, locations, currencies,
            // var refs, $event, $? all print as single surface tokens or as
            // placeholder constants (NUMBER_0, DATE_1) substituted upstream.
            let printed = other.to_string();
            if printed.contains(' ') {
                // e.g. `start_of_week + 86400000ms`, `location("palo alto")`
                for piece in split_preserving_quotes(&printed) {
                    out.push(piece);
                }
            } else {
                out.push(printed);
            }
        }
    }
}

fn quoted_span(text: &str, out: &mut Vec<String>) {
    out.push("\"".to_owned());
    for word in text.split_whitespace() {
        out.push(word.to_owned());
    }
    out.push("\"".to_owned());
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn split_preserving_quotes(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ' ' if !in_quotes => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(c),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_program;

    fn roundtrip(source: &str) {
        let program = parse_program(source).unwrap();
        for options in [NnSyntaxOptions::default(), NnSyntaxOptions::full()] {
            let tokens = to_tokens(&program, options);
            let decoded =
                from_tokens(&tokens).unwrap_or_else(|e| panic!("failed to decode {tokens:?}: {e}"));
            assert_eq!(
                program, decoded,
                "roundtrip failed for `{source}` with {options:?}"
            );
        }
    }

    #[test]
    fn roundtrips_representative_programs() {
        roundtrip("now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")");
        roundtrip("monitor (@com.twitter.timeline() filter author == \"PLDI\") => @com.twitter.retweet(tweet_id = tweet_id)");
        roundtrip("now => agg sum file_size of (@com.dropbox.list_folder()) => notify");
        roundtrip(
            "edge (monitor (@org.thingpedia.weather.current())) on temperature < 60F => notify",
        );
        roundtrip("timer base = now interval = 1h => @com.spotify.play_song(song = \"wake me up inside\")");
        roundtrip("now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on (text = title) => notify");
    }

    #[test]
    fn strings_are_split_into_words() {
        let program =
            parse_program("now => @com.twitter.post(status = \"hello brave new world\")").unwrap();
        let tokens = to_tokens(&program, NnSyntaxOptions::default());
        let quote_count = tokens.iter().filter(|t| *t == "\"").count();
        assert_eq!(quote_count, 2);
        assert!(tokens.contains(&"brave".to_owned()));
        assert!(tokens.contains(&"world".to_owned()));
    }

    #[test]
    fn type_annotations_are_included_when_enabled() {
        let program = parse_program("now => @com.twitter.post(status = \"hi\")").unwrap();
        let tokens = to_tokens(&program, NnSyntaxOptions::full());
        assert!(tokens.iter().any(|t| t == "param:status:String"));
        let tokens = to_tokens(&program, NnSyntaxOptions::default());
        assert!(tokens.iter().any(|t| t == "param:status"));
    }

    #[test]
    fn positional_mode_omits_parameter_names() {
        let program = parse_program("now => @com.twitter.post(status = \"hi\")").unwrap();
        let options = NnSyntaxOptions {
            keyword_params: false,
            type_annotations: false,
        };
        let tokens = to_tokens(&program, options);
        assert!(!tokens.iter().any(|t| t.starts_with("param:")));
    }

    #[test]
    fn measures_use_unit_tokens() {
        let program = parse_program(
            "edge (monitor (@org.thingpedia.weather.current())) on temperature < 60F => notify",
        )
        .unwrap();
        let tokens = to_tokens(&program, NnSyntaxOptions::default());
        assert!(tokens.contains(&"unit:F".to_owned()));
        assert!(tokens.contains(&"60".to_owned()));
    }

    #[test]
    fn invalid_token_sequences_are_rejected() {
        assert!(!is_syntactically_valid(&[
            "now".to_owned(),
            "=>".to_owned(),
        ]));
        assert!(!is_syntactically_valid(&[
            "\"".to_owned(),
            "dangling".to_owned(),
        ]));
        assert!(is_syntactically_valid(&to_tokens(
            &parse_program("now => @com.gmail.inbox() => notify").unwrap(),
            NnSyntaxOptions::default()
        )));
    }

    #[test]
    fn oversized_token_sequences_are_rejected_not_decoded() {
        let tokens: Vec<String> = vec!["now".to_owned(); MAX_DECODE_TOKENS + 1];
        let error = from_tokens(&tokens).unwrap_err();
        assert!(error.to_string().contains("decode limit"));
    }

    #[test]
    fn checked_decode_runs_the_typechecker() {
        use crate::class::{ClassDef, FunctionDef, FunctionKind, ParamDef, ParamDirection};
        use crate::typecheck::MapRegistry;
        use crate::types::Type;

        let mut registry = MapRegistry::new();
        registry.add_class(ClassDef::new("com.twitter").with_function(FunctionDef::new(
            "post",
            FunctionKind::Action,
            vec![ParamDef::new("status", Type::String, ParamDirection::InReq)],
        )));
        let ok = parse_program("now => @com.twitter.post(status = \"hi\")").unwrap();
        let tokens = to_tokens(&ok, NnSyntaxOptions::default());
        assert!(from_tokens_checked(&registry, &tokens).is_ok());

        // Well-formed but unknown function: decodes, fails the typecheck.
        let unknown = parse_program("now => @com.gmail.inbox() => notify").unwrap();
        let tokens = to_tokens(&unknown, NnSyntaxOptions::default());
        assert!(matches!(
            from_tokens_checked(&registry, &tokens),
            Err(Error::UnknownFunction { .. })
        ));

        // Malformed token soup: fails the decode before the typecheck.
        assert!(matches!(
            from_tokens_checked(&registry, &["=>".to_owned(), "(".to_owned()]),
            Err(Error::Parse { .. })
        ));
    }

    #[test]
    fn entity_values_keep_their_type() {
        let program = parse_program(
            "now => @com.spotify.play_song(song = \"shake it off\"^^com.spotify:song)",
        )
        .unwrap();
        let tokens = to_tokens(&program, NnSyntaxOptions::default());
        assert!(tokens.contains(&"^^com.spotify:song".to_owned()));
        let decoded = from_tokens(&tokens).unwrap();
        assert_eq!(program, decoded);
    }
}
