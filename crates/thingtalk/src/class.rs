//! The skill-library class grammar (Fig. 3 of the paper).
//!
//! A class represents a skill (an IoT device or web service) and declares
//! *query* functions — which retrieve data, have no side effects, and may be
//! `monitorable` and/or `list` — and *action* functions — which have side
//! effects and no output parameters. Data flows in and out of functions
//! through named, typed parameters declared `in req`, `in opt`, or `out`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::types::Type;

/// The direction and requiredness of a function parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamDirection {
    /// A required input parameter (`in req`).
    InReq,
    /// An optional input parameter (`in opt`).
    InOpt,
    /// An output parameter (`out`); only query functions have these.
    Out,
}

impl ParamDirection {
    /// Whether this is an input (required or optional) parameter.
    pub fn is_input(self) -> bool {
        matches!(self, ParamDirection::InReq | ParamDirection::InOpt)
    }

    /// Whether this is an output parameter.
    pub fn is_output(self) -> bool {
        matches!(self, ParamDirection::Out)
    }

    /// The surface-syntax keywords for this direction.
    pub fn keywords(self) -> &'static str {
        match self {
            ParamDirection::InReq => "in req",
            ParamDirection::InOpt => "in opt",
            ParamDirection::Out => "out",
        }
    }
}

/// A parameter declaration in a function signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    /// The parameter name. The paper encourages consistent naming across
    /// functions so the semantic parser can unify parameters by name.
    pub name: String,
    /// The parameter type.
    pub ty: Type,
    /// Direction and requiredness.
    pub direction: ParamDirection,
    /// A natural-language phrase for this parameter ("modified time",
    /// "file size"), used by the describer and the template engine.
    pub canonical: String,
}

impl ParamDef {
    /// Create a new parameter definition; the canonical phrase defaults to
    /// the name with underscores replaced by spaces.
    pub fn new(name: impl Into<String>, ty: Type, direction: ParamDirection) -> Self {
        let name = name.into();
        let canonical = name.replace('_', " ");
        ParamDef {
            name,
            ty,
            direction,
            canonical,
        }
    }

    /// Override the canonical phrase.
    pub fn with_canonical(mut self, canonical: impl Into<String>) -> Self {
        self.canonical = canonical.into();
        self
    }
}

impl fmt::Display for ParamDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} : {}",
            self.direction.keywords(),
            self.name,
            self.ty
        )
    }
}

/// Whether a function is a query or an action, along with query flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionKind {
    /// A query function: retrieves data, no side effects.
    Query {
        /// Whether the result can be monitored for changes (`monitorable`).
        monitorable: bool,
        /// Whether the function returns a list of results (`list`).
        list: bool,
    },
    /// An action function: side effects, no output parameters.
    Action,
}

impl FunctionKind {
    /// A monitorable, list-returning query.
    pub const MONITORABLE_LIST_QUERY: FunctionKind = FunctionKind::Query {
        monitorable: true,
        list: true,
    };

    /// A monitorable single-result query.
    pub const MONITORABLE_QUERY: FunctionKind = FunctionKind::Query {
        monitorable: true,
        list: false,
    };

    /// A non-monitorable list query.
    pub const LIST_QUERY: FunctionKind = FunctionKind::Query {
        monitorable: false,
        list: true,
    };

    /// A non-monitorable single-result query (e.g. a random cat picture).
    pub const QUERY: FunctionKind = FunctionKind::Query {
        monitorable: false,
        list: false,
    };

    /// Whether this is a query.
    pub fn is_query(self) -> bool {
        matches!(self, FunctionKind::Query { .. })
    }

    /// Whether this is an action.
    pub fn is_action(self) -> bool {
        matches!(self, FunctionKind::Action)
    }

    /// Whether this function can be monitored as a stream.
    pub fn is_monitorable(self) -> bool {
        matches!(
            self,
            FunctionKind::Query {
                monitorable: true,
                ..
            }
        )
    }

    /// Whether this function returns a list of results.
    pub fn is_list(self) -> bool {
        matches!(self, FunctionKind::Query { list: true, .. })
    }
}

/// A function (query or action) declaration inside a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// The function name, unique within the class.
    pub name: String,
    /// Query or action, with monitorable/list flags.
    pub kind: FunctionKind,
    /// The declared parameters, in declaration order.
    pub params: Vec<ParamDef>,
    /// The canonical natural-language phrase for the function ("my dropbox
    /// files", "post on facebook"). Primitive templates extend this.
    pub canonical: String,
    /// A one-line description shown on the cheatsheet.
    pub description: String,
    /// Coarse confusion/understandability rating used when pairing functions
    /// for paraphrasing (§3.2): `true` if crowdworkers find the function easy
    /// to understand.
    pub easy_to_understand: bool,
}

impl FunctionDef {
    /// Create a new function definition with default metadata derived from
    /// the name.
    pub fn new(name: impl Into<String>, kind: FunctionKind, params: Vec<ParamDef>) -> Self {
        let name = name.into();
        let canonical = name.replace('_', " ");
        FunctionDef {
            description: canonical.clone(),
            canonical,
            name,
            kind,
            params,
            easy_to_understand: true,
        }
    }

    /// Override the canonical phrase.
    pub fn with_canonical(mut self, canonical: impl Into<String>) -> Self {
        self.canonical = canonical.into();
        self
    }

    /// Override the description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Mark the function as hard to understand for crowdworkers.
    pub fn hard_to_understand(mut self) -> Self {
        self.easy_to_understand = false;
        self
    }

    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.name == name)
    }

    /// The input parameters (required and optional).
    pub fn input_params(&self) -> impl Iterator<Item = &ParamDef> {
        self.params.iter().filter(|p| p.direction.is_input())
    }

    /// The required input parameters.
    pub fn required_params(&self) -> impl Iterator<Item = &ParamDef> {
        self.params
            .iter()
            .filter(|p| p.direction == ParamDirection::InReq)
    }

    /// The output parameters.
    pub fn output_params(&self) -> impl Iterator<Item = &ParamDef> {
        self.params.iter().filter(|p| p.direction.is_output())
    }
}

impl fmt::Display for FunctionDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FunctionKind::Query { monitorable, list } => {
                if monitorable {
                    write!(f, "monitorable ")?;
                }
                if list {
                    write!(f, "list ")?;
                }
                write!(f, "query ")?;
            }
            FunctionKind::Action => write!(f, "action ")?,
        }
        let params: Vec<String> = self.params.iter().map(|p| p.to_string()).collect();
        write!(f, "{}({});", self.name, params.join(", "))
    }
}

/// A class in the skill library: a named collection of queries and actions
/// (Fig. 4 shows the Dropbox class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// The fully-qualified class name, e.g. `com.dropbox`.
    pub name: String,
    /// Classes this class extends.
    pub extends: Vec<String>,
    /// Declared queries and actions, indexed by function name.
    pub functions: BTreeMap<String, FunctionDef>,
    /// A human-readable name for the skill ("Dropbox").
    pub display_name: String,
    /// The domain of the skill ("cloud storage", "social network", …), used
    /// when sampling cheatsheet subsets.
    pub domain: String,
}

impl ClassDef {
    /// Create a new empty class.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let display_name = name.rsplit('.').next().unwrap_or(&name).to_owned();
        ClassDef {
            name,
            extends: Vec::new(),
            functions: BTreeMap::new(),
            display_name,
            domain: String::new(),
        }
    }

    /// Set the human-readable display name.
    pub fn with_display_name(mut self, display_name: impl Into<String>) -> Self {
        self.display_name = display_name.into();
        self
    }

    /// Set the domain of the skill.
    pub fn with_domain(mut self, domain: impl Into<String>) -> Self {
        self.domain = domain.into();
        self
    }

    /// Add a function to the class (builder style).
    pub fn with_function(mut self, function: FunctionDef) -> Self {
        self.functions.insert(function.name.clone(), function);
        self
    }

    /// Add a function to the class.
    pub fn add_function(&mut self, function: FunctionDef) {
        self.functions.insert(function.name.clone(), function);
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Result<&FunctionDef> {
        self.functions
            .get(name)
            .ok_or_else(|| Error::UnknownFunction {
                class: self.name.clone(),
                function: name.to_owned(),
            })
    }

    /// Iterate over the query functions.
    pub fn queries(&self) -> impl Iterator<Item = &FunctionDef> {
        self.functions.values().filter(|f| f.kind.is_query())
    }

    /// Iterate over the action functions.
    pub fn actions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.functions.values().filter(|f| f.kind.is_action())
    }
}

impl fmt::Display for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class @{}", self.name)?;
        for parent in &self.extends {
            write!(f, " extends @{parent}")?;
        }
        writeln!(f, " {{")?;
        for function in self.functions.values() {
            writeln!(f, "  {function}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::BaseUnit;

    fn dropbox_like() -> ClassDef {
        ClassDef::new("com.dropbox")
            .with_display_name("Dropbox")
            .with_domain("cloud storage")
            .with_function(FunctionDef::new(
                "get_space_usage",
                FunctionKind::MONITORABLE_QUERY,
                vec![
                    ParamDef::new(
                        "used_space",
                        Type::Measure(BaseUnit::Byte),
                        ParamDirection::Out,
                    ),
                    ParamDef::new(
                        "total_space",
                        Type::Measure(BaseUnit::Byte),
                        ParamDirection::Out,
                    ),
                ],
            ))
            .with_function(FunctionDef::new(
                "list_folder",
                FunctionKind::MONITORABLE_LIST_QUERY,
                vec![
                    ParamDef::new("folder_name", Type::PathName, ParamDirection::InReq),
                    ParamDef::new(
                        "order_by",
                        Type::Enum(vec![
                            "modified_time_decreasing".into(),
                            "modified_time_increasing".into(),
                        ]),
                        ParamDirection::InOpt,
                    ),
                    ParamDef::new("file_name", Type::PathName, ParamDirection::Out),
                    ParamDef::new("is_folder", Type::Boolean, ParamDirection::Out),
                    ParamDef::new("modified_time", Type::Date, ParamDirection::Out),
                    ParamDef::new(
                        "file_size",
                        Type::Measure(BaseUnit::Byte),
                        ParamDirection::Out,
                    ),
                ],
            ))
            .with_function(FunctionDef::new(
                "move",
                FunctionKind::Action,
                vec![
                    ParamDef::new("old_name", Type::PathName, ParamDirection::InReq),
                    ParamDef::new("new_name", Type::PathName, ParamDirection::InReq),
                ],
            ))
    }

    #[test]
    fn class_lookup_and_iteration() {
        let class = dropbox_like();
        assert!(class.function("list_folder").is_ok());
        assert!(class.function("does_not_exist").is_err());
        assert_eq!(class.queries().count(), 2);
        assert_eq!(class.actions().count(), 1);
    }

    #[test]
    fn function_parameter_queries() {
        let class = dropbox_like();
        let list_folder = class.function("list_folder").unwrap();
        assert_eq!(list_folder.required_params().count(), 1);
        assert_eq!(list_folder.input_params().count(), 2);
        assert_eq!(list_folder.output_params().count(), 4);
        assert!(list_folder.kind.is_monitorable());
        assert!(list_folder.kind.is_list());
        let mv = class.function("move").unwrap();
        assert!(mv.kind.is_action());
        assert!(!mv.kind.is_monitorable());
    }

    #[test]
    fn display_matches_fig3_grammar() {
        let class = dropbox_like();
        let text = class.to_string();
        assert!(text.starts_with("class @com.dropbox {"));
        assert!(text.contains("monitorable list query list_folder(in req folder_name : PathName"));
        assert!(
            text.contains("action move(in req old_name : PathName, in req new_name : PathName);")
        );
    }

    #[test]
    fn default_canonical_replaces_underscores() {
        let f = FunctionDef::new("get_front_page", FunctionKind::LIST_QUERY, vec![]);
        assert_eq!(f.canonical, "get front page");
        let p = ParamDef::new("modified_time", Type::Date, ParamDirection::Out);
        assert_eq!(p.canonical, "modified time");
    }
}
