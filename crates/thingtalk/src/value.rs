//! ThingTalk values: the rich constant language of the VAPL.
//!
//! To allow translation from natural language without contextual information,
//! ThingTalk needs a rich language of constants (§2.1): compound measures
//! ("6 feet 3 inches" → `6ft + 3in`), symbolic date edges (`start_of_week`),
//! relative dates, entities with display names, and `$undefined` slots. The
//! neural parser never performs arithmetic; normalization happens here or in
//! the runtime.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::units::Unit;

/// A symbolic edge of a calendar period, used in relative date expressions
/// like "since the start of the week".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DateEdge {
    StartOfDay,
    EndOfDay,
    StartOfWeek,
    EndOfWeek,
    StartOfMonth,
    EndOfMonth,
    StartOfYear,
    EndOfYear,
    Now,
}

impl DateEdge {
    /// The surface-syntax keyword for this edge.
    pub fn keyword(self) -> &'static str {
        match self {
            DateEdge::StartOfDay => "start_of_day",
            DateEdge::EndOfDay => "end_of_day",
            DateEdge::StartOfWeek => "start_of_week",
            DateEdge::EndOfWeek => "end_of_week",
            DateEdge::StartOfMonth => "start_of_month",
            DateEdge::EndOfMonth => "end_of_month",
            DateEdge::StartOfYear => "start_of_year",
            DateEdge::EndOfYear => "end_of_year",
            DateEdge::Now => "now",
        }
    }

    /// Resolve the edge against a reference time (milliseconds since an
    /// arbitrary epoch) assuming the reference is the current instant.
    pub fn resolve(self, now_ms: i64) -> i64 {
        const DAY: i64 = 86_400_000;
        const WEEK: i64 = 7 * DAY;
        const MONTH: i64 = 30 * DAY;
        const YEAR: i64 = 365 * DAY;
        match self {
            DateEdge::Now => now_ms,
            DateEdge::StartOfDay => now_ms - now_ms.rem_euclid(DAY),
            DateEdge::EndOfDay => now_ms - now_ms.rem_euclid(DAY) + DAY,
            DateEdge::StartOfWeek => now_ms - now_ms.rem_euclid(WEEK),
            DateEdge::EndOfWeek => now_ms - now_ms.rem_euclid(WEEK) + WEEK,
            DateEdge::StartOfMonth => now_ms - now_ms.rem_euclid(MONTH),
            DateEdge::EndOfMonth => now_ms - now_ms.rem_euclid(MONTH) + MONTH,
            DateEdge::StartOfYear => now_ms - now_ms.rem_euclid(YEAR),
            DateEdge::EndOfYear => now_ms - now_ms.rem_euclid(YEAR) + YEAR,
        }
    }

    /// Parse a keyword back into an edge.
    pub fn from_keyword(s: &str) -> Option<Self> {
        [
            DateEdge::StartOfDay,
            DateEdge::EndOfDay,
            DateEdge::StartOfWeek,
            DateEdge::EndOfWeek,
            DateEdge::StartOfMonth,
            DateEdge::EndOfMonth,
            DateEdge::StartOfYear,
            DateEdge::EndOfYear,
            DateEdge::Now,
        ]
        .into_iter()
        .find(|e| e.keyword() == s)
    }
}

/// A ThingTalk date value: either an absolute timestamp, a symbolic edge, or
/// an edge plus an offset duration ("a week ago" → `now - 7day`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DateValue {
    /// Absolute milliseconds since the (virtual) epoch.
    Absolute(i64),
    /// A symbolic calendar edge.
    Edge(DateEdge),
    /// An edge shifted by a signed duration in milliseconds.
    Offset {
        /// The base edge.
        base: DateEdge,
        /// The signed offset in milliseconds.
        offset_ms: i64,
    },
}

impl DateValue {
    /// Resolve to absolute milliseconds given the current virtual time.
    pub fn resolve(&self, now_ms: i64) -> i64 {
        match self {
            DateValue::Absolute(ms) => *ms,
            DateValue::Edge(edge) => edge.resolve(now_ms),
            DateValue::Offset { base, offset_ms } => base.resolve(now_ms) + offset_ms,
        }
    }
}

/// A geographic location: either a named place or explicit coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LocationValue {
    /// A named location resolved later by the runtime ("home", "work",
    /// "palo alto").
    Named(String),
    /// Latitude/longitude coordinates.
    Coordinates {
        /// Degrees of latitude.
        latitude: f64,
        /// Degrees of longitude.
        longitude: f64,
    },
}

/// A ThingTalk constant or parameter value.
///
/// `VarRef` is how parameter passing is expressed: the value of an input
/// parameter refers to an output parameter of an earlier function in the same
/// program (Fig. 1: `picture_url = picture_url`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Free-form text.
    String(String),
    /// A number.
    Number(f64),
    /// A boolean.
    Boolean(bool),
    /// A measure: an amount and a unit. Compound measures ("6 feet 3 inches")
    /// are represented as [`Value::CompoundMeasure`].
    Measure(f64, Unit),
    /// A sum of measures over the same dimension, composed additively.
    CompoundMeasure(Vec<(f64, Unit)>),
    /// A date.
    Date(DateValue),
    /// A time of day (hour, minute).
    Time(u8, u8),
    /// A location.
    Location(LocationValue),
    /// A member of an enumerated type.
    Enum(String),
    /// A monetary amount and ISO currency code.
    Currency(f64, String),
    /// A named entity: the opaque value, its entity type, and an optional
    /// human-readable display name.
    Entity {
        /// The opaque identifier.
        value: String,
        /// The entity type, e.g. `tt:username`.
        kind: String,
        /// The display name shown to the user, if known.
        display: Option<String>,
    },
    /// An array of values.
    Array(Vec<Value>),
    /// A reference to an output parameter of an earlier function in the same
    /// program (keyword parameter passing).
    VarRef(String),
    /// The event/result placeholder (`$event`): the textual rendering of the
    /// triggering result, used e.g. to tweet whatever was monitored.
    Event,
    /// A missing value to be filled by slot filling (`$?`).
    Undefined,
}

impl Value {
    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<String>) -> Self {
        Value::String(s.into())
    }

    /// Convenience constructor for an entity value without a display name.
    pub fn entity(value: impl Into<String>, kind: impl Into<String>) -> Self {
        Value::Entity {
            value: value.into(),
            kind: kind.into(),
            display: None,
        }
    }

    /// Whether this value is a constant (not a variable reference, event
    /// placeholder, or undefined slot).
    pub fn is_constant(&self) -> bool {
        !matches!(self, Value::VarRef(_) | Value::Undefined | Value::Event)
    }

    /// The total amount of a measure in its base unit, if this is a (possibly
    /// compound) measure.
    pub fn measure_in_base(&self) -> Option<f64> {
        match self {
            Value::Measure(amount, unit) => Some(unit.to_base(*amount)),
            Value::CompoundMeasure(parts) => Some(parts.iter().map(|(a, u)| u.to_base(*a)).sum()),
            _ => None,
        }
    }

    /// A numeric interpretation of the value used for comparison filters and
    /// aggregation, if one exists.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Measure(..) | Value::CompoundMeasure(_) => self.measure_in_base(),
            Value::Currency(amount, _) => Some(*amount),
            Value::Date(d) => Some(d.resolve(0) as f64),
            Value::Time(h, m) => Some((*h as f64) * 60.0 + (*m as f64)),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// A string interpretation used for `substr` / `contains` style filters
    /// and for `$event` rendering.
    pub fn as_text(&self) -> Option<String> {
        match self {
            Value::String(s) => Some(s.clone()),
            Value::Enum(s) => Some(s.clone()),
            Value::Entity { value, display, .. } => {
                Some(display.clone().unwrap_or_else(|| value.clone()))
            }
            Value::Location(LocationValue::Named(name)) => Some(name.clone()),
            _ => None,
        }
    }

    /// Compare two values for filter evaluation. Returns `None` when the
    /// values are not comparable (different dimensions, non-numeric, …).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::String(a), Value::String(b)) => Some(a.cmp(b)),
            (Value::Enum(a), Value::Enum(b)) => Some(a.cmp(b)),
            (Value::Entity { value: a, .. }, Value::Entity { value: b, .. }) => Some(a.cmp(b)),
            _ => {
                let a = self.as_number()?;
                let b = other.as_number()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Equality for filter evaluation; entities compare equal to strings with
    /// the same text (quote-free free-form parameters).
    pub fn loosely_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Entity { .. } | Value::String(_), Value::Entity { .. } | Value::String(_)) => {
                let a = self.as_text().unwrap_or_default().to_lowercase();
                let b = other.as_text().unwrap_or_default().to_lowercase();
                a == b
            }
            _ => self
                .compare(other)
                .map(|o| o == Ordering::Equal)
                .unwrap_or(self == other),
        }
    }

    /// A stable key used to canonicalize the order of operands (§2.4).
    pub fn sort_key(&self) -> String {
        self.to_string()
    }
}

// `Hash` is implemented manually because values contain `f64`s. Floats are
// hashed by bit pattern after normalizing `-0.0` to `0.0`, so every pair
// that compares equal under the derived (IEEE) `PartialEq` also hashes
// equal, as the `Hash`/`Eq` contract requires. (The reverse corner — `NaN
// != NaN` yet equal bits — only makes unequal values share a hash, which is
// always permitted.)
fn hash_f64<H: Hasher>(n: f64, state: &mut H) {
    let normalized = if n == 0.0 { 0.0 } else { n };
    normalized.to_bits().hash(state);
}
impl Hash for DateValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            DateValue::Absolute(ms) => ms.hash(state),
            DateValue::Edge(edge) => edge.hash(state),
            DateValue::Offset { base, offset_ms } => {
                base.hash(state);
                offset_ms.hash(state);
            }
        }
    }
}

impl Hash for LocationValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            LocationValue::Named(name) => name.hash(state),
            LocationValue::Coordinates {
                latitude,
                longitude,
            } => {
                hash_f64(*latitude, state);
                hash_f64(*longitude, state);
            }
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::String(s) => s.hash(state),
            Value::Number(n) => hash_f64(*n, state),
            Value::Boolean(b) => b.hash(state),
            Value::Measure(amount, unit) => {
                hash_f64(*amount, state);
                unit.hash(state);
            }
            Value::CompoundMeasure(parts) => {
                for (amount, unit) in parts {
                    hash_f64(*amount, state);
                    unit.hash(state);
                }
            }
            Value::Date(date) => date.hash(state),
            Value::Time(h, m) => (h, m).hash(state),
            Value::Location(location) => location.hash(state),
            Value::Enum(variant) => variant.hash(state),
            Value::Currency(amount, code) => {
                hash_f64(*amount, state);
                code.hash(state);
            }
            Value::Entity {
                value,
                kind,
                display,
            } => {
                value.hash(state);
                kind.hash(state);
                display.hash(state);
            }
            Value::Array(items) => items.hash(state),
            Value::VarRef(name) => name.hash(state),
            Value::Event | Value::Undefined => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::String(s) => write!(f, "\"{s}\""),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Measure(amount, unit) => {
                if amount.fract() == 0.0 {
                    write!(f, "{}{unit}", *amount as i64)
                } else {
                    write!(f, "{amount}{unit}")
                }
            }
            Value::CompoundMeasure(parts) => {
                let rendered: Vec<String> = parts
                    .iter()
                    .map(|(a, u)| {
                        if a.fract() == 0.0 {
                            format!("{}{u}", *a as i64)
                        } else {
                            format!("{a}{u}")
                        }
                    })
                    .collect();
                write!(f, "{}", rendered.join(" + "))
            }
            Value::Date(DateValue::Absolute(ms)) => write!(f, "date({ms})"),
            Value::Date(DateValue::Edge(edge)) => write!(f, "{}", edge.keyword()),
            Value::Date(DateValue::Offset { base, offset_ms }) => {
                if *offset_ms >= 0 {
                    write!(f, "{} + {}ms", base.keyword(), offset_ms)
                } else {
                    write!(f, "{} - {}ms", base.keyword(), -offset_ms)
                }
            }
            Value::Time(h, m) => write!(f, "time({h:02}:{m:02})"),
            Value::Location(LocationValue::Named(name)) => write!(f, "location(\"{name}\")"),
            Value::Location(LocationValue::Coordinates {
                latitude,
                longitude,
            }) => write!(f, "location({latitude},{longitude})"),
            Value::Enum(v) => write!(f, "enum:{v}"),
            Value::Currency(amount, code) => write!(f, "{amount}{code}"),
            Value::Entity {
                value,
                kind,
                display,
            } => match display {
                Some(d) => write!(f, "\"{value}\"^^{kind}(\"{d}\")"),
                None => write!(f, "\"{value}\"^^{kind}"),
            },
            Value::Array(items) => {
                let rendered: Vec<String> = items.iter().map(|v| v.to_string()).collect();
                write!(f, "[{}]", rendered.join(", "))
            }
            Value::VarRef(name) => write!(f, "{name}"),
            Value::Event => write!(f, "$event"),
            Value::Undefined => write!(f, "$?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compound_measure_sums_in_base_unit() {
        let v = Value::CompoundMeasure(vec![(6.0, Unit::Foot), (3.0, Unit::Inch)]);
        let meters = v.measure_in_base().unwrap();
        assert!((meters - 1.905).abs() < 1e-9);
    }

    #[test]
    fn measures_compare_across_units() {
        let a = Value::Measure(1.0, Unit::Kilometer);
        let b = Value::Measure(900.0, Unit::Meter);
        assert_eq!(a.compare(&b), Some(Ordering::Greater));
    }

    #[test]
    fn entity_and_string_loose_equality() {
        let entity = Value::Entity {
            value: "taylor swift".into(),
            kind: "com.spotify:artist".into(),
            display: Some("Taylor Swift".into()),
        };
        let s = Value::string("Taylor Swift");
        assert!(entity.loosely_equals(&s));
        assert!(!entity.loosely_equals(&Value::string("Evanescence")));
    }

    #[test]
    fn date_edges_resolve_monotonically() {
        let now = 40 * 86_400_000 + 12_345;
        assert!(DateEdge::StartOfWeek.resolve(now) <= now);
        assert!(DateEdge::EndOfWeek.resolve(now) >= now);
        assert!(DateEdge::StartOfDay.resolve(now) <= now);
        assert_eq!(DateEdge::Now.resolve(now), now);
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(Value::string("funny cat").to_string(), "\"funny cat\"");
        assert_eq!(Value::Number(60.0).to_string(), "60");
        assert_eq!(Value::Measure(60.0, Unit::Fahrenheit).to_string(), "60F");
        assert_eq!(
            Value::Enum("decreasing".into()).to_string(),
            "enum:decreasing"
        );
        assert_eq!(
            Value::Date(DateValue::Edge(DateEdge::StartOfWeek)).to_string(),
            "start_of_week"
        );
        assert_eq!(Value::VarRef("tweet_id".into()).to_string(), "tweet_id");
    }

    #[test]
    fn constants_vs_references() {
        assert!(Value::Number(5.0).is_constant());
        assert!(!Value::VarRef("title".into()).is_constant());
        assert!(!Value::Undefined.is_constant());
    }

    #[test]
    fn as_text_prefers_display_name() {
        let v = Value::Entity {
            value: "u123".into(),
            kind: "tt:username".into(),
            display: Some("alice".into()),
        };
        assert_eq!(v.as_text().unwrap(), "alice");
    }

    #[test]
    fn equal_floats_hash_equal() {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let fingerprint = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        let pos = Value::Number(0.0);
        let neg = Value::Number(-0.0);
        assert_eq!(pos, neg);
        assert_eq!(fingerprint(&pos), fingerprint(&neg));
        let m_pos = Value::Measure(0.0, Unit::Meter);
        let m_neg = Value::Measure(-0.0, Unit::Meter);
        assert_eq!(m_pos, m_neg);
        assert_eq!(fingerprint(&m_pos), fingerprint(&m_neg));
    }

    #[test]
    fn date_edge_keyword_roundtrip() {
        for edge in [
            DateEdge::StartOfDay,
            DateEdge::EndOfWeek,
            DateEdge::StartOfYear,
            DateEdge::Now,
        ] {
            assert_eq!(DateEdge::from_keyword(edge.keyword()), Some(edge));
        }
        assert_eq!(DateEdge::from_keyword("start_of_century"), None);
    }
}
