//! The ThingTalk execution runtime.
//!
//! The runtime gives the language an operational semantics matching §2.3 of
//! the paper: queries always return lists of results which are implicitly
//! traversed; monitors trigger whenever the query result changes; edge
//! filters trigger when a predicate transitions from false to true; joins
//! take the cross product of their operands with parameter passing; the
//! action runs once per result row, with output parameters passed by name
//! into input parameters.
//!
//! Devices are provided through the [`DeviceDelegate`] trait. The
//! `thingpedia` crate implements it with seeded simulated devices; tests can
//! implement it with fixed tables.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{
    Action, AggregationOp, CompareOp, FunctionRef, Invocation, Predicate, Program, Query, Stream,
};
use crate::error::{Error, Result};
use crate::value::{DateValue, Value};

/// A single result row: output parameter name → value.
pub type ResultRow = BTreeMap<String, Value>;

/// The execution context passed to device delegates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecContext {
    /// Virtual time in milliseconds since the engine's epoch.
    pub now_ms: i64,
    /// The tick counter (number of evaluation rounds so far).
    pub tick: u64,
}

/// The interface between the runtime and the skill implementations.
pub trait DeviceDelegate {
    /// Invoke a query function with the given (fully resolved) input
    /// parameters, returning its result rows.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::Execution`] for unknown functions or
    /// simulated service failures.
    fn invoke_query(
        &mut self,
        function: &FunctionRef,
        params: &ResultRow,
        ctx: &ExecContext,
    ) -> Result<Vec<ResultRow>>;

    /// Invoke an action function with the given input parameters.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::Execution`] for unknown functions or
    /// simulated service failures.
    fn invoke_action(
        &mut self,
        function: &FunctionRef,
        params: &ResultRow,
        ctx: &ExecContext,
    ) -> Result<()>;
}

/// A record of an action the engine performed.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformedAction {
    /// The invoked action function.
    pub function: FunctionRef,
    /// The resolved input parameters.
    pub params: ResultRow,
    /// The virtual time at which the action ran.
    pub at_ms: i64,
}

/// The observable outcome of executing a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionResult {
    /// Result rows delivered to the user through `notify`.
    pub notifications: Vec<ResultRow>,
    /// Side-effecting actions performed.
    pub actions: Vec<PerformedAction>,
    /// Number of times the stream triggered.
    pub trigger_count: usize,
}

impl ExecutionResult {
    fn merge(&mut self, other: ExecutionResult) {
        self.notifications.extend(other.notifications);
        self.actions.extend(other.actions);
        self.trigger_count += other.trigger_count;
    }
}

/// Configuration of the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockConfig {
    /// Milliseconds that pass between evaluation ticks.
    pub tick_ms: i64,
    /// The starting virtual time.
    pub start_ms: i64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            tick_ms: 60_000,
            start_ms: 0,
        }
    }
}

/// The execution engine: owns the virtual clock and the per-program monitor
/// state, and drives a [`DeviceDelegate`].
pub struct ExecutionEngine<D> {
    delegate: D,
    clock: ClockConfig,
    now_ms: i64,
    tick: u64,
    monitor_seen: BTreeSet<String>,
    edge_state: BTreeMap<String, bool>,
}

impl<D: DeviceDelegate> ExecutionEngine<D> {
    /// Create an engine with the default clock.
    pub fn new(delegate: D) -> Self {
        Self::with_clock(delegate, ClockConfig::default())
    }

    /// Create an engine with an explicit clock configuration.
    pub fn with_clock(delegate: D, clock: ClockConfig) -> Self {
        ExecutionEngine {
            delegate,
            now_ms: clock.start_ms,
            clock,
            tick: 0,
            monitor_seen: BTreeSet::new(),
            edge_state: BTreeMap::new(),
        }
    }

    /// The current virtual time in milliseconds.
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }

    /// Borrow the device delegate.
    pub fn delegate(&self) -> &D {
        &self.delegate
    }

    /// Mutably borrow the device delegate.
    pub fn delegate_mut(&mut self) -> &mut D {
        &mut self.delegate
    }

    /// Consume the engine, returning the delegate.
    pub fn into_delegate(self) -> D {
        self.delegate
    }

    fn ctx(&self) -> ExecContext {
        ExecContext {
            now_ms: self.now_ms,
            tick: self.tick,
        }
    }

    /// Execute a `now` program once, or run an event-driven program for a
    /// single evaluation tick.
    ///
    /// # Errors
    ///
    /// Propagates delegate errors and reports runtime errors such as
    /// unresolvable parameter references.
    pub fn execute_once(&mut self, program: &Program) -> Result<ExecutionResult> {
        let trigger_rows = self.evaluate_stream(&program.stream)?;
        let mut result = ExecutionResult {
            trigger_count: trigger_rows.len(),
            ..ExecutionResult::default()
        };
        for trigger_row in trigger_rows {
            let rows = match &program.query {
                Some(query) => self.evaluate_query(query, &trigger_row)?,
                None => vec![trigger_row.clone()],
            };
            for row in rows {
                // The action sees the union of the trigger row and the query
                // row; on name conflicts the rightmost (query) value wins, as
                // specified in §2.3.
                let mut merged = trigger_row.clone();
                merged.extend(row);
                let outcome = self.perform_action(&program.action, &merged)?;
                result.merge(outcome);
            }
        }
        Ok(result)
    }

    /// Run an event-driven program for `ticks` evaluation rounds, advancing
    /// the virtual clock between rounds, and accumulate the outcome.
    ///
    /// # Errors
    ///
    /// Propagates the first error from any tick.
    pub fn run_for(&mut self, program: &Program, ticks: u64) -> Result<ExecutionResult> {
        let mut total = ExecutionResult::default();
        for _ in 0..ticks {
            let outcome = self.execute_once(program)?;
            total.merge(outcome);
            self.now_ms += self.clock.tick_ms;
            self.tick += 1;
        }
        Ok(total)
    }

    // ----- streams -----

    fn evaluate_stream(&mut self, stream: &Stream) -> Result<Vec<ResultRow>> {
        match stream {
            Stream::Now => Ok(vec![ResultRow::new()]),
            Stream::AtTimer { time } => {
                let (hour, minute) = match time {
                    Value::Time(h, m) => (*h as i64, *m as i64),
                    other => {
                        return Err(Error::execution(format!(
                            "attimer requires a time of day, found {other}"
                        )))
                    }
                };
                let target = (hour * 60 + minute) * 60_000;
                let day_ms = self.now_ms.rem_euclid(86_400_000);
                let fires = day_ms <= target && target < day_ms + self.clock.tick_ms;
                if fires {
                    Ok(vec![ResultRow::new()])
                } else {
                    Ok(Vec::new())
                }
            }
            Stream::Timer { base, interval } => {
                // The timer base is anchored at program start: `base = now`
                // means "counting from when the program was installed".
                let base_ms = match base {
                    Value::Date(d) => d.resolve(self.clock.start_ms),
                    Value::Undefined => self.clock.start_ms,
                    other => {
                        return Err(Error::execution(format!(
                            "timer base must be a date, found {other}"
                        )))
                    }
                };
                let interval_ms = interval
                    .measure_in_base()
                    .filter(|ms| *ms > 0.0)
                    .ok_or_else(|| {
                        Error::execution(format!(
                            "timer interval must be a positive duration, found {interval}"
                        ))
                    })? as i64;
                let elapsed = self.now_ms - base_ms;
                let fires = elapsed >= 0 && elapsed % interval_ms < self.clock.tick_ms;
                if fires {
                    Ok(vec![ResultRow::new()])
                } else {
                    Ok(Vec::new())
                }
            }
            Stream::Monitor { query, on } => {
                let rows = self.evaluate_query(query, &ResultRow::new())?;
                let mut triggered = Vec::new();
                for row in rows {
                    let fingerprint = monitor_fingerprint(&row, on);
                    if self.monitor_seen.insert(fingerprint) && self.tick > 0 {
                        triggered.push(row);
                    } else if self.tick == 0 {
                        // The first poll establishes the baseline without
                        // triggering, matching the push-notification
                        // semantics of the Almond runtime.
                    }
                }
                Ok(triggered)
            }
            Stream::EdgeFilter { stream, predicate } => {
                let rows = self.evaluate_stream(stream)?;
                let mut triggered = Vec::new();
                for row in rows {
                    let now_true = eval_predicate(
                        predicate,
                        &row,
                        &mut self.delegate,
                        &ExecContext {
                            now_ms: self.now_ms,
                            tick: self.tick,
                        },
                    )?;
                    let key = edge_key(predicate, &row);
                    let was_true = self.edge_state.insert(key, now_true).unwrap_or(false);
                    if now_true && !was_true {
                        triggered.push(row);
                    }
                }
                Ok(triggered)
            }
        }
    }

    // ----- queries -----

    fn evaluate_query(&mut self, query: &Query, env: &ResultRow) -> Result<Vec<ResultRow>> {
        match query {
            Query::Invocation(inv) => {
                let params = resolve_params(inv, env, self.now_ms)?;
                let ctx = self.ctx();
                let rows = self.delegate.invoke_query(&inv.function, &params, &ctx)?;
                // Each row also carries the resolved input parameters so that
                // later clauses can refer to them.
                Ok(rows
                    .into_iter()
                    .map(|mut row| {
                        for (name, value) in &params {
                            row.entry(name.clone()).or_insert_with(|| value.clone());
                        }
                        row
                    })
                    .collect())
            }
            Query::Filter { query, predicate } => {
                let rows = self.evaluate_query(query, env)?;
                let ctx = self.ctx();
                let mut kept = Vec::new();
                for row in rows {
                    if eval_predicate(predicate, &row, &mut self.delegate, &ctx)? {
                        kept.push(row);
                    }
                }
                Ok(kept)
            }
            Query::Join { lhs, rhs, on } => {
                let lhs_rows = self.evaluate_query(lhs, env)?;
                let mut out = Vec::new();
                for lhs_row in &lhs_rows {
                    // The right-hand side sees the left row for parameter
                    // passing (both explicit `on` and implicit var refs).
                    let mut rhs_env = env.clone();
                    rhs_env.extend(lhs_row.clone());
                    for jp in on {
                        if let Some(value) = lhs_row.get(&jp.output) {
                            rhs_env.insert(jp.input.clone(), value.clone());
                        }
                    }
                    let rhs_rows = self.evaluate_query_with_join_params(rhs, &rhs_env, on)?;
                    for rhs_row in rhs_rows {
                        let mut merged = lhs_row.clone();
                        merged.extend(rhs_row);
                        out.push(merged);
                    }
                }
                Ok(out)
            }
            Query::Aggregation { op, field, query } => {
                let rows = self.evaluate_query(query, env)?;
                Ok(vec![aggregate(*op, field.as_deref(), &rows)?])
            }
        }
    }

    fn evaluate_query_with_join_params(
        &mut self,
        query: &Query,
        env: &ResultRow,
        on: &[crate::ast::JoinParam],
    ) -> Result<Vec<ResultRow>> {
        match query {
            Query::Invocation(inv) => {
                // Inject the explicit join parameters as additional input
                // parameters of the invocation.
                let mut inv = inv.clone();
                for jp in on {
                    if inv.param(&jp.input).is_none() {
                        if let Some(value) = env.get(&jp.input) {
                            inv.in_params
                                .push(crate::ast::InputParam::new(jp.input.clone(), value.clone()));
                        }
                    }
                }
                self.evaluate_query(&Query::Invocation(inv), env)
            }
            other => self.evaluate_query(other, env),
        }
    }

    // ----- actions -----

    fn perform_action(&mut self, action: &Action, row: &ResultRow) -> Result<ExecutionResult> {
        let mut result = ExecutionResult::default();
        match action {
            Action::Notify => result.notifications.push(row.clone()),
            Action::Invocation(inv) => {
                let params = resolve_params(inv, row, self.now_ms)?;
                let ctx = self.ctx();
                self.delegate.invoke_action(&inv.function, &params, &ctx)?;
                result.actions.push(PerformedAction {
                    function: inv.function.clone(),
                    params,
                    at_ms: self.now_ms,
                });
            }
        }
        Ok(result)
    }
}

/// Resolve the input parameters of an invocation against an environment row:
/// var refs are looked up by name, `$event` is rendered as the textual form
/// of the row, dates are resolved to absolute times.
fn resolve_params(inv: &Invocation, env: &ResultRow, now_ms: i64) -> Result<ResultRow> {
    let mut out = ResultRow::new();
    for param in &inv.in_params {
        let value = match &param.value {
            Value::VarRef(source) => env.get(source).cloned().ok_or_else(|| {
                Error::execution(format!(
                    "parameter `{}` refers to `{source}`, which is not available",
                    param.name
                ))
            })?,
            Value::Event => Value::String(render_event(env)),
            Value::Date(date) => Value::Date(DateValue::Absolute(date.resolve(now_ms))),
            Value::Undefined => {
                return Err(Error::execution(format!(
                    "parameter `{}` was left unspecified",
                    param.name
                )))
            }
            other => other.clone(),
        };
        out.insert(param.name.clone(), value);
    }
    Ok(out)
}

/// Render a result row as text, used for `$event`.
fn render_event(row: &ResultRow) -> String {
    row.iter()
        .map(|(k, v)| {
            format!(
                "{}: {}",
                k.replace('_', " "),
                crate::describe::describe_value(v)
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn monitor_fingerprint(row: &ResultRow, on: &[String]) -> String {
    if on.is_empty() {
        row.iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("|")
    } else {
        on.iter()
            .map(|k| format!("{k}={}", row.get(k).cloned().unwrap_or(Value::Undefined)))
            .collect::<Vec<_>>()
            .join("|")
    }
}

fn edge_key(predicate: &Predicate, row: &ResultRow) -> String {
    let _ = row;
    predicate.to_string()
}

/// Evaluate a predicate over a result row. External predicates invoke their
/// query through the delegate.
fn eval_predicate<D: DeviceDelegate>(
    predicate: &Predicate,
    row: &ResultRow,
    delegate: &mut D,
    ctx: &ExecContext,
) -> Result<bool> {
    Ok(match predicate {
        Predicate::True => true,
        Predicate::False => false,
        Predicate::Not(inner) => !eval_predicate(inner, row, delegate, ctx)?,
        Predicate::And(items) => {
            let mut all = true;
            for item in items {
                if !eval_predicate(item, row, delegate, ctx)? {
                    all = false;
                    break;
                }
            }
            all
        }
        Predicate::Or(items) => {
            let mut any = false;
            for item in items {
                if eval_predicate(item, row, delegate, ctx)? {
                    any = true;
                    break;
                }
            }
            any
        }
        Predicate::Atom { param, op, value } => {
            let Some(actual) = row.get(param) else {
                return Ok(false);
            };
            let expected = match value {
                Value::VarRef(source) => row.get(source).cloned().unwrap_or(Value::Undefined),
                Value::Date(d) => Value::Date(DateValue::Absolute(d.resolve(ctx.now_ms))),
                other => other.clone(),
            };
            compare(actual, *op, &expected)
        }
        Predicate::External {
            invocation,
            predicate,
        } => {
            let params = resolve_params(invocation, row, ctx.now_ms)?;
            let rows = delegate.invoke_query(&invocation.function, &params, ctx)?;
            let mut any = false;
            for external_row in rows {
                if eval_predicate(predicate, &external_row, delegate, ctx)? {
                    any = true;
                    break;
                }
            }
            any
        }
    })
}

/// Evaluate a single comparison between runtime values.
pub fn compare(lhs: &Value, op: CompareOp, rhs: &Value) -> bool {
    use std::cmp::Ordering;
    match op {
        CompareOp::Eq => lhs.loosely_equals(rhs),
        CompareOp::Neq => !lhs.loosely_equals(rhs),
        CompareOp::Gt => matches!(lhs.compare(rhs), Some(Ordering::Greater)),
        CompareOp::Lt => matches!(lhs.compare(rhs), Some(Ordering::Less)),
        CompareOp::Geq => matches!(lhs.compare(rhs), Some(Ordering::Greater | Ordering::Equal)),
        CompareOp::Leq => matches!(lhs.compare(rhs), Some(Ordering::Less | Ordering::Equal)),
        CompareOp::Contains => match lhs {
            Value::Array(items) => items.iter().any(|item| item.loosely_equals(rhs)),
            _ => text_contains(lhs, rhs),
        },
        CompareOp::Substr => text_contains(lhs, rhs),
        CompareOp::StartsWith => match (lhs.as_text(), rhs.as_text()) {
            (Some(a), Some(b)) => a.to_lowercase().starts_with(&b.to_lowercase()),
            _ => false,
        },
        CompareOp::EndsWith => match (lhs.as_text(), rhs.as_text()) {
            (Some(a), Some(b)) => a.to_lowercase().ends_with(&b.to_lowercase()),
            _ => false,
        },
        CompareOp::InArray => match rhs {
            Value::Array(items) => items.iter().any(|item| lhs.loosely_equals(item)),
            _ => false,
        },
    }
}

fn text_contains(lhs: &Value, rhs: &Value) -> bool {
    match (lhs.as_text(), rhs.as_text()) {
        (Some(a), Some(b)) => a.to_lowercase().contains(&b.to_lowercase()),
        _ => false,
    }
}

fn aggregate(op: AggregationOp, field: Option<&str>, rows: &[ResultRow]) -> Result<ResultRow> {
    let mut out = ResultRow::new();
    match op {
        AggregationOp::Count => {
            out.insert("count".to_owned(), Value::Number(rows.len() as f64));
        }
        _ => {
            let field = field
                .ok_or_else(|| Error::execution(format!("aggregation `{op}` requires a field")))?;
            let mut numbers = Vec::new();
            let mut template: Option<Value> = None;
            for row in rows {
                if let Some(value) = row.get(field) {
                    if let Some(n) = value.as_number() {
                        numbers.push(n);
                        template.get_or_insert_with(|| value.clone());
                    }
                }
            }
            if numbers.is_empty() {
                return Err(Error::execution(format!(
                    "aggregation `{op}` over `{field}` found no numeric values"
                )));
            }
            let result = match op {
                AggregationOp::Max => numbers.iter().cloned().fold(f64::MIN, f64::max),
                AggregationOp::Min => numbers.iter().cloned().fold(f64::MAX, f64::min),
                AggregationOp::Sum => numbers.iter().sum(),
                AggregationOp::Avg => numbers.iter().sum::<f64>() / numbers.len() as f64,
                AggregationOp::Count => unreachable!("handled above"),
            };
            // Preserve the dimension of the aggregated values (measures stay
            // measures in their base unit).
            let value = match template {
                Some(Value::Measure(_, unit)) => Value::Measure(unit.from_base(result), unit),
                Some(Value::Currency(_, code)) => Value::Currency(result, code),
                _ => Value::Number(result),
            };
            out.insert(field.to_owned(), value);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_program;
    use crate::units::Unit;

    /// A toy delegate with a fixed table of tweets, files and weather that
    /// changes over virtual time.
    #[derive(Debug, Default)]
    struct ToyDelegate {
        tweets: Vec<(String, String)>,
        actions: Vec<(String, ResultRow)>,
    }

    impl ToyDelegate {
        fn new() -> Self {
            ToyDelegate {
                tweets: vec![
                    ("PLDI".to_owned(), "paper deadline extended".to_owned()),
                    ("rustlang".to_owned(), "new release out".to_owned()),
                ],
                actions: Vec::new(),
            }
        }
    }

    impl DeviceDelegate for ToyDelegate {
        fn invoke_query(
            &mut self,
            function: &FunctionRef,
            _params: &ResultRow,
            ctx: &ExecContext,
        ) -> Result<Vec<ResultRow>> {
            match (function.class.as_str(), function.function.as_str()) {
                ("com.twitter", "timeline") => Ok(self
                    .tweets
                    .iter()
                    .enumerate()
                    .map(|(i, (author, text))| {
                        let mut row = ResultRow::new();
                        row.insert("author".to_owned(), Value::string(author.clone()));
                        row.insert("text".to_owned(), Value::string(text.clone()));
                        row.insert(
                            "tweet_id".to_owned(),
                            Value::entity(format!("tweet-{i}"), "com.twitter:id"),
                        );
                        row
                    })
                    .collect()),
                ("com.dropbox", "list_folder") => Ok((0..3)
                    .map(|i| {
                        let mut row = ResultRow::new();
                        row.insert(
                            "file_name".to_owned(),
                            Value::string(format!("file{i}.txt")),
                        );
                        row.insert(
                            "file_size".to_owned(),
                            Value::Measure((i as f64 + 1.0) * 100.0, Unit::Megabyte),
                        );
                        row
                    })
                    .collect()),
                ("org.thingpedia.weather", "current") => {
                    // Temperature drops over time: 70F, 65F, 55F, 50F, ...
                    let temp = 70.0 - 5.0 * ctx.tick as f64;
                    let mut row = ResultRow::new();
                    row.insert(
                        "temperature".to_owned(),
                        Value::Measure(temp, Unit::Fahrenheit),
                    );
                    Ok(vec![row])
                }
                _ => Err(Error::execution(format!("unknown query {function}"))),
            }
        }

        fn invoke_action(
            &mut self,
            function: &FunctionRef,
            params: &ResultRow,
            _ctx: &ExecContext,
        ) -> Result<()> {
            self.actions.push((function.to_string(), params.clone()));
            Ok(())
        }
    }

    #[test]
    fn primitive_get_notifies_each_row() {
        let program = parse_program("now => @com.twitter.timeline() => notify").unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        let result = engine.execute_once(&program).unwrap();
        assert_eq!(result.notifications.len(), 2);
    }

    #[test]
    fn filters_restrict_results() {
        let program =
            parse_program("now => @com.twitter.timeline() filter author == \"PLDI\" => notify")
                .unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        let result = engine.execute_once(&program).unwrap();
        assert_eq!(result.notifications.len(), 1);
        assert_eq!(
            result.notifications[0].get("author"),
            Some(&Value::string("PLDI"))
        );
    }

    #[test]
    fn param_passing_reaches_the_action() {
        let program = parse_program(
            "now => @com.twitter.timeline() filter author == \"PLDI\" => @com.twitter.retweet(tweet_id = tweet_id)",
        )
        .unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        let result = engine.execute_once(&program).unwrap();
        assert_eq!(result.actions.len(), 1);
        let params = &result.actions[0].params;
        assert!(
            matches!(params.get("tweet_id"), Some(Value::Entity { value, .. }) if value == "tweet-0")
        );
    }

    #[test]
    fn aggregation_sums_measures() {
        let program =
            parse_program("now => agg sum file_size of (@com.dropbox.list_folder()) => notify")
                .unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        let result = engine.execute_once(&program).unwrap();
        assert_eq!(result.notifications.len(), 1);
        let total = result.notifications[0]
            .get("file_size")
            .and_then(|v| v.measure_in_base())
            .unwrap();
        assert!((total - 600e6).abs() < 1e-3, "expected 600 MB, got {total}");
    }

    #[test]
    fn count_aggregation() {
        let program =
            parse_program("now => agg count of (@com.dropbox.list_folder()) => notify").unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        let result = engine.execute_once(&program).unwrap();
        assert_eq!(
            result.notifications[0].get("count"),
            Some(&Value::Number(3.0))
        );
    }

    #[test]
    fn monitor_triggers_only_on_new_results() {
        let program = parse_program("monitor (@com.twitter.timeline()) => notify").unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        // First tick establishes the baseline, no triggers.
        let first = engine.run_for(&program, 2).unwrap();
        assert_eq!(first.notifications.len(), 0);
        // A new tweet arrives.
        engine
            .delegate_mut()
            .tweets
            .push(("PLDI".to_owned(), "camera ready due".to_owned()));
        let second = engine.run_for(&program, 1).unwrap();
        assert_eq!(second.notifications.len(), 1);
        // No further changes, no further triggers.
        let third = engine.run_for(&program, 3).unwrap();
        assert_eq!(third.notifications.len(), 0);
    }

    #[test]
    fn edge_filter_fires_on_transition_only() {
        let program = parse_program(
            "edge (monitor (@org.thingpedia.weather.current())) on temperature < 60F => notify",
        )
        .unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        // Temperatures: tick0=70 (baseline), tick1=65, tick2=60, tick3=55 (fires), tick4=50 (no re-fire).
        let result = engine.run_for(&program, 6).unwrap();
        assert_eq!(result.notifications.len(), 1);
    }

    #[test]
    fn timer_fires_at_interval() {
        let program = parse_program(
            "timer base = now interval = 2min => @com.twitter.post(status = \"ping\")",
        )
        .unwrap();
        let clock = ClockConfig {
            tick_ms: 60_000,
            start_ms: 0,
        };
        let mut engine = ExecutionEngine::with_clock(ToyDelegate::new(), clock);
        let result = engine.run_for(&program, 6).unwrap();
        // Fires at t=0, 2min, 4min.
        assert_eq!(result.actions.len(), 3);
    }

    #[test]
    fn event_placeholder_renders_the_row() {
        let program = parse_program(
            "now => @com.twitter.timeline() filter author == \"PLDI\" => @com.twitter.post(status = $event)",
        )
        .unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        let result = engine.execute_once(&program).unwrap();
        let status = result.actions[0].params.get("status").unwrap();
        let text = status.as_text().unwrap();
        assert!(text.contains("paper deadline extended"));
    }

    #[test]
    fn missing_param_reference_is_an_execution_error() {
        let program = parse_program(
            "now => @com.twitter.timeline() => @com.twitter.post(status = nonexistent_param)",
        )
        .unwrap();
        let mut engine = ExecutionEngine::new(ToyDelegate::new());
        assert!(engine.execute_once(&program).is_err());
    }
}
