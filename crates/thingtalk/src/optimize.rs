//! Predicate simplification used by canonicalization (§2.4).
//!
//! Boolean predicates are simplified to eliminate redundant expressions and
//! converted to conjunctive normal form (CNF) before sorting, so semantically
//! equivalent filters have a single representation.

use crate::ast::Predicate;

/// Simplify a predicate: flatten nested connectives, drop `true`/`false`
/// identities, deduplicate operands, push negation inward (using operator
/// negation where possible), and return the result in conjunctive normal
/// form.
pub fn simplify(predicate: Predicate) -> Predicate {
    let nnf = to_nnf(predicate);
    let cnf = to_cnf(nnf);
    flatten(cnf)
}

/// Push negations inward, producing negation normal form. Negated comparison
/// atoms are rewritten using the negated operator when one exists; otherwise
/// the negation is kept around the atom.
fn to_nnf(predicate: Predicate) -> Predicate {
    match predicate {
        Predicate::Not(inner) => negate(to_nnf(*inner)),
        Predicate::And(items) => Predicate::And(items.into_iter().map(to_nnf).collect()),
        Predicate::Or(items) => Predicate::Or(items.into_iter().map(to_nnf).collect()),
        other => other,
    }
}

fn negate(predicate: Predicate) -> Predicate {
    match predicate {
        Predicate::True => Predicate::False,
        Predicate::False => Predicate::True,
        Predicate::Not(inner) => *inner,
        Predicate::And(items) => Predicate::Or(items.into_iter().map(negate).collect()),
        Predicate::Or(items) => Predicate::And(items.into_iter().map(negate).collect()),
        Predicate::Atom { param, op, value } => match op.negate() {
            Some(negated) => Predicate::Atom {
                param,
                op: negated,
                value,
            },
            None => Predicate::Not(Box::new(Predicate::Atom { param, op, value })),
        },
        external @ Predicate::External { .. } => Predicate::Not(Box::new(external)),
    }
}

/// Distribute disjunctions over conjunctions to obtain CNF. The recursion is
/// bounded because filters in practice have a handful of atoms.
fn to_cnf(predicate: Predicate) -> Predicate {
    match predicate {
        Predicate::And(items) => Predicate::And(items.into_iter().map(to_cnf).collect()),
        Predicate::Or(items) => {
            let items: Vec<Predicate> = items.into_iter().map(to_cnf).collect();
            // Find a conjunction among the disjuncts to distribute over.
            if let Some(idx) = items.iter().position(|p| matches!(p, Predicate::And(_))) {
                let mut rest = items;
                let and = rest.remove(idx);
                let Predicate::And(conjuncts) = and else {
                    unreachable!("position() found an And");
                };
                let distributed: Vec<Predicate> = conjuncts
                    .into_iter()
                    .map(|conjunct| {
                        let mut operands = rest.clone();
                        operands.push(conjunct);
                        to_cnf(Predicate::Or(operands))
                    })
                    .collect();
                Predicate::And(distributed)
            } else {
                Predicate::Or(items)
            }
        }
        other => other,
    }
}

/// Flatten nested conjunctions/disjunctions, remove identities, deduplicate
/// and sort operands by their printed form (the canonical order of §2.4).
fn flatten(predicate: Predicate) -> Predicate {
    match predicate {
        Predicate::And(items) => {
            let mut flat: Vec<Predicate> = Vec::new();
            for item in items {
                match flatten(item) {
                    Predicate::True => {}
                    Predicate::False => return Predicate::False,
                    Predicate::And(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            normalize_operands(&mut flat);
            match flat.len() {
                0 => Predicate::True,
                1 => flat.pop().expect("one operand"),
                _ => Predicate::And(flat),
            }
        }
        Predicate::Or(items) => {
            let mut flat: Vec<Predicate> = Vec::new();
            for item in items {
                match flatten(item) {
                    Predicate::False => {}
                    Predicate::True => return Predicate::True,
                    Predicate::Or(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            normalize_operands(&mut flat);
            match flat.len() {
                0 => Predicate::False,
                1 => flat.pop().expect("one operand"),
                _ => Predicate::Or(flat),
            }
        }
        Predicate::Not(inner) => match flatten(*inner) {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            other => Predicate::Not(Box::new(other)),
        },
        other => other,
    }
}

fn normalize_operands(operands: &mut Vec<Predicate>) {
    operands.sort_by_key(|p| p.to_string());
    operands.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompareOp;
    use crate::value::Value;

    fn atom(param: &str, op: CompareOp, n: f64) -> Predicate {
        Predicate::atom(param, op, Value::Number(n))
    }

    #[test]
    fn drops_true_and_false_identities() {
        let p = Predicate::And(vec![Predicate::True, atom("x", CompareOp::Gt, 1.0)]);
        assert_eq!(simplify(p), atom("x", CompareOp::Gt, 1.0));

        let p = Predicate::Or(vec![Predicate::False, atom("x", CompareOp::Gt, 1.0)]);
        assert_eq!(simplify(p), atom("x", CompareOp::Gt, 1.0));

        let p = Predicate::And(vec![Predicate::False, atom("x", CompareOp::Gt, 1.0)]);
        assert_eq!(simplify(p), Predicate::False);
    }

    #[test]
    fn deduplicates_and_sorts_operands() {
        let p = Predicate::And(vec![
            atom("b", CompareOp::Gt, 2.0),
            atom("a", CompareOp::Lt, 1.0),
            atom("b", CompareOp::Gt, 2.0),
        ]);
        let simplified = simplify(p);
        match simplified {
            Predicate::And(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], atom("a", CompareOp::Lt, 1.0));
                assert_eq!(items[1], atom("b", CompareOp::Gt, 2.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_is_pushed_into_atoms() {
        let p = Predicate::Not(Box::new(atom("x", CompareOp::Gt, 5.0)));
        assert_eq!(simplify(p), atom("x", CompareOp::Leq, 5.0));

        // De Morgan: !(a && b) == !a || !b
        let p = Predicate::Not(Box::new(Predicate::And(vec![
            atom("a", CompareOp::Eq, 1.0),
            atom("b", CompareOp::Eq, 2.0),
        ])));
        match simplify(p) {
            Predicate::Or(items) => assert_eq!(items.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let p = Predicate::Not(Box::new(Predicate::Not(Box::new(atom(
            "x",
            CompareOp::Eq,
            1.0,
        )))));
        assert_eq!(simplify(p), atom("x", CompareOp::Eq, 1.0));
    }

    #[test]
    fn converts_to_cnf() {
        // a || (b && c)  ==>  (a || b) && (a || c)
        let p = Predicate::Or(vec![
            atom("a", CompareOp::Eq, 1.0),
            Predicate::And(vec![
                atom("b", CompareOp::Eq, 2.0),
                atom("c", CompareOp::Eq, 3.0),
            ]),
        ]);
        match simplify(p) {
            Predicate::And(items) => {
                assert_eq!(items.len(), 2);
                for item in items {
                    assert!(matches!(item, Predicate::Or(ref inner) if inner.len() == 2));
                }
            }
            other => panic!("expected CNF conjunction, got {other:?}"),
        }
    }

    #[test]
    fn equivalent_predicates_have_equal_canonical_forms() {
        let p1 = Predicate::And(vec![
            atom("a", CompareOp::Eq, 1.0),
            atom("b", CompareOp::Eq, 2.0),
        ]);
        let p2 = Predicate::And(vec![
            atom("b", CompareOp::Eq, 2.0),
            atom("a", CompareOp::Eq, 1.0),
        ]);
        assert_eq!(simplify(p1), simplify(p2));
    }
}
