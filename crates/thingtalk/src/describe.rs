//! Converting programs back into canonical natural language.
//!
//! The paper notes that VAPL code "can also be converted back into a
//! canonical natural language sentence to confirm the program before
//! execution". The describer is also the core of the Wang-et-al baseline
//! (generate one canonical sentence per program and match paraphrases
//! against it) and is used to build clunky-but-understandable synthesized
//! sentences when no primitive template applies.

use crate::ast::{Action, AggregationOp, CompareOp, Invocation, Predicate, Program, Query, Stream};
use crate::typecheck::SchemaRegistry;
use crate::value::{DateValue, LocationValue, Value};

/// Produces canonical English descriptions of programs, values and
/// predicates, using the canonical phrases stored in the skill library when
/// available and falling back to identifier munging otherwise.
pub struct Describer<'a, R: SchemaRegistry + ?Sized> {
    registry: &'a R,
}

impl<'a, R: SchemaRegistry + ?Sized> Describer<'a, R> {
    /// Create a describer over the given registry.
    pub fn new(registry: &'a R) -> Self {
        Describer { registry }
    }

    /// Describe a full program as one sentence.
    ///
    /// # Examples
    ///
    /// ```
    /// use thingtalk::describe::Describer;
    /// use thingtalk::syntax::parse_program;
    /// use thingtalk::typecheck::MapRegistry;
    ///
    /// let registry = MapRegistry::new();
    /// let program = parse_program("now => @com.gmail.inbox() => notify")?;
    /// let sentence = Describer::new(&registry).describe(&program);
    /// assert_eq!(sentence, "get inbox on gmail and notify me");
    /// # Ok::<(), thingtalk::Error>(())
    /// ```
    pub fn describe(&self, program: &Program) -> String {
        let action_phrase = match &program.action {
            Action::Notify => "notify me".to_owned(),
            Action::Invocation(inv) => self.describe_invocation(inv, "do"),
        };
        let query_phrase = program
            .query
            .as_ref()
            .map(|q| self.describe_query(q, "get"));
        let stream_phrase = self.describe_stream(&program.stream);

        let mut parts: Vec<String> = Vec::new();
        if let Some(stream_phrase) = stream_phrase {
            parts.push(stream_phrase);
        }
        if let Some(query_phrase) = query_phrase {
            parts.push(query_phrase);
        }
        parts.push(action_phrase);
        parts.join(" and ").replace("  ", " ").trim().to_owned()
    }

    fn describe_stream(&self, stream: &Stream) -> Option<String> {
        match stream {
            Stream::Now => None,
            Stream::AtTimer { time } => Some(format!("every day at {}", describe_value(time))),
            Stream::Timer { interval, .. } => Some(format!("every {}", describe_value(interval))),
            Stream::Monitor { query, on } => {
                let base = self.describe_query(query, "when");
                if on.is_empty() {
                    Some(format!("when {base} change"))
                } else {
                    Some(format!(
                        "when {base} have a new {}",
                        on.iter()
                            .map(|p| p.replace('_', " "))
                            .collect::<Vec<_>>()
                            .join(" or ")
                    ))
                }
            }
            Stream::EdgeFilter { stream, predicate } => {
                let base = self.describe_stream(stream).unwrap_or_default();
                Some(format!(
                    "{base} and {} becomes true",
                    self.describe_predicate(predicate)
                ))
            }
        }
    }

    fn describe_query(&self, query: &Query, verb: &str) -> String {
        match query {
            Query::Invocation(inv) => self.describe_invocation(inv, verb),
            Query::Filter { query, predicate } => format!(
                "{} having {}",
                self.describe_query(query, verb),
                self.describe_predicate(predicate)
            ),
            Query::Join { lhs, rhs, on } => {
                let mut sentence = format!(
                    "{} combined with {}",
                    self.describe_query(lhs, verb),
                    self.describe_query(rhs, "get")
                );
                if !on.is_empty() {
                    let passing: Vec<String> = on
                        .iter()
                        .map(|jp| {
                            format!(
                                "the {} as the {}",
                                jp.output.replace('_', " "),
                                jp.input.replace('_', " ")
                            )
                        })
                        .collect();
                    sentence.push_str(&format!(" using {}", passing.join(" and ")));
                }
                sentence
            }
            Query::Aggregation { op, field, query } => {
                let inner = self.describe_query(query, "get");
                match (op, field) {
                    (AggregationOp::Count, _) => format!("the number of {inner}"),
                    (op, Some(field)) => format!(
                        "the {} {} of {inner}",
                        aggregation_phrase(*op),
                        field.replace('_', " ")
                    ),
                    (op, None) => format!("the {} of {inner}", aggregation_phrase(*op)),
                }
            }
        }
    }

    fn describe_invocation(&self, inv: &Invocation, verb: &str) -> String {
        let function = self
            .registry
            .function(&inv.function.class, &inv.function.function);
        let canonical = function
            .map(|f| f.canonical.clone())
            .unwrap_or_else(|| inv.function.function.replace('_', " "));
        let device = self
            .registry
            .class(&inv.function.class)
            .map(|c| c.display_name.clone())
            .unwrap_or_else(|| {
                inv.function
                    .class
                    .rsplit('.')
                    .next()
                    .unwrap_or(&inv.function.class)
                    .to_owned()
            });
        let mut sentence =
            if canonical.contains(&device.to_lowercase()) || canonical.contains(&device) {
                format!("{verb} {canonical}")
            } else {
                format!("{verb} {canonical} on {device}")
            };
        for param in &inv.in_params {
            let param_phrase = function
                .and_then(|f| f.param(&param.name))
                .map(|p| p.canonical.clone())
                .unwrap_or_else(|| param.name.replace('_', " "));
            match &param.value {
                Value::VarRef(source) => {
                    sentence.push_str(&format!(
                        " with the {} as the {param_phrase}",
                        source.replace('_', " ")
                    ));
                }
                Value::Event => {
                    sentence.push_str(&format!(" with the result as the {param_phrase}"));
                }
                Value::Undefined => {
                    sentence.push_str(&format!(" with some {param_phrase}"));
                }
                value => {
                    sentence.push_str(&format!(" with {param_phrase} {}", describe_value(value)));
                }
            }
        }
        sentence
    }

    /// Describe a predicate as an English phrase.
    pub fn describe_predicate(&self, predicate: &Predicate) -> String {
        match predicate {
            Predicate::True => "anything".to_owned(),
            Predicate::False => "nothing".to_owned(),
            Predicate::Not(inner) => format!("not {}", self.describe_predicate(inner)),
            Predicate::And(items) => items
                .iter()
                .map(|p| self.describe_predicate(p))
                .collect::<Vec<_>>()
                .join(" and "),
            Predicate::Or(items) => items
                .iter()
                .map(|p| self.describe_predicate(p))
                .collect::<Vec<_>>()
                .join(" or "),
            Predicate::Atom { param, op, value } => format!(
                "the {} {} {}",
                param.replace('_', " "),
                compare_phrase(*op),
                describe_value(value)
            ),
            Predicate::External {
                invocation,
                predicate,
            } => format!(
                "{} have {}",
                self.describe_invocation(invocation, "the"),
                self.describe_predicate(predicate)
            ),
        }
    }
}

fn aggregation_phrase(op: AggregationOp) -> &'static str {
    match op {
        AggregationOp::Max => "maximum",
        AggregationOp::Min => "minimum",
        AggregationOp::Sum => "total",
        AggregationOp::Avg => "average",
        AggregationOp::Count => "number",
    }
}

fn compare_phrase(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "is equal to",
        CompareOp::Neq => "is not",
        CompareOp::Gt => "is greater than",
        CompareOp::Lt => "is less than",
        CompareOp::Geq => "is at least",
        CompareOp::Leq => "is at most",
        CompareOp::Contains => "contains",
        CompareOp::Substr => "contains",
        CompareOp::StartsWith => "starts with",
        CompareOp::EndsWith => "ends with",
        CompareOp::InArray => "is one of",
    }
}

/// Describe a value in natural language.
pub fn describe_value(value: &Value) -> String {
    let mut out = String::new();
    describe_value_into(value, &mut out);
    out
}

/// [`describe_value`] into a caller-owned buffer (appending) — the
/// allocation-free path the synthesis hot loop uses before interning the
/// rendered words.
pub fn describe_value_into(value: &Value, out: &mut String) {
    use std::fmt::Write;
    match value {
        Value::String(s) => out.push_str(s),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Boolean(true) => out.push_str("yes"),
        Value::Boolean(false) => out.push_str("no"),
        Value::Measure(amount, unit) => {
            describe_value_into(&Value::Number(*amount), out);
            out.push(' ');
            out.push_str(unit.phrase());
        }
        Value::CompoundMeasure(parts) => {
            for (i, (amount, unit)) in parts.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                describe_value_into(&Value::Number(*amount), out);
                out.push(' ');
                out.push_str(unit.phrase());
            }
        }
        Value::Date(DateValue::Absolute(ms)) => {
            let _ = write!(out, "the date {ms}");
        }
        Value::Date(DateValue::Edge(edge)) => {
            push_keyword(out, edge.keyword());
        }
        Value::Date(DateValue::Offset { base, offset_ms }) => {
            let days = (offset_ms.abs() as f64 / 86_400_000.0).round() as i64;
            let direction = if *offset_ms < 0 { "before" } else { "after" };
            let _ = write!(out, "{days} days {direction} ");
            push_keyword(out, base.keyword());
        }
        Value::Time(h, m) => {
            let _ = write!(out, "{h}:{m:02}");
        }
        Value::Location(LocationValue::Named(name)) => out.push_str(name),
        Value::Location(LocationValue::Coordinates {
            latitude,
            longitude,
        }) => {
            let _ = write!(out, "the location at {latitude}, {longitude}");
        }
        Value::Enum(v) => push_keyword(out, v),
        Value::Currency(amount, code) => {
            let _ = write!(out, "{amount} {code}");
        }
        Value::Entity { value, display, .. } => {
            out.push_str(display.as_deref().unwrap_or(value));
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                describe_value_into(item, out);
            }
        }
        Value::VarRef(name) => {
            out.push_str("the ");
            push_keyword(out, name);
        }
        Value::Event => out.push_str("the result"),
        Value::Undefined => out.push_str("something"),
    }
}

/// Append a `snake_case` keyword with underscores replaced by spaces.
fn push_keyword(out: &mut String, keyword: &str) {
    for (i, part) in keyword.split('_').enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDef, FunctionDef, FunctionKind, ParamDef, ParamDirection};
    use crate::syntax::parse_program;
    use crate::typecheck::MapRegistry;
    use crate::types::Type;
    use crate::units::BaseUnit;

    fn registry() -> MapRegistry {
        let mut registry = MapRegistry::new();
        registry.add_class(
            ClassDef::new("com.dropbox")
                .with_display_name("Dropbox")
                .with_function(
                    FunctionDef::new(
                        "list_folder",
                        FunctionKind::MONITORABLE_LIST_QUERY,
                        vec![
                            ParamDef::new("file_name", Type::PathName, ParamDirection::Out),
                            ParamDef::new(
                                "file_size",
                                Type::Measure(BaseUnit::Byte),
                                ParamDirection::Out,
                            ),
                            ParamDef::new("modified_time", Type::Date, ParamDirection::Out),
                        ],
                    )
                    .with_canonical("my dropbox files"),
                ),
        );
        registry
    }

    #[test]
    fn describes_primitive_get() {
        let registry = registry();
        let program = parse_program("now => @com.dropbox.list_folder() => notify").unwrap();
        let sentence = Describer::new(&registry).describe(&program);
        assert_eq!(sentence, "get my dropbox files and notify me");
    }

    #[test]
    fn describes_filters_with_canonical_phrases() {
        let registry = registry();
        let program = parse_program(
            "now => @com.dropbox.list_folder() filter modified_time > start_of_week => notify",
        )
        .unwrap();
        let sentence = Describer::new(&registry).describe(&program);
        assert!(sentence.contains("my dropbox files"));
        assert!(sentence.contains("modified time is greater than start of week"));
    }

    #[test]
    fn describes_monitors() {
        let registry = registry();
        let program = parse_program("monitor (@com.dropbox.list_folder()) => notify").unwrap();
        let sentence = Describer::new(&registry).describe(&program);
        assert!(
            sentence.starts_with("when when my dropbox files change") || sentence.contains("when")
        );
        assert!(sentence.ends_with("notify me"));
    }

    #[test]
    fn describes_unknown_functions_by_munging() {
        let registry = MapRegistry::new();
        let program = parse_program(
            "now => @com.thecatapi.get() => @com.facebook.post_picture(caption = \"funny cat\")",
        )
        .unwrap();
        let sentence = Describer::new(&registry).describe(&program);
        assert!(sentence.contains("thecatapi"));
        assert!(sentence.contains("post picture"));
        assert!(sentence.contains("funny cat"));
    }

    #[test]
    fn describes_values() {
        assert_eq!(
            describe_value(&Value::Measure(60.0, crate::units::Unit::Fahrenheit)),
            "60 degrees fahrenheit"
        );
        assert_eq!(describe_value(&Value::Boolean(true)), "yes");
        assert_eq!(describe_value(&Value::Time(8, 5)), "8:05");
        assert_eq!(
            describe_value(&Value::CompoundMeasure(vec![
                (6.0, crate::units::Unit::Foot),
                (3.0, crate::units::Unit::Inch)
            ])),
            "6 feet 3 inches"
        );
    }

    #[test]
    fn deterministic_descriptions() {
        let registry = registry();
        let program =
            parse_program("now => @com.dropbox.list_folder() filter file_size > 5GB => notify")
                .unwrap();
        let describer = Describer::new(&registry);
        assert_eq!(describer.describe(&program), describer.describe(&program));
    }
}
