//! Measurement units supported by the ThingTalk type system.
//!
//! The paper requires a rich language for constants: "measures can be
//! represented with any legal unit, and can be composed additively (as in
//! '6 feet 3 inches')". Each unit belongs to a *base unit* family and carries
//! a conversion factor (and offset, for temperatures) to that base unit, so
//! the runtime can compare measures written in different units.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::Error;

/// The dimension a unit measures. Two [`Unit`]s are comparable iff they share
/// a base unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BaseUnit {
    /// Bytes (digital information).
    Byte,
    /// Milliseconds (durations).
    Millisecond,
    /// Meters (length).
    Meter,
    /// Degrees Celsius (temperature).
    Celsius,
    /// Grams (mass).
    Gram,
    /// Meters per second (speed).
    MeterPerSecond,
    /// Calories (energy).
    Calorie,
    /// Beats per minute (tempo / heart rate).
    BeatPerMinute,
    /// Pascal (pressure).
    Pascal,
    /// Milliliter (volume).
    Milliliter,
}

/// A concrete measurement unit, e.g. `KB`, `ft`, `F`.
///
/// # Examples
///
/// ```
/// use thingtalk::units::Unit;
/// let ft: Unit = "ft".parse()?;
/// let m: Unit = "m".parse()?;
/// assert_eq!(ft.base(), m.base());
/// assert!((ft.to_base(6.0) - 1.8288).abs() < 1e-9);
/// # Ok::<(), thingtalk::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Unit {
    // information
    Byte,
    Kilobyte,
    Megabyte,
    Gigabyte,
    Terabyte,
    // time
    Millisecond,
    Second,
    Minute,
    Hour,
    Day,
    Week,
    Month,
    Year,
    // length
    Millimeter,
    Centimeter,
    Meter,
    Kilometer,
    Inch,
    Foot,
    Yard,
    Mile,
    // temperature
    Celsius,
    Fahrenheit,
    Kelvin,
    // mass
    Milligram,
    Gram,
    Kilogram,
    Ounce,
    Pound,
    // speed
    MeterPerSecond,
    KilometerPerHour,
    MilePerHour,
    // energy
    Calorie,
    Kilocalorie,
    // tempo
    BeatPerMinute,
    // pressure
    Pascal,
    Hectopascal,
    Millibar,
    PoundPerSquareInch,
    // volume
    Milliliter,
    Liter,
    FluidOunce,
    Gallon,
    Cup,
}

impl Unit {
    /// All units, in a fixed order (useful for enumeration in templates and
    /// property tests).
    pub const ALL: &'static [Unit] = &[
        Unit::Byte,
        Unit::Kilobyte,
        Unit::Megabyte,
        Unit::Gigabyte,
        Unit::Terabyte,
        Unit::Millisecond,
        Unit::Second,
        Unit::Minute,
        Unit::Hour,
        Unit::Day,
        Unit::Week,
        Unit::Month,
        Unit::Year,
        Unit::Millimeter,
        Unit::Centimeter,
        Unit::Meter,
        Unit::Kilometer,
        Unit::Inch,
        Unit::Foot,
        Unit::Yard,
        Unit::Mile,
        Unit::Celsius,
        Unit::Fahrenheit,
        Unit::Kelvin,
        Unit::Milligram,
        Unit::Gram,
        Unit::Kilogram,
        Unit::Ounce,
        Unit::Pound,
        Unit::MeterPerSecond,
        Unit::KilometerPerHour,
        Unit::MilePerHour,
        Unit::Calorie,
        Unit::Kilocalorie,
        Unit::BeatPerMinute,
        Unit::Pascal,
        Unit::Hectopascal,
        Unit::Millibar,
        Unit::PoundPerSquareInch,
        Unit::Milliliter,
        Unit::Liter,
        Unit::FluidOunce,
        Unit::Gallon,
        Unit::Cup,
    ];

    /// The canonical surface-syntax spelling of the unit (as written after a
    /// number, e.g. `5KB`, `60F`, `3in`).
    pub fn symbol(self) -> &'static str {
        match self {
            Unit::Byte => "byte",
            Unit::Kilobyte => "KB",
            Unit::Megabyte => "MB",
            Unit::Gigabyte => "GB",
            Unit::Terabyte => "TB",
            Unit::Millisecond => "ms",
            Unit::Second => "s",
            Unit::Minute => "min",
            Unit::Hour => "h",
            Unit::Day => "day",
            Unit::Week => "week",
            Unit::Month => "mon",
            Unit::Year => "year",
            Unit::Millimeter => "mm",
            Unit::Centimeter => "cm",
            Unit::Meter => "m",
            Unit::Kilometer => "km",
            Unit::Inch => "in",
            Unit::Foot => "ft",
            Unit::Yard => "yd",
            Unit::Mile => "mi",
            Unit::Celsius => "C",
            Unit::Fahrenheit => "F",
            Unit::Kelvin => "K",
            Unit::Milligram => "mg",
            Unit::Gram => "g",
            Unit::Kilogram => "kg",
            Unit::Ounce => "oz",
            Unit::Pound => "lb",
            Unit::MeterPerSecond => "mps",
            Unit::KilometerPerHour => "kmph",
            Unit::MilePerHour => "mph",
            Unit::Calorie => "cal",
            Unit::Kilocalorie => "kcal",
            Unit::BeatPerMinute => "bpm",
            Unit::Pascal => "Pa",
            Unit::Hectopascal => "hPa",
            Unit::Millibar => "mbar",
            Unit::PoundPerSquareInch => "psi",
            Unit::Milliliter => "ml",
            Unit::Liter => "l",
            Unit::FluidOunce => "floz",
            Unit::Gallon => "gal",
            Unit::Cup => "cup",
        }
    }

    /// A natural-language phrase for the unit, used by the describer and the
    /// template engine ("60 degrees fahrenheit", "5 kilobytes").
    pub fn phrase(self) -> &'static str {
        match self {
            Unit::Byte => "bytes",
            Unit::Kilobyte => "kilobytes",
            Unit::Megabyte => "megabytes",
            Unit::Gigabyte => "gigabytes",
            Unit::Terabyte => "terabytes",
            Unit::Millisecond => "milliseconds",
            Unit::Second => "seconds",
            Unit::Minute => "minutes",
            Unit::Hour => "hours",
            Unit::Day => "days",
            Unit::Week => "weeks",
            Unit::Month => "months",
            Unit::Year => "years",
            Unit::Millimeter => "millimeters",
            Unit::Centimeter => "centimeters",
            Unit::Meter => "meters",
            Unit::Kilometer => "kilometers",
            Unit::Inch => "inches",
            Unit::Foot => "feet",
            Unit::Yard => "yards",
            Unit::Mile => "miles",
            Unit::Celsius => "degrees celsius",
            Unit::Fahrenheit => "degrees fahrenheit",
            Unit::Kelvin => "kelvin",
            Unit::Milligram => "milligrams",
            Unit::Gram => "grams",
            Unit::Kilogram => "kilograms",
            Unit::Ounce => "ounces",
            Unit::Pound => "pounds",
            Unit::MeterPerSecond => "meters per second",
            Unit::KilometerPerHour => "kilometers per hour",
            Unit::MilePerHour => "miles per hour",
            Unit::Calorie => "calories",
            Unit::Kilocalorie => "kilocalories",
            Unit::BeatPerMinute => "beats per minute",
            Unit::Pascal => "pascals",
            Unit::Hectopascal => "hectopascals",
            Unit::Millibar => "millibars",
            Unit::PoundPerSquareInch => "pounds per square inch",
            Unit::Milliliter => "milliliters",
            Unit::Liter => "liters",
            Unit::FluidOunce => "fluid ounces",
            Unit::Gallon => "gallons",
            Unit::Cup => "cups",
        }
    }

    /// The base unit of this unit's dimension.
    pub fn base(self) -> BaseUnit {
        match self {
            Unit::Byte | Unit::Kilobyte | Unit::Megabyte | Unit::Gigabyte | Unit::Terabyte => {
                BaseUnit::Byte
            }
            Unit::Millisecond
            | Unit::Second
            | Unit::Minute
            | Unit::Hour
            | Unit::Day
            | Unit::Week
            | Unit::Month
            | Unit::Year => BaseUnit::Millisecond,
            Unit::Millimeter
            | Unit::Centimeter
            | Unit::Meter
            | Unit::Kilometer
            | Unit::Inch
            | Unit::Foot
            | Unit::Yard
            | Unit::Mile => BaseUnit::Meter,
            Unit::Celsius | Unit::Fahrenheit | Unit::Kelvin => BaseUnit::Celsius,
            Unit::Milligram | Unit::Gram | Unit::Kilogram | Unit::Ounce | Unit::Pound => {
                BaseUnit::Gram
            }
            Unit::MeterPerSecond | Unit::KilometerPerHour | Unit::MilePerHour => {
                BaseUnit::MeterPerSecond
            }
            Unit::Calorie | Unit::Kilocalorie => BaseUnit::Calorie,
            Unit::BeatPerMinute => BaseUnit::BeatPerMinute,
            Unit::Pascal | Unit::Hectopascal | Unit::Millibar | Unit::PoundPerSquareInch => {
                BaseUnit::Pascal
            }
            Unit::Milliliter | Unit::Liter | Unit::FluidOunce | Unit::Gallon | Unit::Cup => {
                BaseUnit::Milliliter
            }
        }
    }

    /// Convert `value` expressed in this unit to the base unit of its
    /// dimension.
    pub fn to_base(self, value: f64) -> f64 {
        match self {
            Unit::Celsius => value,
            Unit::Fahrenheit => (value - 32.0) * 5.0 / 9.0,
            Unit::Kelvin => value - 273.15,
            _ => value * self.factor(),
        }
    }

    /// Convert `value` expressed in the base unit back to this unit.
    pub fn from_base(self, value: f64) -> f64 {
        match self {
            Unit::Celsius => value,
            Unit::Fahrenheit => value * 9.0 / 5.0 + 32.0,
            Unit::Kelvin => value + 273.15,
            _ => value / self.factor(),
        }
    }

    fn factor(self) -> f64 {
        match self {
            Unit::Byte => 1.0,
            Unit::Kilobyte => 1e3,
            Unit::Megabyte => 1e6,
            Unit::Gigabyte => 1e9,
            Unit::Terabyte => 1e12,
            Unit::Millisecond => 1.0,
            Unit::Second => 1e3,
            Unit::Minute => 60e3,
            Unit::Hour => 3_600e3,
            Unit::Day => 86_400e3,
            Unit::Week => 604_800e3,
            Unit::Month => 2_592_000e3,
            Unit::Year => 31_536_000e3,
            Unit::Millimeter => 1e-3,
            Unit::Centimeter => 1e-2,
            Unit::Meter => 1.0,
            Unit::Kilometer => 1e3,
            Unit::Inch => 0.0254,
            Unit::Foot => 0.3048,
            Unit::Yard => 0.9144,
            Unit::Mile => 1609.344,
            Unit::Celsius | Unit::Fahrenheit | Unit::Kelvin => 1.0,
            Unit::Milligram => 1e-3,
            Unit::Gram => 1.0,
            Unit::Kilogram => 1e3,
            Unit::Ounce => 28.349_523_125,
            Unit::Pound => 453.592_37,
            Unit::MeterPerSecond => 1.0,
            Unit::KilometerPerHour => 1.0 / 3.6,
            Unit::MilePerHour => 0.447_04,
            Unit::Calorie => 1.0,
            Unit::Kilocalorie => 1e3,
            Unit::BeatPerMinute => 1.0,
            Unit::Pascal => 1.0,
            Unit::Hectopascal => 100.0,
            Unit::Millibar => 100.0,
            Unit::PoundPerSquareInch => 6894.757,
            Unit::Milliliter => 1.0,
            Unit::Liter => 1e3,
            Unit::FluidOunce => 29.5735,
            Unit::Gallon => 3785.41,
            Unit::Cup => 236.588,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl FromStr for Unit {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        for unit in Unit::ALL {
            if unit.symbol() == s {
                return Ok(*unit);
            }
        }
        // Accept a few common aliases used in natural language and in the
        // original Thingpedia manifests.
        let alias = match s {
            "bytes" | "B" => Some(Unit::Byte),
            "kB" | "kb" => Some(Unit::Kilobyte),
            "sec" => Some(Unit::Second),
            "minute" | "minutes" => Some(Unit::Minute),
            "hour" | "hours" | "hr" => Some(Unit::Hour),
            "days" => Some(Unit::Day),
            "weeks" => Some(Unit::Week),
            "month" | "months" => Some(Unit::Month),
            "years" => Some(Unit::Year),
            "meters" => Some(Unit::Meter),
            "feet" => Some(Unit::Foot),
            "inches" => Some(Unit::Inch),
            "miles" => Some(Unit::Mile),
            "celsius" => Some(Unit::Celsius),
            "fahrenheit" => Some(Unit::Fahrenheit),
            "defaultTemperature" => Some(Unit::Celsius),
            _ => None,
        };
        alias.ok_or_else(|| Error::Unit {
            message: format!("unknown unit `{s}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_all_units() {
        for unit in Unit::ALL {
            let parsed: Unit = unit.symbol().parse().expect("symbol should parse");
            assert_eq!(parsed, *unit);
        }
    }

    #[test]
    fn unknown_unit_is_an_error() {
        assert!("parsec".parse::<Unit>().is_err());
    }

    #[test]
    fn feet_and_inches_convert_to_meters() {
        let six_feet_three = Unit::Foot.to_base(6.0) + Unit::Inch.to_base(3.0);
        assert!((six_feet_three - 1.9050).abs() < 1e-9);
    }

    #[test]
    fn temperature_conversion_has_offset() {
        assert!((Unit::Fahrenheit.to_base(60.0) - 15.555_555).abs() < 1e-3);
        assert!((Unit::Fahrenheit.from_base(Unit::Fahrenheit.to_base(60.0)) - 60.0).abs() < 1e-9);
        assert!((Unit::Kelvin.to_base(273.15)).abs() < 1e-9);
    }

    #[test]
    fn base_roundtrip_is_identity() {
        for unit in Unit::ALL {
            let v = 42.5;
            let rt = unit.from_base(unit.to_base(v));
            assert!((rt - v).abs() < 1e-6, "roundtrip failed for {unit}");
        }
    }

    #[test]
    fn comparable_units_share_base() {
        assert_eq!(Unit::Kilobyte.base(), Unit::Gigabyte.base());
        assert_ne!(Unit::Kilobyte.base(), Unit::Meter.base());
    }
}
