//! Error types for the ThingTalk crate.

use std::fmt;

/// A specialized `Result` type for ThingTalk operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by ThingTalk parsing, type checking, serialization
/// and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A lexical error at the given byte offset of the input.
    Lex { offset: usize, message: String },
    /// A syntax error while parsing the surface or NN syntax.
    Parse { message: String },
    /// A type error detected by the typechecker.
    Type { message: String },
    /// Reference to a class or function that is not in the schema registry.
    UnknownFunction { class: String, function: String },
    /// Reference to a parameter that the function does not declare.
    UnknownParameter {
        class: String,
        function: String,
        param: String,
    },
    /// A runtime execution error.
    Execution { message: String },
    /// An access-control policy violation (TACL).
    PolicyViolation { message: String },
    /// Invalid unit name or incompatible unit arithmetic.
    Unit { message: String },
    /// A required resource (e.g. a parameter-value dataset) is absent from a
    /// registry.
    MissingResource { resource: String },
}

impl Error {
    /// Construct a parse error with the given message.
    pub fn parse(message: impl Into<String>) -> Self {
        Error::Parse {
            message: message.into(),
        }
    }

    /// Construct a type error with the given message.
    pub fn type_error(message: impl Into<String>) -> Self {
        Error::Type {
            message: message.into(),
        }
    }

    /// Construct an execution error with the given message.
    pub fn execution(message: impl Into<String>) -> Self {
        Error::Execution {
            message: message.into(),
        }
    }

    /// Construct a policy-violation error with the given message.
    pub fn policy_violation(message: impl Into<String>) -> Self {
        Error::PolicyViolation {
            message: message.into(),
        }
    }

    /// Construct a missing-resource error naming the absent resource.
    pub fn missing_resource(resource: impl Into<String>) -> Self {
        Error::MissingResource {
            resource: resource.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { offset, message } => {
                write!(f, "lexical error at offset {offset}: {message}")
            }
            Error::Parse { message } => write!(f, "syntax error: {message}"),
            Error::Type { message } => write!(f, "type error: {message}"),
            Error::UnknownFunction { class, function } => {
                write!(f, "unknown function @{class}.{function}")
            }
            Error::UnknownParameter {
                class,
                function,
                param,
            } => write!(f, "unknown parameter {param} of @{class}.{function}"),
            Error::Execution { message } => write!(f, "execution error: {message}"),
            Error::PolicyViolation { message } => write!(f, "policy violation: {message}"),
            Error::Unit { message } => write!(f, "invalid unit: {message}"),
            Error::MissingResource { resource } => {
                write!(f, "missing resource: {resource}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = Error::parse("expected `=>`");
        assert_eq!(err.to_string(), "syntax error: expected `=>`");
        let err = Error::UnknownFunction {
            class: "com.twitter".into(),
            function: "tweet".into(),
        };
        assert_eq!(err.to_string(), "unknown function @com.twitter.tweet");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
