//! TACL: the ThingTalk Access Control Language (§6.2, Fig. 10).
//!
//! A policy consists of a *source predicate* — who is requesting access — and
//! a primitive ThingTalk command restricted by a filter: either a query
//! policy (`now => f filter p => notify`) or an action policy
//! (`now => f filter p`). The policy allows a requesting principal to run a
//! program if the source predicate matches the principal and the program is
//! subsumed by the policy body.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ast::{Action, CompareOp, FunctionRef, Predicate, Program, Stream};
use crate::value::Value;

/// The body of a TACL policy: a restricted query or a restricted action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyBody {
    /// Allows reading the results of the given query function, restricted by
    /// the predicate.
    Query {
        /// The query function.
        function: FunctionRef,
        /// The filter restricting which results may be read.
        predicate: Predicate,
    },
    /// Allows invoking the given action function, restricted by the
    /// predicate over its input parameters.
    Action {
        /// The action function.
        function: FunctionRef,
        /// The filter restricting which invocations are allowed.
        predicate: Predicate,
    },
}

impl PolicyBody {
    /// The function the policy governs.
    pub fn function(&self) -> &FunctionRef {
        match self {
            PolicyBody::Query { function, .. } | PolicyBody::Action { function, .. } => function,
        }
    }

    /// The restricting predicate.
    pub fn predicate(&self) -> &Predicate {
        match self {
            PolicyBody::Query { predicate, .. } | PolicyBody::Action { predicate, .. } => predicate,
        }
    }
}

/// A TACL access-control policy.
///
/// # Examples
///
/// ```
/// use thingtalk::syntax::parse_policy;
///
/// // "my secretary is allowed to see my work emails"
/// let policy = parse_policy(
///     "source == \"secretary\" : now => @com.gmail.inbox() \
///      filter labels contains \"work\" => notify",
/// )?;
/// assert!(policy.allows_source("secretary"));
/// assert!(!policy.allows_source("stranger"));
/// # Ok::<(), thingtalk::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// The predicate over the requesting principal; atoms use the parameter
    /// name `source`.
    pub source: Predicate,
    /// The allowed command.
    pub body: PolicyBody,
}

impl Policy {
    /// A policy that allows anyone to run the given body.
    pub fn anyone(body: PolicyBody) -> Self {
        Policy {
            source: Predicate::True,
            body,
        }
    }

    /// Whether this is a query policy (as opposed to an action policy).
    pub fn is_query_policy(&self) -> bool {
        matches!(self.body, PolicyBody::Query { .. })
    }

    /// Evaluate the source predicate against a principal name.
    pub fn allows_source(&self, principal: &str) -> bool {
        eval_source(&self.source, principal)
    }

    /// Whether a primitive program is allowed by this policy for the given
    /// principal. The program must use only the policy's function, and the
    /// check is conservative: a program is allowed only if every filter of
    /// the policy body is syntactically implied by the program (the program
    /// carries the same atom, conjoined).
    pub fn allows_program(&self, principal: &str, program: &Program) -> bool {
        if !self.allows_source(principal) {
            return false;
        }
        // Only primitive commands are governed by primitive TACL policies.
        if program.is_compound() || !matches!(program.stream, Stream::Now) {
            return false;
        }
        match &self.body {
            PolicyBody::Query {
                function,
                predicate,
            } => {
                let Some(query) = &program.query else {
                    return false;
                };
                if !program.action.is_notify() {
                    return false;
                }
                let invocations = query.invocations();
                if invocations.len() != 1 || &invocations[0].function != function {
                    return false;
                }
                predicate_implied(predicate, &query.predicates())
            }
            PolicyBody::Action {
                function,
                predicate,
            } => {
                if program.query.is_some() {
                    return false;
                }
                let Action::Invocation(inv) = &program.action else {
                    return false;
                };
                if &inv.function != function {
                    return false;
                }
                // Action policies restrict input parameters: every atom of
                // the policy predicate must be satisfied by the constant
                // parameters of the invocation.
                atoms(predicate).iter().all(|(param, op, value)| {
                    inv.param(param)
                        .map(|bound| compare_values(bound, *op, value))
                        .unwrap_or(false)
                })
            }
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : now => {}(", self.source, self.body.function())?;
        write!(f, ")")?;
        if !self.body.predicate().is_true() {
            write!(f, " filter {}", self.body.predicate())?;
        }
        if self.is_query_policy() {
            write!(f, " => notify")?;
        }
        Ok(())
    }
}

fn eval_source(predicate: &Predicate, principal: &str) -> bool {
    match predicate {
        Predicate::True => true,
        Predicate::False => false,
        Predicate::Not(inner) => !eval_source(inner, principal),
        Predicate::And(items) => items.iter().all(|p| eval_source(p, principal)),
        Predicate::Or(items) => items.iter().any(|p| eval_source(p, principal)),
        Predicate::Atom { param, op, value } => {
            if param != "source" {
                return false;
            }
            let principal_value = Value::string(principal);
            compare_values(&principal_value, *op, value)
        }
        Predicate::External { .. } => false,
    }
}

fn compare_values(lhs: &Value, op: CompareOp, rhs: &Value) -> bool {
    match op {
        CompareOp::Eq => lhs.loosely_equals(rhs),
        CompareOp::Neq => !lhs.loosely_equals(rhs),
        CompareOp::Gt => matches!(lhs.compare(rhs), Some(std::cmp::Ordering::Greater)),
        CompareOp::Lt => matches!(lhs.compare(rhs), Some(std::cmp::Ordering::Less)),
        CompareOp::Geq => matches!(
            lhs.compare(rhs),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ),
        CompareOp::Leq => matches!(
            lhs.compare(rhs),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ),
        CompareOp::Contains | CompareOp::Substr => {
            let (Some(a), Some(b)) = (lhs.as_text(), rhs.as_text()) else {
                return false;
            };
            a.to_lowercase().contains(&b.to_lowercase())
        }
        CompareOp::StartsWith => {
            let (Some(a), Some(b)) = (lhs.as_text(), rhs.as_text()) else {
                return false;
            };
            a.to_lowercase().starts_with(&b.to_lowercase())
        }
        CompareOp::EndsWith => {
            let (Some(a), Some(b)) = (lhs.as_text(), rhs.as_text()) else {
                return false;
            };
            a.to_lowercase().ends_with(&b.to_lowercase())
        }
        CompareOp::InArray => match rhs {
            Value::Array(items) => items.iter().any(|item| lhs.loosely_equals(item)),
            _ => false,
        },
    }
}

fn atoms(predicate: &Predicate) -> Vec<(&str, CompareOp, &Value)> {
    let mut out = Vec::new();
    collect_atoms(predicate, &mut out);
    out
}

fn collect_atoms<'a>(predicate: &'a Predicate, out: &mut Vec<(&'a str, CompareOp, &'a Value)>) {
    match predicate {
        Predicate::Atom { param, op, value } => out.push((param, *op, value)),
        Predicate::And(items) => {
            for item in items {
                collect_atoms(item, out);
            }
        }
        _ => {}
    }
}

/// Whether every atom of `policy_predicate` also appears among the program's
/// filter predicates (conservative syntactic implication).
fn predicate_implied(policy_predicate: &Predicate, program_predicates: &[&Predicate]) -> bool {
    if policy_predicate.is_true() {
        return true;
    }
    let required = atoms(policy_predicate);
    let mut available = Vec::new();
    for p in program_predicates {
        collect_atoms(p, &mut available);
    }
    required.iter().all(|(param, op, value)| {
        available
            .iter()
            .any(|(p2, op2, v2)| p2 == param && op2 == op && v2.loosely_equals(value))
    })
}

/// Check a program against a set of policies: the program is allowed if any
/// policy allows it.
pub fn check_program(policies: &[Policy], principal: &str, program: &Program) -> bool {
    policies
        .iter()
        .any(|policy| policy.allows_program(principal, program))
}

/// Convenience constructor for the query policy over a single function, used
/// by the TACL template library.
pub fn query_policy(source: Predicate, function: FunctionRef, predicate: Predicate) -> Policy {
    Policy {
        source,
        body: PolicyBody::Query {
            function,
            predicate,
        },
    }
}

/// Convenience constructor for the action policy over a single function.
pub fn action_policy(source: Predicate, function: FunctionRef, predicate: Predicate) -> Policy {
    Policy {
        source,
        body: PolicyBody::Action {
            function,
            predicate,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Invocation;
    use crate::syntax::{parse_policy, parse_program};

    #[test]
    fn source_predicate_evaluation() {
        let policy = parse_policy(
            "source == \"secretary\" || source == \"assistant\" : now => @com.gmail.inbox() => notify",
        )
        .unwrap();
        assert!(policy.allows_source("secretary"));
        assert!(policy.allows_source("assistant"));
        assert!(!policy.allows_source("boss"));
    }

    #[test]
    fn query_policy_requires_matching_filter() {
        let policy = parse_policy(
            "source == \"secretary\" : now => @com.gmail.inbox() filter labels contains \"work\" => notify",
        )
        .unwrap();
        let allowed =
            parse_program("now => @com.gmail.inbox() filter labels contains \"work\" => notify")
                .unwrap();
        let denied = parse_program("now => @com.gmail.inbox() => notify").unwrap();
        assert!(policy.allows_program("secretary", &allowed));
        assert!(!policy.allows_program("secretary", &denied));
        assert!(!policy.allows_program("stranger", &allowed));
    }

    #[test]
    fn action_policy_checks_parameter_values() {
        let policy = parse_policy(
            "true : now => @org.thingpedia.builtin.thermostat.set_target_temperature(value = 25C)",
        )
        .unwrap();
        let allowed = Program::do_action(
            Invocation::new(
                "org.thingpedia.builtin.thermostat",
                "set_target_temperature",
            )
            .with_param("value", Value::Measure(25.0, crate::units::Unit::Celsius)),
        );
        let denied = Program::do_action(
            Invocation::new(
                "org.thingpedia.builtin.thermostat",
                "set_target_temperature",
            )
            .with_param("value", Value::Measure(35.0, crate::units::Unit::Celsius)),
        );
        assert!(policy.allows_program("anyone", &allowed));
        assert!(!policy.allows_program("anyone", &denied));
    }

    #[test]
    fn compound_programs_are_not_covered_by_primitive_policies() {
        let policy = parse_policy("true : now => @com.gmail.inbox() => notify").unwrap();
        let compound =
            parse_program("now => @com.gmail.inbox() => @com.slack.send(message = $event)")
                .unwrap();
        assert!(!policy.allows_program("anyone", &compound));
    }

    #[test]
    fn check_program_any_policy_suffices() {
        let policies = vec![
            parse_policy("source == \"alice\" : now => @com.gmail.inbox() => notify").unwrap(),
            parse_policy("source == \"bob\" : now => @com.twitter.timeline() => notify").unwrap(),
        ];
        let program = parse_program("now => @com.twitter.timeline() => notify").unwrap();
        assert!(check_program(&policies, "bob", &program));
        assert!(!check_program(&policies, "alice", &program));
    }
}
