//! Surface syntax: lexer and recursive-descent parser for ThingTalk
//! programs, skill-library classes, and TACL policies.
//!
//! The surface syntax follows the notation used throughout the paper:
//!
//! ```text
//! monitor (@com.twitter.timeline() filter author == "PLDI")
//!   => @com.twitter.retweet(tweet_id = tweet_id)
//!
//! now => @com.nytimes.get_front_page() join @com.yandex.translate() on (text = title) => notify
//!
//! edge (monitor (@org.thingpedia.weather.current())) on temperature < 60F => notify
//! ```
//!
//! Programs printed with [`std::fmt::Display`] parse back to the same AST
//! (round-trip property, tested with proptest in the crate's test suite).

mod lexer;
mod parser;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_class, parse_policy, parse_program, Parser};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Action, CompareOp, Predicate, Query, Stream};
    use crate::value::Value;

    #[test]
    fn parse_fig1_program() {
        let program = parse_program(
            "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")",
        )
        .unwrap();
        assert!(program.is_compound());
        assert!(program.uses_param_passing());
        assert_eq!(program.devices(), vec!["com.thecatapi", "com.facebook"]);
    }

    #[test]
    fn parse_retweet_example() {
        let program = parse_program(
            "monitor (@com.twitter.timeline() filter author == \"PLDI\") => @com.twitter.retweet(tweet_id = tweet_id)",
        )
        .unwrap();
        assert!(program.is_event_driven());
        assert!(program.has_filter());
        match &program.action {
            Action::Invocation(inv) => assert_eq!(inv.function.function, "retweet"),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn parse_edge_filter_example() {
        let program = parse_program(
            "edge (monitor (@org.thingpedia.weather.current())) on temperature < 60F => notify",
        )
        .unwrap();
        match &program.stream {
            Stream::EdgeFilter { predicate, .. } => match predicate {
                Predicate::Atom { param, op, value } => {
                    assert_eq!(param, "temperature");
                    assert_eq!(*op, CompareOp::Lt);
                    assert!(matches!(value, Value::Measure(v, _) if (*v - 60.0).abs() < 1e-9));
                }
                other => panic!("unexpected predicate {other:?}"),
            },
            other => panic!("unexpected stream {other:?}"),
        }
    }

    #[test]
    fn parse_join_with_param_passing() {
        let program = parse_program(
            "now => @com.nytimes.get_front_page() join @com.yandex.translate() on (text = title) => notify",
        )
        .unwrap();
        let query = program.query.as_ref().unwrap();
        match &**query {
            Query::Join { on, .. } => {
                assert_eq!(on.len(), 1);
                assert_eq!(on[0].input, "text");
                assert_eq!(on[0].output, "title");
            }
            other => panic!("unexpected query {other:?}"),
        }
    }

    #[test]
    fn parse_aggregation() {
        let program =
            parse_program("now => agg sum file_size of (@com.dropbox.list_folder()) => notify")
                .unwrap();
        assert!(program.has_aggregation());
    }

    #[test]
    fn display_roundtrip() {
        let sources = [
            "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")",
            "monitor (@com.twitter.timeline() filter author == \"PLDI\") => @com.twitter.retweet(tweet_id = tweet_id)",
            "now => agg sum file_size of (@com.dropbox.list_folder()) => notify",
            "timer base = now interval = 1h => @com.spotify.play_song(song = \"wake me up inside\")",
            "attimer time = time(08:00) => @com.spotify.play_song(song = \"wake me up\")",
            "edge (monitor (@org.thingpedia.weather.current())) on temperature < 60F => notify",
        ];
        for source in sources {
            let program = parse_program(source).unwrap();
            let printed = program.to_string();
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
            assert_eq!(program, reparsed, "roundtrip failed for `{source}`");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_program("now =>").is_err());
        assert!(parse_program("=> notify").is_err());
        assert!(parse_program("now => @com..bad() => notify").is_err());
        assert!(parse_program("now => @com.gmail.inbox() filter => notify").is_err());
    }
}
