//! The ThingTalk lexer.
//!
//! Produces a flat token stream consumed by the recursive-descent parser.
//! The lexer is deliberately simple: identifiers (including dotted names
//! after `@`), numbers, string literals, and a fixed set of punctuation.

use crate::error::{Error, Result};

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`now`, `filter`, `author`, …).
    Ident(String),
    /// A function reference, e.g. `@com.twitter.timeline` (without the `@`).
    At(String),
    /// A numeric literal.
    Number(f64),
    /// A double-quoted string literal (without the quotes).
    Str(String),
    /// `=>`
    Arrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `>=`
    Geq,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `=`
    Assign,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `^^` (entity type annotation)
    CaretCaret,
    /// `.` (only appears between identifiers, e.g. entity kinds)
    Dot,
    /// `$?` (undefined slot)
    DollarQuestion,
    /// `$event`
    DollarEvent,
    /// End of input.
    Eof,
}

/// A token with its byte offset in the source, for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// Tokenize a ThingTalk source string.
///
/// # Errors
///
/// Returns [`Error::Lex`] on unterminated strings or unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Bang,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Geq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Leq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token {
                        kind: TokenKind::AndAnd,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(Error::Lex {
                        offset: start,
                        message: "expected `&&`".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token {
                        kind: TokenKind::OrOr,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(Error::Lex {
                        offset: start,
                        message: "expected `||`".into(),
                    });
                }
            }
            '^' => {
                if bytes.get(i + 1) == Some(&b'^') {
                    tokens.push(Token {
                        kind: TokenKind::CaretCaret,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(Error::Lex {
                        offset: start,
                        message: "expected `^^`".into(),
                    });
                }
            }
            '$' => {
                let rest = &source[i + 1..];
                if rest.starts_with('?') {
                    tokens.push(Token {
                        kind: TokenKind::DollarQuestion,
                        offset: start,
                    });
                    i += 2;
                } else if rest.starts_with("event") {
                    tokens.push(Token {
                        kind: TokenKind::DollarEvent,
                        offset: start,
                    });
                    i += 1 + "event".len();
                } else {
                    return Err(Error::Lex {
                        offset: start,
                        message: "expected `$?` or `$event`".into(),
                    });
                }
            }
            '"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::Lex {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(source[i + 1..j].to_owned()),
                    offset: start,
                });
                i = j + 1;
            }
            '@' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
                {
                    j += 1;
                }
                let name = &source[i + 1..j];
                if name.is_empty()
                    || name.starts_with('.')
                    || name.ends_with('.')
                    || name.contains("..")
                {
                    return Err(Error::Lex {
                        offset: start,
                        message: format!("malformed function reference `@{name}`"),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::At(name.to_owned()),
                    offset: start,
                });
                i = j;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut seen_dot = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || (bytes[j] == b'.' && !seen_dot))
                {
                    if bytes[j] == b'.' {
                        // A dot not followed by a digit terminates the number
                        // (e.g. the end of a sentence).
                        if !bytes.get(j + 1).map(u8::is_ascii_digit).unwrap_or(false) {
                            break;
                        }
                        seen_dot = true;
                    }
                    j += 1;
                }
                let text = &source[i..j];
                let value: f64 = text.parse().map_err(|_| Error::Lex {
                    offset: start,
                    message: format!("invalid number `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[i..j].to_owned()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(Error::Lex {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: source.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_program_skeleton() {
        let kinds = kinds("now => @com.gmail.inbox() => notify");
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("now".into()),
                TokenKind::Arrow,
                TokenKind::At("com.gmail.inbox".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Ident("notify".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_measures_and_comparisons() {
        let kinds = kinds("temperature < 60F && size >= 1.5");
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("temperature".into()),
                TokenKind::Lt,
                TokenKind::Number(60.0),
                TokenKind::Ident("F".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("size".into()),
                TokenKind::Geq,
                TokenKind::Number(1.5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_strings_and_dollar_tokens() {
        let kinds = kinds("caption = \"funny cat\" body = $event x = $?");
        assert!(kinds.contains(&TokenKind::Str("funny cat".into())));
        assert!(kinds.contains(&TokenKind::DollarEvent));
        assert!(kinds.contains(&TokenKind::DollarQuestion));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("@.bad").is_err());
        assert!(tokenize("#hash").is_err());
    }

    #[test]
    fn number_followed_by_period_does_not_consume_it() {
        let kinds = kinds("5. ");
        assert_eq!(kinds[0], TokenKind::Number(5.0));
    }
}
