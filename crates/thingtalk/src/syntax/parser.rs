//! Recursive-descent parser for ThingTalk programs, classes, and policies.

use std::sync::Arc;

use crate::ast::{
    Action, AggregationOp, CompareOp, FunctionRef, InputParam, Invocation, JoinParam, Predicate,
    Program, Query, Stream,
};
use crate::class::{ClassDef, FunctionDef, FunctionKind, ParamDef, ParamDirection};
use crate::error::{Error, Result};
use crate::policy::{Policy, PolicyBody};
use crate::types::Type;
use crate::units::{BaseUnit, Unit};
use crate::value::{DateEdge, DateValue, LocationValue, Value};

use super::lexer::{tokenize, Token, TokenKind};

/// Parse a ThingTalk program from its surface syntax.
///
/// # Errors
///
/// Returns a lexical or syntax error describing the first problem found.
///
/// # Examples
///
/// ```
/// let program = thingtalk::syntax::parse_program(
///     "now => @com.gmail.inbox() filter sender == \"Alice\" => notify",
/// )?;
/// assert!(program.has_filter());
/// # Ok::<(), thingtalk::Error>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program> {
    let mut parser = Parser::new(source)?;
    let program = parser.program()?;
    parser.expect_end()?;
    Ok(program)
}

/// Parse a skill-library class definition (Fig. 3 / Fig. 4 syntax).
pub fn parse_class(source: &str) -> Result<ClassDef> {
    let mut parser = Parser::new(source)?;
    let class = parser.class()?;
    parser.expect_end()?;
    Ok(class)
}

/// Parse a TACL access-control policy (Fig. 10 syntax).
pub fn parse_policy(source: &str) -> Result<Policy> {
    let mut parser = Parser::new(source)?;
    let policy = parser.policy()?;
    parser.expect_end()?;
    Ok(policy)
}

/// The ThingTalk parser. Most users should call the free functions
/// [`parse_program`], [`parse_class`] and [`parse_policy`] instead.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Create a parser over the given source.
    pub fn new(source: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(source)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, lookahead: usize) -> &TokenKind {
        let idx = (self.pos + lookahead).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(w) if w == word) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected {what}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<()> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected `{word}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(name) => Ok(name),
            other => Err(Error::parse(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Require that all input has been consumed.
    pub fn expect_end(&mut self) -> Result<()> {
        self.eat(&TokenKind::Semicolon);
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "unexpected trailing input: {:?}",
                self.peek()
            )))
        }
    }

    // ----- programs -----

    /// Parse a full program: `stream [=> query] => action`.
    pub fn program(&mut self) -> Result<Program> {
        let stream = self.stream()?;
        self.expect(&TokenKind::Arrow, "`=>` after the stream clause")?;
        // Either `query => action` or just `action`.
        let checkpoint = self.pos;
        if let Ok(query) = self.query() {
            if self.eat(&TokenKind::Arrow) {
                let action = self.action()?;
                return Ok(Program {
                    stream,
                    query: Some(Arc::new(query)),
                    action,
                });
            }
            // The "query" was actually the action invocation (no second arrow).
            self.pos = checkpoint;
        } else {
            self.pos = checkpoint;
        }
        let action = self.action()?;
        Ok(Program {
            stream,
            query: None,
            action,
        })
    }

    fn stream(&mut self) -> Result<Stream> {
        if self.eat_ident("now") {
            return Ok(Stream::Now);
        }
        if self.eat_ident("attimer") {
            self.expect_ident("time")?;
            self.expect(&TokenKind::Assign, "`=` after `time`")?;
            let time = self.value()?;
            return Ok(Stream::AtTimer { time });
        }
        if self.eat_ident("timer") {
            self.expect_ident("base")?;
            self.expect(&TokenKind::Assign, "`=` after `base`")?;
            let base = self.value()?;
            self.expect_ident("interval")?;
            self.expect(&TokenKind::Assign, "`=` after `interval`")?;
            let interval = self.value()?;
            return Ok(Stream::Timer { base, interval });
        }
        if self.eat_ident("monitor") {
            let query = if self.eat(&TokenKind::LParen) {
                let q = self.query()?;
                self.expect(&TokenKind::RParen, "`)` closing the monitored query")?;
                q
            } else {
                Query::Invocation(self.invocation()?)
            };
            let mut on = Vec::new();
            if matches!(self.peek(), TokenKind::Ident(w) if w == "on")
                && matches!(self.peek_at(1), TokenKind::Ident(w) if w == "new")
            {
                self.advance();
                self.advance();
                on.push(self.ident("output parameter name")?);
                while self.eat(&TokenKind::Comma) {
                    on.push(self.ident("output parameter name")?);
                }
            }
            return Ok(Stream::Monitor {
                query: Arc::new(query),
                on,
            });
        }
        if self.eat_ident("edge") {
            self.expect(&TokenKind::LParen, "`(` after `edge`")?;
            let inner = self.stream()?;
            self.expect(&TokenKind::RParen, "`)` closing the edge stream")?;
            self.expect_ident("on")?;
            let predicate = self.predicate()?;
            return Ok(Stream::EdgeFilter {
                stream: Arc::new(inner),
                predicate,
            });
        }
        Err(Error::parse(format!(
            "expected a stream (`now`, `monitor`, `timer`, `attimer`, `edge`), found {:?}",
            self.peek()
        )))
    }

    /// Parse a query expression (joins are left-associative).
    pub fn query(&mut self) -> Result<Query> {
        let mut lhs = self.query_filtered()?;
        while self.eat_ident("join") {
            let rhs = self.query_filtered()?;
            let mut on = Vec::new();
            if self.eat_ident("on") {
                self.expect(&TokenKind::LParen, "`(` after `on`")?;
                loop {
                    let input = self.ident("input parameter name")?;
                    self.expect(&TokenKind::Assign, "`=` in join parameter passing")?;
                    let output = self.ident("output parameter name")?;
                    on.push(JoinParam { input, output });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "`)` closing join parameters")?;
            }
            lhs = Query::Join {
                lhs: Arc::new(lhs),
                rhs: Arc::new(rhs),
                on,
            };
        }
        Ok(lhs)
    }

    fn query_filtered(&mut self) -> Result<Query> {
        let mut query = self.query_atom()?;
        while self.eat_ident("filter") {
            let predicate = self.predicate()?;
            query = Query::Filter {
                query: Arc::new(query),
                predicate,
            };
        }
        Ok(query)
    }

    fn query_atom(&mut self) -> Result<Query> {
        if self.eat_ident("agg") {
            let op_name = self.ident("aggregation operator")?;
            let op = AggregationOp::from_keyword(&op_name)
                .ok_or_else(|| Error::parse(format!("unknown aggregation operator `{op_name}`")))?;
            let field = if matches!(self.peek(), TokenKind::Ident(w) if w != "of") {
                Some(self.ident("aggregated field")?)
            } else {
                None
            };
            self.expect_ident("of")?;
            self.expect(&TokenKind::LParen, "`(` after `of`")?;
            let query = self.query()?;
            self.expect(&TokenKind::RParen, "`)` closing the aggregated query")?;
            return Ok(Query::Aggregation {
                op,
                field,
                query: Arc::new(query),
            });
        }
        if self.eat(&TokenKind::LParen) {
            let query = self.query()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(query);
        }
        Ok(Query::Invocation(self.invocation()?))
    }

    fn action(&mut self) -> Result<Action> {
        if self.eat_ident("notify") {
            return Ok(Action::Notify);
        }
        Ok(Action::Invocation(Arc::new(self.invocation()?)))
    }

    fn invocation(&mut self) -> Result<Invocation> {
        let qualified = match self.advance() {
            TokenKind::At(name) => name,
            other => {
                return Err(Error::parse(format!(
                    "expected a function reference `@class.function`, found {other:?}"
                )))
            }
        };
        let function = FunctionRef::parse_qualified(&qualified)
            .ok_or_else(|| Error::parse(format!("malformed function reference `@{qualified}`")))?;
        let mut in_params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                let name = self.ident("parameter name")?;
                self.expect(&TokenKind::Assign, "`=` after the parameter name")?;
                let value = self.value()?;
                in_params.push(InputParam { name, value });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)` closing the parameter list")?;
        }
        Ok(Invocation {
            function,
            in_params,
        })
    }

    // ----- predicates -----

    /// Parse a boolean predicate.
    pub fn predicate(&mut self) -> Result<Predicate> {
        self.predicate_or()
    }

    fn predicate_or(&mut self) -> Result<Predicate> {
        let first = self.predicate_and()?;
        let mut items = vec![first];
        while self.eat(&TokenKind::OrOr) {
            items.push(self.predicate_and()?);
        }
        if items.len() == 1 {
            Ok(items.pop().expect("one item"))
        } else {
            Ok(Predicate::Or(items))
        }
    }

    fn predicate_and(&mut self) -> Result<Predicate> {
        let first = self.predicate_unary()?;
        let mut items = vec![first];
        while self.eat(&TokenKind::AndAnd) {
            items.push(self.predicate_unary()?);
        }
        if items.len() == 1 {
            Ok(items.pop().expect("one item"))
        } else {
            Ok(Predicate::And(items))
        }
    }

    fn predicate_unary(&mut self) -> Result<Predicate> {
        if self.eat(&TokenKind::Bang) {
            let inner = self.predicate_unary()?;
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat(&TokenKind::LParen) {
            let inner = self.predicate()?;
            self.expect(&TokenKind::RParen, "`)` closing the predicate")?;
            return Ok(inner);
        }
        if matches!(self.peek(), TokenKind::At(_)) {
            let invocation = self.invocation()?;
            self.expect(&TokenKind::LBrace, "`{` opening the external predicate")?;
            let predicate = self.predicate()?;
            self.expect(&TokenKind::RBrace, "`}` closing the external predicate")?;
            return Ok(Predicate::External {
                invocation,
                predicate: Box::new(predicate),
            });
        }
        if self.eat_ident("true") {
            return Ok(Predicate::True);
        }
        if self.eat_ident("false") {
            return Ok(Predicate::False);
        }
        // An atomic comparison: `param op value`.
        let param = self.ident("output parameter name in filter")?;
        let op = self.compare_op()?;
        let value = self.value()?;
        Ok(Predicate::Atom { param, op, value })
    }

    fn compare_op(&mut self) -> Result<CompareOp> {
        let op = match self.peek().clone() {
            TokenKind::EqEq | TokenKind::Assign => CompareOp::Eq,
            TokenKind::NotEq => CompareOp::Neq,
            TokenKind::Gt => CompareOp::Gt,
            TokenKind::Lt => CompareOp::Lt,
            TokenKind::Geq => CompareOp::Geq,
            TokenKind::Leq => CompareOp::Leq,
            TokenKind::Ident(word) => {
                return CompareOp::from_symbol(&word)
                    .ok_or_else(|| Error::parse(format!("unknown filter operator `{word}`")))
                    .inspect(|_| {
                        self.advance();
                    });
            }
            other => {
                return Err(Error::parse(format!(
                    "expected a comparison operator, found {other:?}"
                )))
            }
        };
        self.advance();
        Ok(op)
    }

    // ----- values -----

    /// Parse a constant value, variable reference, `$event`, or `$?`.
    pub fn value(&mut self) -> Result<Value> {
        if self.eat(&TokenKind::DollarQuestion) {
            return Ok(Value::Undefined);
        }
        if self.eat(&TokenKind::DollarEvent) {
            return Ok(Value::Event);
        }
        if self.eat(&TokenKind::LBracket) {
            let mut items = Vec::new();
            if !self.eat(&TokenKind::RBracket) {
                loop {
                    items.push(self.value()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBracket, "`]` closing the array")?;
            }
            return Ok(Value::Array(items));
        }
        if matches!(self.peek(), TokenKind::Str(_)) {
            return self.string_or_entity();
        }
        let negative = self.eat(&TokenKind::Minus);
        if matches!(self.peek(), TokenKind::Number(_)) {
            return self.numeric_value(negative);
        }
        if negative {
            return Err(Error::parse("expected a number after `-`"));
        }
        // Keyword-like values.
        match self.peek().clone() {
            TokenKind::Ident(word) => match word.as_str() {
                "true" => {
                    self.advance();
                    Ok(Value::Boolean(true))
                }
                "false" => {
                    self.advance();
                    Ok(Value::Boolean(false))
                }
                "enum" => {
                    self.advance();
                    self.expect(&TokenKind::Colon, "`:` after `enum`")?;
                    let variant = self.ident("enum variant")?;
                    Ok(Value::Enum(variant))
                }
                "time" => {
                    self.advance();
                    self.expect(&TokenKind::LParen, "`(` after `time`")?;
                    let hour = self.number("hour")?;
                    self.expect(&TokenKind::Colon, "`:` in the time literal")?;
                    let minute = self.number("minute")?;
                    self.expect(&TokenKind::RParen, "`)` closing the time literal")?;
                    Ok(Value::Time(hour as u8, minute as u8))
                }
                "date" => {
                    self.advance();
                    self.expect(&TokenKind::LParen, "`(` after `date`")?;
                    let negative = self.eat(&TokenKind::Minus);
                    let ms = self.number("milliseconds")?;
                    self.expect(&TokenKind::RParen, "`)` closing the date literal")?;
                    let ms = if negative { -ms } else { ms };
                    Ok(Value::Date(DateValue::Absolute(ms as i64)))
                }
                "location" => {
                    self.advance();
                    self.expect(&TokenKind::LParen, "`(` after `location`")?;
                    let value = if let TokenKind::Str(name) = self.peek().clone() {
                        self.advance();
                        Value::Location(LocationValue::Named(name))
                    } else {
                        let lat_neg = self.eat(&TokenKind::Minus);
                        let latitude = self.number("latitude")?;
                        self.expect(&TokenKind::Comma, "`,` between coordinates")?;
                        let lon_neg = self.eat(&TokenKind::Minus);
                        let longitude = self.number("longitude")?;
                        Value::Location(LocationValue::Coordinates {
                            latitude: if lat_neg { -latitude } else { latitude },
                            longitude: if lon_neg { -longitude } else { longitude },
                        })
                    };
                    self.expect(&TokenKind::RParen, "`)` closing the location")?;
                    Ok(value)
                }
                _ => {
                    if let Some(edge) = DateEdge::from_keyword(&word) {
                        self.advance();
                        return self.date_offset(edge);
                    }
                    // A bare identifier is a variable reference (parameter
                    // passing by name).
                    self.advance();
                    Ok(Value::VarRef(word))
                }
            },
            other => Err(Error::parse(format!("expected a value, found {other:?}"))),
        }
    }

    fn date_offset(&mut self, base: DateEdge) -> Result<Value> {
        let sign = if self.eat(&TokenKind::Plus) {
            1.0
        } else if self.eat(&TokenKind::Minus) {
            -1.0
        } else {
            return Ok(Value::Date(DateValue::Edge(base)));
        };
        let amount = self.number("duration amount")?;
        let unit_name = self.ident("duration unit")?;
        let unit: Unit = unit_name.parse()?;
        if unit.base() != BaseUnit::Millisecond {
            return Err(Error::parse(format!(
                "date offsets must be durations, `{unit_name}` is not"
            )));
        }
        Ok(Value::Date(DateValue::Offset {
            base,
            offset_ms: (sign * unit.to_base(amount)) as i64,
        }))
    }

    fn numeric_value(&mut self, negative: bool) -> Result<Value> {
        let mut amount = self.number("number")?;
        if negative {
            amount = -amount;
        }
        // A unit suffix turns the number into a measure; a currency code into
        // a currency.
        if let TokenKind::Ident(word) = self.peek().clone() {
            if let Ok(unit) = word.parse::<Unit>() {
                self.advance();
                let mut parts = vec![(amount, unit)];
                // Compound measures: `6ft + 3in`.
                while matches!(self.peek(), TokenKind::Plus)
                    && matches!(self.peek_at(1), TokenKind::Number(_))
                    && matches!(self.peek_at(2), TokenKind::Ident(w) if w.parse::<Unit>().is_ok())
                {
                    self.advance();
                    let next_amount = self.number("measure amount")?;
                    let next_unit: Unit = self.ident("unit")?.parse()?;
                    parts.push((next_amount, next_unit));
                }
                return Ok(if parts.len() == 1 {
                    Value::Measure(amount, unit)
                } else {
                    Value::CompoundMeasure(parts)
                });
            }
            if word.len() == 3 && word.chars().all(|c| c.is_ascii_uppercase()) {
                self.advance();
                return Ok(Value::Currency(amount, word));
            }
        }
        Ok(Value::Number(amount))
    }

    fn string_or_entity(&mut self) -> Result<Value> {
        let text = match self.advance() {
            TokenKind::Str(s) => s,
            other => return Err(Error::parse(format!("expected a string, found {other:?}"))),
        };
        if self.eat(&TokenKind::CaretCaret) {
            let kind = self.entity_kind()?;
            let display = if self.eat(&TokenKind::LParen) {
                let display = match self.advance() {
                    TokenKind::Str(s) => s,
                    other => {
                        return Err(Error::parse(format!(
                            "expected a display name string, found {other:?}"
                        )))
                    }
                };
                self.expect(&TokenKind::RParen, "`)` closing the display name")?;
                Some(display)
            } else {
                None
            };
            return Ok(Value::Entity {
                value: text,
                kind,
                display,
            });
        }
        Ok(Value::String(text))
    }

    fn entity_kind(&mut self) -> Result<String> {
        let mut kind = self.ident("entity type")?;
        while self.eat(&TokenKind::Dot) {
            kind.push('.');
            kind.push_str(&self.ident("entity type component")?);
        }
        if self.eat(&TokenKind::Colon) {
            kind.push(':');
            kind.push_str(&self.ident("entity type name")?);
        }
        Ok(kind)
    }

    fn number(&mut self, what: &str) -> Result<f64> {
        match self.advance() {
            TokenKind::Number(n) => Ok(n),
            other => Err(Error::parse(format!("expected {what}, found {other:?}"))),
        }
    }

    // ----- classes -----

    /// Parse a class definition.
    pub fn class(&mut self) -> Result<ClassDef> {
        self.expect_ident("class")?;
        let name = match self.advance() {
            TokenKind::At(name) => name,
            other => {
                return Err(Error::parse(format!(
                    "expected a class name `@...`, found {other:?}"
                )))
            }
        };
        let mut class = ClassDef::new(name);
        while self.eat_ident("extends") {
            match self.advance() {
                TokenKind::At(parent) => class.extends.push(parent),
                other => {
                    return Err(Error::parse(format!(
                        "expected a parent class name, found {other:?}"
                    )))
                }
            }
        }
        self.expect(&TokenKind::LBrace, "`{` opening the class body")?;
        while !self.eat(&TokenKind::RBrace) {
            let function = self.function_def()?;
            class.add_function(function);
        }
        Ok(class)
    }

    fn function_def(&mut self) -> Result<FunctionDef> {
        let monitorable = self.eat_ident("monitorable");
        let list = self.eat_ident("list");
        let kind = if self.eat_ident("query") {
            FunctionKind::Query { monitorable, list }
        } else if self.eat_ident("action") {
            if monitorable || list {
                return Err(Error::parse(
                    "actions cannot be declared monitorable or list",
                ));
            }
            FunctionKind::Action
        } else {
            return Err(Error::parse(format!(
                "expected `query` or `action`, found {:?}",
                self.peek()
            )));
        };
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(` opening the parameter list")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.param_def()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)` closing the parameter list")?;
        }
        self.expect(&TokenKind::Semicolon, "`;` after the function declaration")?;
        Ok(FunctionDef::new(name, kind, params))
    }

    fn param_def(&mut self) -> Result<ParamDef> {
        let direction = if self.eat_ident("in") {
            if self.eat_ident("req") {
                ParamDirection::InReq
            } else if self.eat_ident("opt") {
                ParamDirection::InOpt
            } else {
                return Err(Error::parse("expected `req` or `opt` after `in`"));
            }
        } else if self.eat_ident("out") {
            ParamDirection::Out
        } else {
            return Err(Error::parse(format!(
                "expected `in req`, `in opt`, or `out`, found {:?}",
                self.peek()
            )));
        };
        let name = self.ident("parameter name")?;
        self.expect(&TokenKind::Colon, "`:` before the parameter type")?;
        let ty = self.type_ref()?;
        Ok(ParamDef::new(name, ty, direction))
    }

    fn type_ref(&mut self) -> Result<Type> {
        let name = self.ident("type name")?;
        let ty = match name.as_str() {
            "String" => Type::String,
            "Number" => Type::Number,
            "Boolean" => Type::Boolean,
            "Date" => Type::Date,
            "Time" => Type::Time,
            "Location" => Type::Location,
            "Currency" => Type::Currency,
            "PathName" => Type::PathName,
            "URL" => Type::Url,
            "Picture" => Type::Picture,
            "EmailAddress" => Type::EmailAddress,
            "PhoneNumber" => Type::PhoneNumber,
            "Any" => Type::Any,
            "Enum" => {
                self.expect(&TokenKind::LParen, "`(` after `Enum`")?;
                let mut variants = vec![self.ident("enum variant")?];
                while self.eat(&TokenKind::Comma) {
                    variants.push(self.ident("enum variant")?);
                }
                self.expect(&TokenKind::RParen, "`)` closing the enum variants")?;
                Type::Enum(variants)
            }
            "Measure" => {
                self.expect(&TokenKind::LParen, "`(` after `Measure`")?;
                let unit_name = self.ident("unit")?;
                self.expect(&TokenKind::RParen, "`)` closing the measure unit")?;
                let unit: Unit = unit_name.parse()?;
                Type::Measure(unit.base())
            }
            "Entity" => {
                self.expect(&TokenKind::LParen, "`(` after `Entity`")?;
                let kind = self.entity_kind()?;
                self.expect(&TokenKind::RParen, "`)` closing the entity type")?;
                Type::Entity(kind)
            }
            "Array" => {
                self.expect(&TokenKind::LParen, "`(` after `Array`")?;
                let inner = self.type_ref()?;
                self.expect(&TokenKind::RParen, "`)` closing the array type")?;
                Type::Array(Box::new(inner))
            }
            other => return Err(Error::parse(format!("unknown type `{other}`"))),
        };
        Ok(ty)
    }

    // ----- policies (TACL) -----

    /// Parse a TACL policy: `source-predicate : now => body`.
    pub fn policy(&mut self) -> Result<Policy> {
        let source = self.predicate()?;
        self.expect(&TokenKind::Colon, "`:` after the source predicate")?;
        self.expect_ident("now")?;
        self.expect(&TokenKind::Arrow, "`=>` after `now`")?;
        let invocation = self.invocation()?;
        // Constant input parameters in a policy body are equivalent to
        // equality constraints over those parameters.
        let mut predicate = Predicate::True;
        for param in &invocation.in_params {
            if param.value.is_constant() {
                let atom = Predicate::atom(param.name.clone(), CompareOp::Eq, param.value.clone());
                predicate = if predicate.is_true() {
                    atom
                } else {
                    predicate.and(atom)
                };
            }
        }
        while self.eat_ident("filter") {
            let p = self.predicate()?;
            predicate = if predicate.is_true() {
                p
            } else {
                predicate.and(p)
            };
        }
        // `=> notify` marks a query policy; its absence an action policy.
        let body = if self.eat(&TokenKind::Arrow) {
            self.expect_ident("notify")?;
            PolicyBody::Query {
                function: invocation.function,
                predicate,
            }
        } else {
            PolicyBody::Action {
                function: invocation.function,
                predicate,
            }
        };
        Ok(Policy { source, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_values() {
        let mut p = Parser::new("5GB").unwrap();
        assert_eq!(p.value().unwrap(), Value::Measure(5.0, Unit::Gigabyte));

        let mut p = Parser::new("6ft + 3in").unwrap();
        assert_eq!(
            p.value().unwrap(),
            Value::CompoundMeasure(vec![(6.0, Unit::Foot), (3.0, Unit::Inch)])
        );

        let mut p = Parser::new("25USD").unwrap();
        assert_eq!(p.value().unwrap(), Value::Currency(25.0, "USD".into()));

        let mut p = Parser::new("start_of_week").unwrap();
        assert_eq!(
            p.value().unwrap(),
            Value::Date(DateValue::Edge(DateEdge::StartOfWeek))
        );

        let mut p = Parser::new("now - 7day").unwrap();
        assert_eq!(
            p.value().unwrap(),
            Value::Date(DateValue::Offset {
                base: DateEdge::Now,
                offset_ms: -7 * 86_400_000,
            })
        );

        let mut p = Parser::new("\"shake it off\"^^com.spotify:song(\"Shake It Off\")").unwrap();
        match p.value().unwrap() {
            Value::Entity {
                value,
                kind,
                display,
            } => {
                assert_eq!(value, "shake it off");
                assert_eq!(kind, "com.spotify:song");
                assert_eq!(display.as_deref(), Some("Shake It Off"));
            }
            other => panic!("unexpected value {other:?}"),
        }

        let mut p = Parser::new("[1, 2, 3]").unwrap();
        assert_eq!(
            p.value().unwrap(),
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.0),
                Value::Number(3.0)
            ])
        );

        let mut p = Parser::new("-12.5").unwrap();
        assert_eq!(p.value().unwrap(), Value::Number(-12.5));
    }

    #[test]
    fn parse_class_fig4() {
        let class = parse_class(
            "class @com.dropbox {\
               monitorable query get_space_usage(out used_space : Measure(byte), out total_space : Measure(byte));\
               monitorable list query list_folder(in req folder_name : PathName, in opt order_by : Enum(modified_time_decreasing, modified_time_increasing), out file_name : PathName, out is_folder : Boolean, out modified_time : Date, out file_size : Measure(byte), out full_path : PathName);\
               query open(in req file_name : PathName, out download_url : URL);\
               action move(in req old_name : PathName, in req new_name : PathName);\
             }",
        )
        .unwrap();
        assert_eq!(class.name, "com.dropbox");
        assert_eq!(class.queries().count(), 3);
        assert_eq!(class.actions().count(), 1);
        let list_folder = class.function("list_folder").unwrap();
        assert!(list_folder.kind.is_monitorable());
        assert!(list_folder.kind.is_list());
        assert_eq!(list_folder.output_params().count(), 5);
        let open = class.function("open").unwrap();
        assert!(!open.kind.is_monitorable());
    }

    #[test]
    fn parse_policy_example() {
        let policy = parse_policy(
            "source == \"secretary\" : now => @com.gmail.inbox() filter labels contains \"work\" => notify",
        )
        .unwrap();
        assert!(policy.is_query_policy());
        match &policy.body {
            PolicyBody::Query {
                function,
                predicate,
            } => {
                assert_eq!(function.class, "com.gmail");
                assert_eq!(predicate.atom_count(), 1);
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn parse_action_policy() {
        let policy = parse_policy("true : now => @com.twitter.post(status = $?)").unwrap();
        assert!(!policy.is_query_policy());
    }

    #[test]
    fn parse_external_predicate() {
        let program = parse_program(
            "now => @com.gmail.inbox() filter @org.thingpedia.weather.current(location = location(\"home\")) { temperature > 30C } => notify",
        )
        .unwrap();
        let query = program.query.unwrap();
        let predicates = query.predicates();
        assert_eq!(predicates.len(), 1);
        assert!(matches!(predicates[0], Predicate::External { .. }));
    }

    #[test]
    fn value_display_roundtrip() {
        let values = [
            Value::Measure(5.0, Unit::Gigabyte),
            Value::CompoundMeasure(vec![(6.0, Unit::Foot), (3.0, Unit::Inch)]),
            Value::Currency(25.0, "USD".into()),
            Value::Date(DateValue::Edge(DateEdge::StartOfWeek)),
            Value::Time(8, 30),
            Value::Boolean(true),
            Value::Enum("decreasing".into()),
            Value::string("funny cat"),
            Value::entity("shake it off", "com.spotify:song"),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]),
            Value::Location(LocationValue::Named("home".into())),
            Value::Location(LocationValue::Coordinates {
                latitude: -37.5,
                longitude: 144.9,
            }),
            Value::VarRef("tweet_id".into()),
            Value::Undefined,
            Value::Event,
        ];
        for value in values {
            let printed = value.to_string();
            let mut parser =
                Parser::new(&printed).unwrap_or_else(|e| panic!("failed to lex `{printed}`: {e}"));
            let reparsed = parser
                .value()
                .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
            assert_eq!(value, reparsed, "roundtrip failed for `{printed}`");
        }
    }
}
