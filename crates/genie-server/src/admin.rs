//! The live-update admin surface: decoding `POST /v1/admin/reload` bodies
//! into [`genie::live::SkillDelta`]s and rendering
//! [`genie::live::SwapReport`]s.
//!
//! A reload body names an operation plus its payload; the class definition
//! travels in ThingTalk surface syntax (Fig. 3 of the paper), not a JSON
//! encoding of the AST — the same text a skill developer writes:
//!
//! ```json
//! {
//!   "op": "upsert",
//!   "class": "class @com.lights { action set_power(in req power : Enum(on, off)); }",
//!   "templates": [
//!     {"category": "vp", "function": "set_power", "utterance": "turn $power the lights"}
//!   ],
//!   "mode": "full"
//! }
//! ```
//!
//! ```json
//! {"op": "remove", "class": "com.lights"}
//! ```
//!
//! `"mode"` is optional: `"full"` (default) retrains from scratch — the
//! byte-identical path — while `{"fine_tune": 2}` runs two fine-tuning
//! epochs over the new stream instead.

use genie::live::{RetrainMode, SkillDelta, SwapReport};
use thingpedia::{PhraseCategory, PrimitiveTemplate};

use crate::http::HttpError;
use crate::json::Json;

/// Decode one `POST /v1/admin/reload` body.
pub fn skill_delta_from_json(value: &Json) -> Result<(SkillDelta, RetrainMode), HttpError> {
    let op = required_str(value, "op")?;
    let delta = match op {
        "remove" => SkillDelta::Remove {
            name: required_str(value, "class")?.to_owned(),
        },
        "upsert" => {
            let source = required_str(value, "class")?;
            let class = thingtalk::syntax::parse_class(source)
                .map_err(|error| HttpError::BadRequest(format!("invalid class: {error}")))?;
            let templates = match value.get("templates") {
                None => Vec::new(),
                Some(templates) => {
                    let Some(entries) = templates.as_array() else {
                        return Err(HttpError::BadRequest("`templates` must be an array".into()));
                    };
                    entries
                        .iter()
                        .map(|entry| template_from_json(&class.name, entry))
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            SkillDelta::Upsert { class, templates }
        }
        other => {
            return Err(HttpError::BadRequest(format!(
                "`op` must be \"upsert\" or \"remove\", got \"{other}\""
            )));
        }
    };
    Ok((delta, retrain_mode_from_json(value)?))
}

fn retrain_mode_from_json(value: &Json) -> Result<RetrainMode, HttpError> {
    let Some(mode) = value.get("mode") else {
        return Ok(RetrainMode::Full);
    };
    if mode.as_str() == Some("full") {
        return Ok(RetrainMode::Full);
    }
    if let Some(epochs) = mode.get("fine_tune").and_then(Json::as_f64) {
        if epochs.fract() == 0.0 && (1.0..=1e4).contains(&epochs) {
            return Ok(RetrainMode::FineTune {
                epochs: epochs as usize,
            });
        }
        return Err(HttpError::BadRequest(
            "`mode.fine_tune` must be a positive integer".into(),
        ));
    }
    Err(HttpError::BadRequest(
        "`mode` must be \"full\" or {\"fine_tune\": N}".into(),
    ))
}

fn template_from_json(class: &str, value: &Json) -> Result<PrimitiveTemplate, HttpError> {
    let category = match required_str(value, "category")? {
        "np" => PhraseCategory::NounPhrase,
        "vp" => PhraseCategory::VerbPhrase,
        "wp" => PhraseCategory::WhenPhrase,
        other => {
            return Err(HttpError::BadRequest(format!(
                "`category` must be \"np\", \"vp\" or \"wp\", got \"{other}\""
            )));
        }
    };
    Ok(PrimitiveTemplate::new(
        class,
        required_str(value, "function")?,
        category,
        required_str(value, "utterance")?,
    ))
}

/// Decode the optional `"wait"` flag of a reload body. The default
/// (`false`) queues the rebuild and answers `202 Accepted` immediately;
/// `true` keeps the original synchronous contract and blocks for the swap
/// report.
pub fn wait_from_json(value: &Json) -> bool {
    value.get("wait").and_then(Json::as_bool).unwrap_or(false)
}

fn required_str<'j>(value: &'j Json, field: &str) -> Result<&'j str, HttpError> {
    value
        .get(field)
        .ok_or_else(|| HttpError::BadRequest(format!("missing required field `{field}`")))?
        .as_str()
        .ok_or_else(|| HttpError::BadRequest(format!("`{field}` must be a string")))
}

/// Render a completed reload as the `POST /v1/admin/reload` response body.
pub fn render_swap_report(report: &SwapReport) -> String {
    format!(
        "{{\"world_version\": {}, \"total_batches\": {}, \"reused_batches\": {}, \
         \"changed_pool_entries\": {}, \"full_rebuild\": {}, \"emitted_examples\": {}, \
         \"fine_tuned\": {}, \"swap_latency_us\": {}}}",
        report.version,
        report.total_batches,
        report.reused_batches,
        report.changed_pool_entries,
        report.full_rebuild,
        report.emitted_examples,
        report.fine_tuned,
        report.swap_latency_us,
    )
}

/// Render the `202 Accepted` body for a queued asynchronous reload.
/// `accepted_version` is the serving world version at acceptance — the
/// caller polls `/v1/admin/version` (or `/v1/admin/reload/status`) for
/// `world_version > accepted_version` to observe the swap.
pub fn render_accepted(accepted_version: u64) -> String {
    format!("{{\"status\": \"accepted\", \"accepted_version\": {accepted_version}}}")
}

/// Render the `GET /v1/admin/version` body.
pub fn render_version(world_version: u64, live: bool) -> String {
    format!("{{\"world_version\": {world_version}, \"live\": {live}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_remove_and_upsert_deltas() {
        let remove = Json::parse(r#"{"op": "remove", "class": "com.dropbox"}"#).unwrap();
        let (delta, mode) = skill_delta_from_json(&remove).unwrap();
        assert!(matches!(delta, SkillDelta::Remove { ref name } if name == "com.dropbox"));
        assert_eq!(mode, RetrainMode::Full);

        let upsert = Json::parse(
            r#"{
                "op": "upsert",
                "class": "class @com.lights { action set_power(in req power : Enum(on, off)); }",
                "templates": [
                    {"category": "vp", "function": "set_power", "utterance": "turn $power the lights"}
                ],
                "mode": {"fine_tune": 2}
            }"#,
        )
        .unwrap();
        let (delta, mode) = skill_delta_from_json(&upsert).unwrap();
        let SkillDelta::Upsert { class, templates } = delta else {
            panic!("expected an upsert");
        };
        assert_eq!(class.name, "com.lights");
        assert!(class.function("set_power").is_ok());
        assert_eq!(templates.len(), 1);
        assert_eq!(templates[0].class, "com.lights");
        assert_eq!(templates[0].category, PhraseCategory::VerbPhrase);
        assert_eq!(mode, RetrainMode::FineTune { epochs: 2 });
    }

    #[test]
    fn malformed_reload_bodies_are_typed_400s() {
        for body in [
            r#"{}"#,
            r#"{"op": "explode", "class": "x"}"#,
            r#"{"op": "remove"}"#,
            r#"{"op": "upsert", "class": "not thingtalk"}"#,
            r#"{"op": "upsert", "class": "class @a { }", "templates": [{"category": "zp", "function": "f", "utterance": "u"}]}"#,
            r#"{"op": "remove", "class": "x", "mode": "fast"}"#,
            r#"{"op": "remove", "class": "x", "mode": {"fine_tune": 0}}"#,
        ] {
            let value = Json::parse(body).unwrap();
            let error = skill_delta_from_json(&value).unwrap_err();
            assert_eq!(error.status(), Some((400, "Bad Request")), "body `{body}`");
        }
    }

    #[test]
    fn rendered_reports_are_valid_json() {
        let report = SwapReport {
            version: 3,
            total_batches: 12,
            reused_batches: 9,
            changed_pool_entries: 4,
            full_rebuild: false,
            emitted_examples: 180,
            fine_tuned: false,
            swap_latency_us: 12345,
        };
        let body = render_swap_report(&report);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("world_version").unwrap().as_f64(), Some(3.0));
        assert_eq!(parsed.get("reused_batches").unwrap().as_f64(), Some(9.0));
        let version = render_version(7, true);
        let parsed = Json::parse(&version).unwrap();
        assert_eq!(parsed.get("world_version").unwrap().as_f64(), Some(7.0));
    }
}
