//! The live-update admin surface: decoding `POST /v1/admin/reload` bodies
//! into [`genie::live::SkillDelta`]s and rendering
//! [`genie::live::SwapReport`]s.
//!
//! A reload body names an operation plus its payload; the class definition
//! travels in ThingTalk surface syntax (Fig. 3 of the paper), not a JSON
//! encoding of the AST — the same text a skill developer writes:
//!
//! ```json
//! {
//!   "op": "upsert",
//!   "class": "class @com.lights { action set_power(in req power : Enum(on, off)); }",
//!   "templates": [
//!     {"category": "vp", "function": "set_power", "utterance": "turn $power the lights"}
//!   ],
//!   "mode": "full"
//! }
//! ```
//!
//! ```json
//! {"op": "remove", "class": "com.lights"}
//! ```
//!
//! `"mode"` is optional: `"full"` (default) retrains from scratch — the
//! byte-identical path — while `{"fine_tune": 2}` runs two fine-tuning
//! epochs over the new stream instead.
//!
//! The optional `"functions"` array carries natural-language metadata the
//! ThingTalk source cannot express — canonical phrases, descriptions, the
//! understandability rating, and per-parameter canonicals:
//!
//! ```json
//! {"functions": [{"name": "set_power", "canonical": "switch the lights",
//!                 "params": [{"name": "power", "canonical": "state"}]}]}
//! ```
//!
//! The delta feed (`GET /v1/admin/deltas`) always renders it so a follower
//! reproduces the primary's library — and therefore its weights digest —
//! field for field.

use genie::live::{JournalRecord, RetrainMode, SkillDelta, SwapReport};
use thingpedia::{PhraseCategory, PrimitiveTemplate};

use crate::http::HttpError;
use crate::json::Json;

/// Decode one `POST /v1/admin/reload` body.
pub fn skill_delta_from_json(value: &Json) -> Result<(SkillDelta, RetrainMode), HttpError> {
    let op = required_str(value, "op")?;
    let delta = match op {
        "remove" => SkillDelta::Remove {
            name: required_str(value, "class")?.to_owned(),
        },
        "upsert" => {
            let source = required_str(value, "class")?;
            let mut class = thingtalk::syntax::parse_class(source)
                .map_err(|error| HttpError::BadRequest(format!("invalid class: {error}")))?;
            // Presentation metadata is not part of the parseable source, so
            // it rides alongside — the journal replicates it field-for-field.
            if let Some(display_name) = value.get("display_name").and_then(Json::as_str) {
                class = class.with_display_name(display_name);
            }
            if let Some(domain) = value.get("domain").and_then(Json::as_str) {
                class = class.with_domain(domain);
            }
            if let Some(functions) = value.get("functions") {
                apply_function_metadata(&mut class, functions)?;
            }
            let templates = match value.get("templates") {
                None => Vec::new(),
                Some(templates) => {
                    let Some(entries) = templates.as_array() else {
                        return Err(HttpError::BadRequest("`templates` must be an array".into()));
                    };
                    entries
                        .iter()
                        .map(|entry| template_from_json(&class.name, entry))
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            SkillDelta::Upsert { class, templates }
        }
        other => {
            return Err(HttpError::BadRequest(format!(
                "`op` must be \"upsert\" or \"remove\", got \"{other}\""
            )));
        }
    };
    Ok((delta, retrain_mode_from_json(value)?))
}

/// Patch the optional `"functions"` metadata array of an upsert body onto a
/// freshly parsed class. Each entry names a declared function and overrides
/// its natural-language fields; unknown function or parameter names are
/// rejected rather than silently dropped.
fn apply_function_metadata(
    class: &mut thingtalk::class::ClassDef,
    functions: &Json,
) -> Result<(), HttpError> {
    let Some(entries) = functions.as_array() else {
        return Err(HttpError::BadRequest("`functions` must be an array".into()));
    };
    for entry in entries {
        let name = required_str(entry, "name")?;
        let function = class.functions.get_mut(name).ok_or_else(|| {
            HttpError::BadRequest(format!("metadata for undeclared function `{name}`"))
        })?;
        if let Some(canonical) = entry.get("canonical").and_then(Json::as_str) {
            function.canonical = canonical.to_owned();
        }
        if let Some(description) = entry.get("description").and_then(Json::as_str) {
            function.description = description.to_owned();
        }
        if let Some(easy) = entry.get("easy_to_understand").and_then(Json::as_bool) {
            function.easy_to_understand = easy;
        }
        if let Some(params) = entry.get("params") {
            let Some(params) = params.as_array() else {
                return Err(HttpError::BadRequest(
                    "`functions[].params` must be an array".into(),
                ));
            };
            for param_entry in params {
                let param_name = required_str(param_entry, "name")?;
                let canonical = required_str(param_entry, "canonical")?;
                let param = function
                    .params
                    .iter_mut()
                    .find(|param| param.name == param_name)
                    .ok_or_else(|| {
                        HttpError::BadRequest(format!(
                            "metadata for undeclared parameter `{name}.{param_name}`"
                        ))
                    })?;
                param.canonical = canonical.to_owned();
            }
        }
    }
    Ok(())
}

fn retrain_mode_from_json(value: &Json) -> Result<RetrainMode, HttpError> {
    let Some(mode) = value.get("mode") else {
        return Ok(RetrainMode::Full);
    };
    if mode.as_str() == Some("full") {
        return Ok(RetrainMode::Full);
    }
    if let Some(epochs) = mode.get("fine_tune").and_then(Json::as_f64) {
        if epochs.fract() == 0.0 && (1.0..=1e4).contains(&epochs) {
            return Ok(RetrainMode::FineTune {
                epochs: epochs as usize,
            });
        }
        return Err(HttpError::BadRequest(
            "`mode.fine_tune` must be a positive integer".into(),
        ));
    }
    Err(HttpError::BadRequest(
        "`mode` must be \"full\" or {\"fine_tune\": N}".into(),
    ))
}

fn template_from_json(class: &str, value: &Json) -> Result<PrimitiveTemplate, HttpError> {
    let category = match required_str(value, "category")? {
        "np" => PhraseCategory::NounPhrase,
        "vp" => PhraseCategory::VerbPhrase,
        "wp" => PhraseCategory::WhenPhrase,
        other => {
            return Err(HttpError::BadRequest(format!(
                "`category` must be \"np\", \"vp\" or \"wp\", got \"{other}\""
            )));
        }
    };
    let mut template = PrimitiveTemplate::new(
        class,
        required_str(value, "function")?,
        category,
        required_str(value, "utterance")?,
    );
    if let Some(presets) = value.get("presets") {
        let Some(entries) = presets.as_array() else {
            return Err(HttpError::BadRequest("`presets` must be an array".into()));
        };
        for entry in entries {
            let name = required_str(entry, "param")?;
            let text = required_str(entry, "value")?;
            let mut parser = thingtalk::syntax::Parser::new(text).map_err(|error| {
                HttpError::BadRequest(format!("preset value `{text}`: {error}"))
            })?;
            let value = parser.value().map_err(|error| {
                HttpError::BadRequest(format!("preset value `{text}`: {error}"))
            })?;
            template = template.with_preset(name, value);
        }
    }
    Ok(template)
}

/// Decode the optional `"wait"` flag of a reload body. The default
/// (`false`) queues the rebuild and answers `202 Accepted` immediately;
/// `true` keeps the original synchronous contract and blocks for the swap
/// report.
pub fn wait_from_json(value: &Json) -> bool {
    value.get("wait").and_then(Json::as_bool).unwrap_or(false)
}

fn required_str<'j>(value: &'j Json, field: &str) -> Result<&'j str, HttpError> {
    value
        .get(field)
        .ok_or_else(|| HttpError::BadRequest(format!("missing required field `{field}`")))?
        .as_str()
        .ok_or_else(|| HttpError::BadRequest(format!("`{field}` must be a string")))
}

/// Render a completed reload as the `POST /v1/admin/reload` response body.
pub fn render_swap_report(report: &SwapReport) -> String {
    format!(
        "{{\"world_version\": {}, \"total_batches\": {}, \"reused_batches\": {}, \
         \"changed_pool_entries\": {}, \"full_rebuild\": {}, \"emitted_examples\": {}, \
         \"fine_tuned\": {}, \"swap_latency_us\": {}, \"persisted\": {}}}",
        report.version,
        report.total_batches,
        report.reused_batches,
        report.changed_pool_entries,
        report.full_rebuild,
        report.emitted_examples,
        report.fine_tuned,
        report.swap_latency_us,
        report.persisted,
    )
}

/// Render the `202 Accepted` body for a queued asynchronous reload.
/// `accepted_version` is the serving world version at acceptance — the
/// caller polls `/v1/admin/version` (or `/v1/admin/reload/status`) for
/// `world_version > accepted_version` to observe the swap.
pub fn render_accepted(accepted_version: u64) -> String {
    format!("{{\"status\": \"accepted\", \"accepted_version\": {accepted_version}}}")
}

/// Render the `GET /v1/admin/version` body. `weights_digest` is the
/// serving model's FNV-1a weight digest — the byte-identity proxy a
/// replica compares against its primary.
pub fn render_version(world_version: u64, live: bool, weights_digest: u64) -> String {
    format!(
        "{{\"world_version\": {world_version}, \"live\": {live}, \
         \"weights_digest\": \"{weights_digest:#018x}\"}}"
    )
}

/// Render the `GET /readyz` body. A degraded follower still serves parses
/// from its last world, but reports itself not ready (and the route
/// answers `503`) so load balancers can prefer healthy replicas.
pub fn render_ready(
    role: &str,
    ready: bool,
    world_version: u64,
    replication_lag: u64,
    degraded: bool,
) -> String {
    format!(
        "{{\"status\": {}, \"role\": {}, \"ready\": {ready}, \
         \"world_version\": {world_version}, \"replication_lag\": {replication_lag}, \
         \"degraded\": {degraded}}}",
        crate::json::escape(if ready { "ok" } else { "degraded" }),
        crate::json::escape(role),
    )
}

/// Render the `GET /v1/admin/deltas?since=V` body: the primary's effective
/// journal history after `since`, each record in exactly the shape
/// [`skill_delta_from_json`] decodes (plus its version and content digest),
/// so a follower replays them through the same codec a client reloads with.
pub fn render_deltas(world_version: u64, journal_start: u64, records: &[JournalRecord]) -> String {
    let mut body = format!(
        "{{\"world_version\": {world_version}, \"journal_start\": {journal_start}, \
         \"records\": ["
    );
    for (index, record) in records.iter().enumerate() {
        if index > 0 {
            body.push_str(", ");
        }
        render_record(&mut body, record);
    }
    body.push_str("]}");
    body
}

fn render_record(out: &mut String, record: &JournalRecord) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"version\": {}, \"digest\": \"{:#018x}\", \"mode\": {}, ",
        record.version,
        record.digest,
        match record.mode {
            RetrainMode::Full => "\"full\"".to_owned(),
            RetrainMode::FineTune { epochs } => format!("{{\"fine_tune\": {epochs}}}"),
        },
    );
    match &record.delta {
        SkillDelta::Remove { name } => {
            let _ = write!(
                out,
                "\"op\": \"remove\", \"class\": {}}}",
                crate::json::escape(name)
            );
        }
        SkillDelta::Upsert { class, templates } => {
            let _ = write!(
                out,
                "\"op\": \"upsert\", \"class\": {}, \"display_name\": {}, \"domain\": {}, \
                 \"functions\": [",
                crate::json::escape(&class.to_string()),
                crate::json::escape(&class.display_name),
                crate::json::escape(&class.domain),
            );
            // The ThingTalk source only carries declarations; the canonical
            // phrases and descriptions that drive synthesis ride alongside,
            // or a follower would re-derive defaults and drift off the
            // primary's weights digest.
            for (index, function) in class.functions.values().enumerate() {
                if index > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"name\": {}, \"canonical\": {}, \"description\": {}, \
                     \"easy_to_understand\": {}, \"params\": [",
                    crate::json::escape(&function.name),
                    crate::json::escape(&function.canonical),
                    crate::json::escape(&function.description),
                    function.easy_to_understand,
                );
                for (param_index, param) in function.params.iter().enumerate() {
                    if param_index > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"name\": {}, \"canonical\": {}}}",
                        crate::json::escape(&param.name),
                        crate::json::escape(&param.canonical),
                    );
                }
                out.push_str("]}");
            }
            out.push_str("], \"templates\": [");
            for (index, template) in templates.iter().enumerate() {
                if index > 0 {
                    out.push_str(", ");
                }
                render_template(out, template);
            }
            out.push_str("]}");
        }
    }
}

fn render_template(out: &mut String, template: &PrimitiveTemplate) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"category\": \"{}\", \"function\": {}, \"utterance\": {}, \"presets\": [",
        template.category.label(),
        crate::json::escape(&template.function),
        crate::json::escape(&template.utterance),
    );
    for (index, (name, value)) in template.preset_params.iter().enumerate() {
        if index > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"param\": {}, \"value\": {}}}",
            crate::json::escape(name),
            crate::json::escape(&value.to_string()),
        );
    }
    out.push_str("]}");
}

/// One record of a primary's delta feed, as decoded by a follower.
pub struct DeltaFeedRecord {
    /// The world version this record produces.
    pub version: u64,
    /// The delta to apply.
    pub delta: SkillDelta,
    /// How to retrain.
    pub mode: RetrainMode,
}

/// A decoded `GET /v1/admin/deltas` response.
pub struct DeltaFeed {
    /// The primary's serving world version.
    pub world_version: u64,
    /// The primary's first effectively journaled version (0 when its
    /// journal is empty) — a follower older than this must resync.
    pub journal_start: u64,
    /// The effective records after `since`, in version order.
    pub records: Vec<DeltaFeedRecord>,
}

/// Decode a primary's `GET /v1/admin/deltas` response body.
pub fn delta_feed_from_json(value: &Json) -> Result<DeltaFeed, HttpError> {
    let world_version = required_u64(value, "world_version")?;
    let journal_start = required_u64(value, "journal_start")?;
    let records = value
        .get("records")
        .and_then(Json::as_array)
        .ok_or_else(|| HttpError::BadRequest("`records` must be an array".into()))?;
    let records = records
        .iter()
        .map(|entry| {
            let version = required_u64(entry, "version")?;
            let (delta, mode) = skill_delta_from_json(entry)?;
            Ok(DeltaFeedRecord {
                version,
                delta,
                mode,
            })
        })
        .collect::<Result<Vec<_>, HttpError>>()?;
    Ok(DeltaFeed {
        world_version,
        journal_start,
        records,
    })
}

fn required_u64(value: &Json, field: &str) -> Result<u64, HttpError> {
    let number = value
        .get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| HttpError::BadRequest(format!("`{field}` must be a number")))?;
    if number.fract() != 0.0 || !(0.0..=1.8e19).contains(&number) {
        return Err(HttpError::BadRequest(format!(
            "`{field}` must be a non-negative integer, got {number}"
        )));
    }
    Ok(number as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_remove_and_upsert_deltas() {
        let remove = Json::parse(r#"{"op": "remove", "class": "com.dropbox"}"#).unwrap();
        let (delta, mode) = skill_delta_from_json(&remove).unwrap();
        assert!(matches!(delta, SkillDelta::Remove { ref name } if name == "com.dropbox"));
        assert_eq!(mode, RetrainMode::Full);

        let upsert = Json::parse(
            r#"{
                "op": "upsert",
                "class": "class @com.lights { action set_power(in req power : Enum(on, off)); }",
                "templates": [
                    {"category": "vp", "function": "set_power", "utterance": "turn $power the lights"}
                ],
                "mode": {"fine_tune": 2}
            }"#,
        )
        .unwrap();
        let (delta, mode) = skill_delta_from_json(&upsert).unwrap();
        let SkillDelta::Upsert { class, templates } = delta else {
            panic!("expected an upsert");
        };
        assert_eq!(class.name, "com.lights");
        assert!(class.function("set_power").is_ok());
        assert_eq!(templates.len(), 1);
        assert_eq!(templates[0].class, "com.lights");
        assert_eq!(templates[0].category, PhraseCategory::VerbPhrase);
        assert_eq!(mode, RetrainMode::FineTune { epochs: 2 });
    }

    #[test]
    fn malformed_reload_bodies_are_typed_400s() {
        for body in [
            r#"{}"#,
            r#"{"op": "explode", "class": "x"}"#,
            r#"{"op": "remove"}"#,
            r#"{"op": "upsert", "class": "not thingtalk"}"#,
            r#"{"op": "upsert", "class": "class @a { }", "templates": [{"category": "zp", "function": "f", "utterance": "u"}]}"#,
            r#"{"op": "remove", "class": "x", "mode": "fast"}"#,
            r#"{"op": "remove", "class": "x", "mode": {"fine_tune": 0}}"#,
        ] {
            let value = Json::parse(body).unwrap();
            let error = skill_delta_from_json(&value).unwrap_err();
            assert_eq!(error.status(), Some((400, "Bad Request")), "body `{body}`");
        }
    }

    #[test]
    fn rendered_reports_are_valid_json() {
        let report = SwapReport {
            version: 3,
            total_batches: 12,
            reused_batches: 9,
            changed_pool_entries: 4,
            full_rebuild: false,
            emitted_examples: 180,
            fine_tuned: false,
            swap_latency_us: 12345,
            persisted: true,
        };
        let body = render_swap_report(&report);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("world_version").unwrap().as_f64(), Some(3.0));
        assert_eq!(parsed.get("reused_batches").unwrap().as_f64(), Some(9.0));
        let version = render_version(7, true, 0xDEAD_BEEF);
        let parsed = Json::parse(&version).unwrap();
        assert_eq!(parsed.get("world_version").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            parsed.get("weights_digest").unwrap().as_str(),
            Some("0x00000000deadbeef")
        );
        let ready = render_ready("follower", false, 4, 2, true);
        let parsed = Json::parse(&ready).unwrap();
        assert_eq!(parsed.get("role").unwrap().as_str(), Some("follower"));
        assert_eq!(parsed.get("ready").unwrap().as_bool(), Some(false));
        assert_eq!(parsed.get("replication_lag").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn the_delta_feed_round_trips_through_its_own_codec() {
        let mut class = thingtalk::syntax::parse_class(
            "class @com.test.lights { action set_power(in req power : Enum(on, off)); }",
        )
        .unwrap()
        .with_display_name("Test Lights")
        .with_domain("home");
        // Custom NL metadata the source syntax cannot carry — the feed must
        // transport it or a follower synthesizes from different canonicals.
        {
            let function = class.functions.get_mut("set_power").unwrap();
            function.canonical = "switch the lights".to_owned();
            function.description = "Turn the test lights on or off.".to_owned();
            function.easy_to_understand = false;
            function.params[0].canonical = "state".to_owned();
        }
        let template = PrimitiveTemplate::new(
            "com.test.lights",
            "set_power",
            PhraseCategory::VerbPhrase,
            "flip the \"quoted\" lights $power",
        )
        .with_preset("power", thingtalk::Value::Enum("on".to_owned()));
        let records = vec![
            JournalRecord {
                version: 2,
                delta: SkillDelta::Upsert {
                    class,
                    templates: vec![template],
                },
                mode: RetrainMode::FineTune { epochs: 3 },
                digest: 0x1234,
            },
            JournalRecord {
                version: 3,
                delta: SkillDelta::Remove {
                    name: "com.test.lights".to_owned(),
                },
                mode: RetrainMode::Full,
                digest: 0x5678,
            },
        ];
        let body = render_deltas(9, 2, &records);
        let feed = delta_feed_from_json(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(feed.world_version, 9);
        assert_eq!(feed.journal_start, 2);
        assert_eq!(feed.records.len(), 2);
        assert_eq!(feed.records[0].version, 2);
        assert_eq!(feed.records[0].mode, RetrainMode::FineTune { epochs: 3 });
        let SkillDelta::Upsert { class, templates } = &feed.records[0].delta else {
            panic!("expected an upsert");
        };
        assert_eq!(class.name, "com.test.lights");
        assert_eq!(class.display_name, "Test Lights");
        assert_eq!(class.domain, "home");
        let function = &class.functions["set_power"];
        assert_eq!(function.canonical, "switch the lights");
        assert_eq!(function.description, "Turn the test lights on or off.");
        assert!(!function.easy_to_understand);
        assert_eq!(function.params[0].canonical, "state");
        assert_eq!(templates.len(), 1);
        assert_eq!(templates[0].utterance, "flip the \"quoted\" lights $power");
        assert_eq!(templates[0].preset_params.len(), 1);
        assert!(matches!(
            feed.records[1].delta,
            SkillDelta::Remove { ref name } if name == "com.test.lights"
        ));

        // The round-tripped record re-encodes to the identical journal
        // content digest — the fidelity the replication protocol rests on.
        let original = genie::live::journal::content_digest(2, &records[0].delta, records[0].mode);
        let decoded =
            genie::live::journal::content_digest(2, &feed.records[0].delta, feed.records[0].mode);
        assert_eq!(
            original, decoded,
            "HTTP transport must not lose delta fidelity"
        );
    }
}
