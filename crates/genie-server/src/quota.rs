//! Per-client token-bucket quotas.
//!
//! One bucket per client key (the peer IP): `burst` tokens of capacity,
//! refilled continuously at `per_sec`. A request costs one token (a batch
//! costs one per contained request); an empty bucket is a typed rejection
//! carrying the retry-after hint the HTTP layer turns into a `429` with a
//! `Retry-After` header. Time is passed in explicitly, so the refill
//! arithmetic is unit-testable without sleeping.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Bound on tracked client buckets; beyond it, fully-refilled buckets are
/// evicted first (they carry no state a fresh bucket wouldn't have).
const MAX_TRACKED_CLIENTS: usize = 4096;

/// A quota rejection: how long until the bucket can afford the request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaExceeded {
    /// Seconds until `cost` tokens will have refilled.
    pub retry_after_secs: f64,
}

struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// The bucket table. Disabled quotas are represented by not constructing
/// one ([`crate::ServerConfig::quota_burst`] = 0).
pub struct Quota {
    burst: f64,
    per_sec: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl Quota {
    /// A quota of `burst` tokens refilling at `per_sec` tokens per second.
    pub fn new(burst: u32, per_sec: f64) -> Quota {
        Quota {
            burst: f64::from(burst),
            per_sec,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Take `cost` tokens from `key`'s bucket at time `now`.
    pub fn try_take(&self, key: IpAddr, cost: f64, now: Instant) -> Result<(), QuotaExceeded> {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if buckets.len() >= MAX_TRACKED_CLIENTS && !buckets.contains_key(&key) {
            // Evict refilled buckets; a full bucket equals no bucket.
            let burst = self.burst;
            let per_sec = self.per_sec;
            buckets.retain(|_, bucket| {
                let elapsed = now.duration_since(bucket.refreshed).as_secs_f64();
                (bucket.tokens + elapsed * per_sec) < burst
            });
            if buckets.len() >= MAX_TRACKED_CLIENTS {
                // Every tracked client is actively draining its bucket;
                // shed the newcomer with the worst-case hint instead of
                // growing without bound.
                return Err(QuotaExceeded {
                    retry_after_secs: cost / self.per_sec.max(f64::MIN_POSITIVE),
                });
            }
        }
        let bucket = buckets.entry(key).or_insert(Bucket {
            tokens: self.burst,
            refreshed: now,
        });
        let elapsed = now.duration_since(bucket.refreshed).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.per_sec).min(self.burst);
        bucket.refreshed = now;
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            Ok(())
        } else {
            Err(QuotaExceeded {
                retry_after_secs: (cost - bucket.tokens) / self.per_sec.max(f64::MIN_POSITIVE),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn burst_then_reject_then_refill() {
        let quota = Quota::new(2, 10.0);
        let t0 = Instant::now();
        assert!(quota.try_take(ip(1), 1.0, t0).is_ok());
        assert!(quota.try_take(ip(1), 1.0, t0).is_ok());
        let rejected = quota.try_take(ip(1), 1.0, t0).unwrap_err();
        // 1 token at 10/sec: back in business in 0.1s.
        assert!((rejected.retry_after_secs - 0.1).abs() < 1e-9);
        // 150ms later, one token has refilled.
        let t1 = t0 + Duration::from_millis(150);
        assert!(quota.try_take(ip(1), 1.0, t1).is_ok());
        assert!(quota.try_take(ip(1), 1.0, t1).is_err());
    }

    #[test]
    fn clients_have_independent_buckets() {
        let quota = Quota::new(1, 1.0);
        let t0 = Instant::now();
        assert!(quota.try_take(ip(1), 1.0, t0).is_ok());
        assert!(quota.try_take(ip(1), 1.0, t0).is_err());
        assert!(quota.try_take(ip(2), 1.0, t0).is_ok());
    }

    #[test]
    fn batch_cost_drains_proportionally() {
        let quota = Quota::new(10, 1.0);
        let t0 = Instant::now();
        assert!(quota.try_take(ip(1), 8.0, t0).is_ok());
        let rejected = quota.try_take(ip(1), 8.0, t0).unwrap_err();
        assert!((rejected.retry_after_secs - 6.0).abs() < 1e-9);
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let quota = Quota::new(3, 100.0);
        let t0 = Instant::now();
        assert!(quota.try_take(ip(1), 3.0, t0).is_ok());
        // A long quiet period refills to the burst cap, not beyond.
        let later = t0 + Duration::from_secs(3600);
        assert!(quota.try_take(ip(1), 3.0, later).is_ok());
        assert!(quota.try_take(ip(1), 1.0, later).is_err());
    }

    #[test]
    fn the_bucket_table_is_bounded() {
        let quota = Quota::new(1, 1000.0);
        let t0 = Instant::now();
        for client in 0..(MAX_TRACKED_CLIENTS + 64) {
            let key = IpAddr::from([10, (client >> 16) as u8, (client >> 8) as u8, client as u8]);
            // Earlier clients' buckets refill fast, so they are evictable
            // by the time the table fills; no request ever panics.
            let _ = quota.try_take(key, 1.0, t0 + Duration::from_micros(client as u64 * 2000));
        }
        let buckets = quota.buckets.lock().unwrap();
        assert!(buckets.len() <= MAX_TRACKED_CLIENTS);
    }
}
