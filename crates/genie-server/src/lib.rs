//! # genie-server
//!
//! A socket-level HTTP/JSON serving front-end over [`genie::GenieEngine`],
//! built entirely on the standard library (`TcpListener` + threads) and the
//! engine's own deterministic batch machinery — no external HTTP stack.
//!
//! ## Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /v1/parse` | One utterance; coalesced into a micro-batch |
//! | `POST /v1/parse_batch` | A client-assembled batch; straight to the engine |
//! | `POST /v1/admin/reload` | Apply a skill delta on a background builder: `202 Accepted` (or `{"wait": true}` for the swap report) ([`GenieServer::bind_live`] only) |
//! | `GET /v1/admin/reload/status` | The reload runner's state and last outcome |
//! | `GET /v1/admin/version` | The serving world-snapshot version and `weights_digest` |
//! | `GET /v1/admin/deltas?since=V` | The effective delta-journal history after `V` — the replication feed followers poll |
//! | `GET /v1/admin/bundle` | The sealed world bundle, verbatim — the follower resync artifact (durable worlds only) |
//! | `GET /metrics` | Flat-text counters (server + engine + world swaps + supervision + replication) |
//! | `GET /healthz` | Liveness |
//! | `GET /readyz` | Readiness: role, world version, replication lag; `503` while a follower is degraded |
//!
//! ## The determinism contract
//!
//! Every response body is a pure function of `(model, library, policies,
//! request)` — never of load, timing, worker count, or which requests
//! happened to share a coalesced micro-batch. The end-to-end tests and the
//! `serving_e2e` bench enforce this by rendering in-process results through
//! the *same* [`api`] functions and asserting byte identity with what came
//! over the socket.
//!
//! ## Quick start
//!
//! ```no_run
//! use genie::EngineBuilder;
//! use genie_server::{GenieServer, ServerConfig};
//!
//! # fn main() -> genie::GenieResult<()> {
//! # let library = thingpedia::Thingpedia::new();
//! let engine = EngineBuilder::new()
//!     .thingpedia(library)
//!     .model_from_snapshot("model.luinet-snapshot")? // fast cold start
//!     .build()?;
//! let config = ServerConfig::builder()
//!     .addr("127.0.0.1:8400")
//!     .quota(64, 16.0) // 64-token burst, 16 req/s refill per client
//!     .build()?;
//! let mut server = GenieServer::bind(engine, config)?;
//! println!("serving on http://{}", server.local_addr());
//! // … serve until told otherwise, then drain in-flight work:
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

// The request path must never take the process down on hostile input: no
// unsupervised unwraps/expects outside test code. Fallible paths use typed
// errors; lock poisoning recovers via `unwrap_or_else(|e| e.into_inner())`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admin;
pub mod api;
pub mod coalescer;
pub mod config;
pub mod error;
pub mod follower;
pub mod http;
pub mod json;
pub mod metrics;
pub mod quota;
pub mod reload;
mod server;

pub use config::{ServerConfig, ServerConfigBuilder};
pub use error::ServerError;
pub use follower::{FollowerConfig, FollowerConfigBuilder};
pub use server::GenieServer;
