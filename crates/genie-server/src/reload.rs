//! The background reload runner: crash-safe live reloads off the acceptor
//! threads.
//!
//! `POST /v1/admin/reload` used to run the whole rebuild (synthesis +
//! retraining) on the acceptor thread that received it, holding a
//! connection slot hostage for the full retrain duration. Reloads now run
//! on one dedicated builder thread:
//!
//! * the default reply is a `202 Accepted` the moment the job is queued;
//!   progress is observable at `GET /v1/admin/reload/status`;
//! * `{"wait": true}` keeps the old synchronous contract — the caller
//!   blocks until the swap report (or typed error) is ready — but the
//!   rebuild still happens on the builder, so the acceptor is only
//!   *waiting*, never *working*, and shutdown can drain it like any
//!   blocked request;
//! * one reload runs at a time: a second submission while one is queued or
//!   running answers [`ReloadSubmit::Busy`] (`409`) instead of piling up
//!   rebuilds;
//! * the rebuild runs under `catch_unwind`: a panic mid-reload (the
//!   `reload.retrain` failpoint injects both errors and panics in chaos
//!   runs) is recorded like any failed reload — `server_reload_failed_total`
//!   incremented, old world still serving, version untouched. Rollback is
//!   structural: [`genie::live::LiveWorld`] only swaps after a fully
//!   successful build, so there is nothing to undo.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use genie::live::{LiveWorld, RetrainMode, SkillDelta, SwapReport};
use genie::GenieResult;

use crate::metrics::Metrics;

/// What [`ReloadRunner::submit`] decided.
pub enum ReloadSubmit {
    /// The reload was queued; the world version at acceptance time is
    /// reported so the caller can poll for `version > accepted_version`.
    Accepted {
        /// Serving world version when the job was accepted.
        accepted_version: u64,
    },
    /// `wait: true`: the reload ran to completion; here is its outcome.
    Done(Box<GenieResult<SwapReport>>),
    /// A reload is already queued or running; retry after it finishes.
    Busy,
    /// The runner has shut down.
    ShuttingDown,
}

struct ReloadJob {
    delta: SkillDelta,
    mode: RetrainMode,
    reply: Option<mpsc::SyncSender<GenieResult<SwapReport>>>,
}

/// The last completed reload, for `GET /v1/admin/reload/status`.
#[derive(Default)]
struct LastOutcome {
    report: Option<SwapReport>,
    error: Option<String>,
}

struct RunnerShared {
    live: Arc<LiveWorld>,
    metrics: Arc<Metrics>,
    /// One reload queued-or-running at a time.
    busy: AtomicBool,
    running: AtomicBool,
    accepted: AtomicU64,
    last: Mutex<LastOutcome>,
}

/// Handle to the builder thread.
pub struct ReloadRunner {
    shared: Arc<RunnerShared>,
    sender: Mutex<Option<mpsc::Sender<ReloadJob>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl ReloadRunner {
    /// Start the builder thread over `live`.
    ///
    /// # Errors
    ///
    /// The underlying thread-spawn failure, when the OS refuses a thread.
    pub fn start(live: Arc<LiveWorld>, metrics: Arc<Metrics>) -> std::io::Result<ReloadRunner> {
        let shared = Arc::new(RunnerShared {
            live,
            metrics,
            busy: AtomicBool::new(false),
            running: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            last: Mutex::new(LastOutcome::default()),
        });
        let (sender, receiver) = mpsc::channel::<ReloadJob>();
        let worker = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("genie-reload".to_owned())
                .spawn(move || runner_loop(&shared, &receiver))?
        };
        Ok(ReloadRunner {
            shared,
            sender: Mutex::new(Some(sender)),
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Queue one reload. With `wait`, block until it completes and return
    /// its outcome; otherwise return as soon as it is accepted.
    pub fn submit(&self, delta: SkillDelta, mode: RetrainMode, wait: bool) -> ReloadSubmit {
        if self
            .shared
            .busy
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return ReloadSubmit::Busy;
        }
        let sender = {
            let guard = self.sender.lock().unwrap_or_else(|e| e.into_inner());
            guard.clone()
        };
        let Some(sender) = sender else {
            self.shared.busy.store(false, Ordering::Release);
            return ReloadSubmit::ShuttingDown;
        };
        let accepted_version = self.shared.live.engine().world_version();
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        let (reply, response) = if wait {
            let (tx, rx) = mpsc::sync_channel(1);
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        if sender.send(ReloadJob { delta, mode, reply }).is_err() {
            self.shared.busy.store(false, Ordering::Release);
            return ReloadSubmit::ShuttingDown;
        }
        match response {
            None => ReloadSubmit::Accepted { accepted_version },
            // The worker replies exactly once per waited job, even when the
            // rebuild panics; a disconnect means shutdown raced us.
            Some(response) => match response.recv() {
                Ok(outcome) => ReloadSubmit::Done(Box::new(outcome)),
                Err(_) => ReloadSubmit::ShuttingDown,
            },
        }
    }

    /// The `GET /v1/admin/reload/status` body.
    pub fn render_status(&self) -> String {
        let state = if self.shared.running.load(Ordering::Acquire) {
            "running"
        } else if self.shared.busy.load(Ordering::Acquire) {
            "queued"
        } else {
            "idle"
        };
        let last = self.shared.last.lock().unwrap_or_else(|e| e.into_inner());
        let last_report = last
            .report
            .as_ref()
            .map_or("null".to_owned(), crate::admin::render_swap_report);
        let last_error = last
            .error
            .as_ref()
            .map_or("null".to_owned(), |error| crate::json::escape(error));
        format!(
            "{{\"state\": \"{state}\", \"accepted_total\": {}, \"world_version\": {}, \
             \"last_report\": {last_report}, \"last_error\": {last_error}}}",
            self.shared.accepted.load(Ordering::Relaxed),
            self.shared.live.engine().world_version(),
        )
    }

    /// Close the queue, let an in-progress reload finish (it either swaps
    /// or rolls back — never leaves halfway), and join the builder.
    /// Idempotent.
    pub fn shutdown(&self) {
        {
            let mut guard = self.sender.lock().unwrap_or_else(|e| e.into_inner());
            guard.take();
        }
        let worker = {
            let mut guard = self.worker.lock().unwrap_or_else(|e| e.into_inner());
            guard.take()
        };
        if let Some(handle) = worker {
            let _ = handle.join();
        }
    }
}

impl Drop for ReloadRunner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn runner_loop(shared: &RunnerShared, receiver: &mpsc::Receiver<ReloadJob>) {
    while let Ok(job) = receiver.recv() {
        shared.running.store(true, Ordering::Release);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.live.reload_with(&job.delta, job.mode)
        }))
        .unwrap_or_else(|_| {
            Err(genie::Error::Io(std::io::Error::other(
                "the reload builder panicked mid-rebuild; the previous world is still serving",
            )))
        });
        match &outcome {
            Ok(report) => {
                shared.metrics.reload_ok.fetch_add(1, Ordering::Relaxed);
                let mut last = shared.last.lock().unwrap_or_else(|e| e.into_inner());
                last.report = Some(*report);
                last.error = None;
            }
            Err(error) => {
                shared.metrics.reload_failed.fetch_add(1, Ordering::Relaxed);
                let mut last = shared.last.lock().unwrap_or_else(|e| e.into_inner());
                last.error = Some(error.to_string());
            }
        }
        if let Some(reply) = job.reply {
            let _ = reply.send(outcome);
        }
        shared.running.store(false, Ordering::Release);
        shared.busy.store(false, Ordering::Release);
    }
}
