//! The JSON API surface: decoding `ParseRequest`s from request bodies and
//! rendering `GenieResult<ParseResponse>`s to response bodies.
//!
//! The rendering functions are `pub` on purpose: the end-to-end bench and
//! tests feed the *same requests* to an in-process [`genie::GenieEngine`]
//! and render through the *same functions*, so "socket response equals
//! in-process response" can be asserted **byte for byte** — if the server
//! ever changes what it serves, the comparison fails rather than drifting
//! silently.

use genie::{Error, GenieResult, ParseRequest, ParseResponse};

use crate::http::HttpError;
use crate::json::{escape, Json};

/// Decode one `{"utterance": …, "candidates"?: …, "principal"?: …}` body.
pub fn parse_request_from_json(value: &Json) -> Result<ParseRequest, HttpError> {
    let Some(utterance) = value.get("utterance") else {
        return Err(HttpError::BadRequest(
            "missing required field `utterance`".into(),
        ));
    };
    let Some(utterance) = utterance.as_str() else {
        return Err(HttpError::BadRequest("`utterance` must be a string".into()));
    };
    let mut request = ParseRequest::new(utterance);
    if let Some(candidates) = value.get("candidates") {
        let Some(count) = candidates.as_f64() else {
            return Err(HttpError::BadRequest(
                "`candidates` must be a number".into(),
            ));
        };
        if !(count.fract() == 0.0 && (1.0..=1e6).contains(&count)) {
            return Err(HttpError::BadRequest(
                "`candidates` must be a positive integer".into(),
            ));
        }
        request = request.with_candidates(count as usize);
    }
    if let Some(principal) = value.get("principal") {
        let Some(principal) = principal.as_str() else {
            return Err(HttpError::BadRequest("`principal` must be a string".into()));
        };
        request = request.with_principal(principal);
    }
    Ok(request)
}

/// Decode one `{"requests": [ … ]}` batch body (capped at `max_requests`).
pub fn parse_batch_from_json(
    value: &Json,
    max_requests: usize,
) -> Result<Vec<ParseRequest>, HttpError> {
    let Some(requests) = value.get("requests").and_then(Json::as_array) else {
        return Err(HttpError::BadRequest(
            "missing required array field `requests`".into(),
        ));
    };
    if requests.len() > max_requests {
        return Err(HttpError::BadRequest(format!(
            "batch of {} requests exceeds the limit of {max_requests}",
            requests.len()
        )));
    }
    requests.iter().map(parse_request_from_json).collect()
}

/// Render one successful response body.
pub fn render_response(response: &ParseResponse) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"utterance\": ");
    out.push_str(&escape(&response.utterance));
    out.push_str(", \"sentence\": [");
    push_string_array(&mut out, response.sentence.iter().map(String::as_str));
    out.push_str("], \"candidates\": [");
    for (i, candidate) in response.candidates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"source\": ");
        out.push_str(&escape(&candidate.source));
        out.push_str(", \"tokens\": [");
        push_string_array(&mut out, candidate.tokens.iter().map(String::as_str));
        out.push_str("], \"score\": ");
        // `{:.6}` is locale-free and total (no NaN from the beam), so the
        // rendering is deterministic across platforms.
        out.push_str(&format!("{:.6}", candidate.score));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// The HTTP status a parse error maps to.
pub fn status_for_error(error: &Error) -> (u16, &'static str) {
    match error {
        // The request was well-formed HTTP+JSON but not parseable input:
        // unprocessable, the client's to fix.
        Error::EmptyUtterance | Error::UtteranceTooLong { .. } | Error::NoParse { .. } => {
            (422, "Unprocessable Entity")
        }
        Error::ThingTalk(_) => (422, "Unprocessable Entity"),
        // Server-side resource exhaustion (e.g. the intern arena refusing
        // new vocabulary): try again later.
        Error::Config(_) => (503, "Service Unavailable"),
        Error::Io(_) | Error::CorruptArtifact { .. } | Error::ModelUntrained => {
            (500, "Internal Server Error")
        }
    }
}

/// A short machine-readable code per error variant.
pub fn code_for_error(error: &Error) -> &'static str {
    match error {
        Error::EmptyUtterance => "empty_utterance",
        Error::UtteranceTooLong { .. } => "utterance_too_long",
        Error::NoParse { .. } => "no_parse",
        Error::ThingTalk(_) => "thingtalk",
        Error::Config(_) => "overloaded",
        Error::Io(_) => "io",
        Error::CorruptArtifact { .. } => "corrupt_artifact",
        Error::ModelUntrained => "model_untrained",
    }
}

/// Render one parse-error body (`NoParse` carries its rejections).
pub fn render_error(error: &Error) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"error\": {\"code\": ");
    out.push_str(&escape(code_for_error(error)));
    out.push_str(", \"message\": ");
    out.push_str(&escape(&error.to_string()));
    if let Some(rejected) = error.rejected_candidates() {
        out.push_str(", \"rejected\": [");
        for (i, (candidate, reason)) in rejected.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"candidate\": ");
            out.push_str(&escape(candidate));
            out.push_str(", \"reason\": ");
            out.push_str(&escape(&reason.to_string()));
            out.push('}');
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

/// Render one parse result as `(status, reason, body)` — the single
/// rendering path for `/v1/parse` responses, shared with the byte-identity
/// assertions in the bench and tests.
pub fn render_result(result: &GenieResult<ParseResponse>) -> (u16, &'static str, String) {
    match result {
        Ok(response) => (200, "OK", render_response(response)),
        Err(error) => {
            let (status, reason) = status_for_error(error);
            (status, reason, render_error(error))
        }
    }
}

/// Render one batch of parse results as the `/v1/parse_batch` body: the
/// batch transport itself succeeded (`200`), each element carries its own
/// status.
pub fn render_batch(results: &[GenieResult<ParseResponse>]) -> String {
    let mut out = String::with_capacity(64 * results.len().max(1));
    out.push_str("{\"responses\": [");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let (status, _, body) = render_result(result);
        out.push_str("{\"status\": ");
        out.push_str(&status.to_string());
        out.push_str(", \"response\": ");
        out.push_str(&body);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn push_string_array<'a>(out: &mut String, items: impl Iterator<Item = &'a str>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&escape(item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_requests_with_optional_fields() {
        let body =
            Json::parse(r#"{"utterance": "tweet hi", "candidates": 5, "principal": "alice"}"#)
                .unwrap();
        let request = parse_request_from_json(&body).unwrap();
        assert_eq!(request.utterance, "tweet hi");
        assert_eq!(request.flags.candidates, 5);
        assert_eq!(request.flags.principal.as_deref(), Some("alice"));

        let minimal = Json::parse(r#"{"utterance": "x"}"#).unwrap();
        let request = parse_request_from_json(&minimal).unwrap();
        assert_eq!(request.flags.candidates, 0);
        assert_eq!(request.flags.principal, None);
    }

    #[test]
    fn malformed_request_bodies_are_typed_400s() {
        for body in [
            r#"{}"#,
            r#"{"utterance": 3}"#,
            r#"{"utterance": "x", "candidates": "three"}"#,
            r#"{"utterance": "x", "candidates": 0}"#,
            r#"{"utterance": "x", "candidates": 2.5}"#,
            r#"{"utterance": "x", "candidates": -1}"#,
            r#"{"utterance": "x", "principal": 4}"#,
        ] {
            let value = Json::parse(body).unwrap();
            let error = parse_request_from_json(&value).unwrap_err();
            assert_eq!(error.status(), Some((400, "Bad Request")), "body `{body}`");
        }
    }

    #[test]
    fn batch_decoding_caps_the_request_count() {
        let value = Json::parse(
            r#"{"requests": [{"utterance": "a"}, {"utterance": "b"}, {"utterance": "c"}]}"#,
        )
        .unwrap();
        assert_eq!(parse_batch_from_json(&value, 8).unwrap().len(), 3);
        assert!(matches!(
            parse_batch_from_json(&value, 2),
            Err(HttpError::BadRequest(_))
        ));
        let missing = Json::parse(r#"{"utterances": []}"#).unwrap();
        assert!(parse_batch_from_json(&missing, 8).is_err());
    }

    #[test]
    fn rendered_bodies_are_valid_json_and_typed() {
        let response = ParseResponse {
            utterance: "tweet \"hi\"".into(),
            sentence: vec!["tweet".into(), "\"".into(), "hi".into(), "\"".into()],
            candidates: vec![genie::ParseCandidate {
                program: thingtalk::syntax::parse_program(
                    "now => @com.twitter.post(status = \"hi\")",
                )
                .unwrap(),
                source: "now => @com.twitter.post(status = \"hi\")".into(),
                tokens: vec!["now".into(), "=>".into()],
                score: -1.25,
            }],
        };
        let body = render_response(&response);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("utterance").unwrap().as_str(),
            Some("tweet \"hi\"")
        );
        assert_eq!(
            parsed.get("candidates").unwrap().as_array().unwrap()[0]
                .get("score")
                .unwrap()
                .as_f64(),
            Some(-1.25)
        );

        let error = Error::NoParse {
            utterance: "xyzzy".into(),
            rejected: vec![("now =>".into(), thingtalk::Error::parse("truncated"))],
        };
        let (status, _, body) = render_result(&Err(error));
        assert_eq!(status, 422);
        let parsed = Json::parse(&body).unwrap();
        let error_object = parsed.get("error").unwrap();
        assert_eq!(error_object.get("code").unwrap().as_str(), Some("no_parse"));
        assert_eq!(
            error_object
                .get("rejected")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );

        let batch = render_batch(&[Err(Error::EmptyUtterance)]);
        let parsed = Json::parse(&batch).unwrap();
        let first = &parsed.get("responses").unwrap().as_array().unwrap()[0];
        assert_eq!(first.get("status").unwrap().as_f64(), Some(422.0));
    }
}
