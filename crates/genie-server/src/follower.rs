//! Replica catch-up: the follower's replication poller.
//!
//! A server bound with [`crate::GenieServer::bind_follower`] serves parses
//! from its own [`LiveWorld`] while a background
//! poller keeps that world converged with a primary:
//!
//! 1. **Poll** `GET /v1/admin/deltas?since=V` on the primary (V = the local
//!    world version), with a per-attempt connect/read timeout.
//! 2. **Apply** each returned record whose version is exactly `local + 1`
//!    via [`LiveWorld::reload_with`](genie::live::LiveWorld::reload_with) —
//!    the deterministic rebuild reproduces the primary's
//!    `weights_digest` byte-for-byte (see the determinism contract in
//!    `genie::live`), so convergence is provable, not assumed.
//! 3. **Resync** from `GET /v1/admin/bundle` when record-by-record catch-up
//!    is impossible (the primary's journal starts after `local + 1`) or
//!    uneconomical (the version lag exceeds `resync_lag`): the sealed
//!    bundle bytes ship verbatim — the checksum footer crosses the wire —
//!    and install atomically via
//!    [`LiveWorld::install_bundle`](genie::live::LiveWorld::install_bundle).
//!
//! # Failure model
//!
//! Poll failures back off exponentially (`backoff_base · 2^failures`,
//! capped at `backoff_max`) with deterministic jitter derived from the
//! config seed and the attempt counter — retries never synchronize across
//! a fleet of followers restarted together. After `retry_budget`
//! consecutive failures the follower enters **degraded mode**: it keeps
//! serving its last world (parses never fail over to nothing), but
//! `GET /readyz` answers `503` and the `server_degraded` gauge flips to 1
//! so load balancers route around it. The first successful poll restores
//! readiness.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use genie::live::LiveWorld;
use genie_nlp::failpoint::fnv64;
use genie_templates::ConfigError;

use crate::admin;
use crate::http::{self, HttpError};
use crate::json::Json;
use crate::metrics::Metrics;

/// Default delay between successful polls.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(500);
/// Default base delay of the failure backoff.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(200);
/// Default ceiling of the failure backoff.
pub const DEFAULT_BACKOFF_MAX: Duration = Duration::from_secs(10);
/// Default per-attempt connect/read/write timeout.
pub const DEFAULT_ATTEMPT_TIMEOUT: Duration = Duration::from_secs(5);
/// Default consecutive failures before the follower reports degraded.
pub const DEFAULT_RETRY_BUDGET: u32 = 3;
/// Default version lag beyond which the follower resyncs from a bundle
/// instead of replaying records one by one.
pub const DEFAULT_RESYNC_LAG: u64 = 32;

/// Largest accepted `GET /v1/admin/deltas` response.
const MAX_DELTAS_BODY: usize = 16 * 1024 * 1024;
/// Largest accepted `GET /v1/admin/bundle` response (bundles carry a full
/// model snapshot plus the synthesis memo).
const MAX_BUNDLE_BODY: usize = 512 * 1024 * 1024;
/// Granularity of shutdown-aware sleeps.
const SLEEP_TICK: Duration = Duration::from_millis(10);

/// The follower's validated replication configuration. Construct via
/// [`FollowerConfig::builder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerConfig {
    /// The primary's address, e.g. `127.0.0.1:8400`.
    pub primary: String,
    /// Delay between successful polls.
    pub poll_interval: Duration,
    /// Base delay of the exponential failure backoff.
    pub backoff_base: Duration,
    /// Ceiling of the failure backoff (jitter included).
    pub backoff_max: Duration,
    /// Per-attempt connect/read/write timeout against the primary.
    pub attempt_timeout: Duration,
    /// Consecutive poll failures before the follower reports itself
    /// degraded on `/readyz` (it keeps serving either way).
    pub retry_budget: u32,
    /// Version lag beyond which the follower resyncs from the primary's
    /// bundle instead of replaying journal records one by one.
    pub resync_lag: u64,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            primary: String::new(),
            poll_interval: DEFAULT_POLL_INTERVAL,
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_max: DEFAULT_BACKOFF_MAX,
            attempt_timeout: DEFAULT_ATTEMPT_TIMEOUT,
            retry_budget: DEFAULT_RETRY_BUDGET,
            resync_lag: DEFAULT_RESYNC_LAG,
            seed: 0,
        }
    }
}

impl FollowerConfig {
    /// Start building a config for a follower of `primary`.
    pub fn builder(primary: impl Into<String>) -> FollowerConfigBuilder {
        FollowerConfigBuilder {
            config: FollowerConfig {
                primary: primary.into(),
                ..FollowerConfig::default()
            },
        }
    }

    /// Re-validate an assembled config (builders call this from `build`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.primary.is_empty() {
            return Err(ConfigError::new(
                "primary",
                "a follower needs its primary's address",
            ));
        }
        if self.poll_interval.is_zero() || self.poll_interval > Duration::from_secs(300) {
            return Err(ConfigError::new(
                "poll_interval",
                "must be positive and at most 300s",
            ));
        }
        if self.backoff_base.is_zero() || self.backoff_base > self.backoff_max {
            return Err(ConfigError::new(
                "backoff_base",
                "must be positive and at most backoff_max",
            ));
        }
        if self.backoff_max > Duration::from_secs(300) {
            return Err(ConfigError::new("backoff_max", "must be at most 300s"));
        }
        if self.attempt_timeout.is_zero() || self.attempt_timeout > Duration::from_secs(300) {
            return Err(ConfigError::new(
                "attempt_timeout",
                "must be positive and at most 300s",
            ));
        }
        if self.retry_budget == 0 || self.retry_budget > 1000 {
            return Err(ConfigError::new(
                "retry_budget",
                format!("must be in 1..=1000, got {}", self.retry_budget),
            ));
        }
        if self.resync_lag == 0 {
            return Err(ConfigError::new(
                "resync_lag",
                "must be at least 1 (0 would resync on every delta)",
            ));
        }
        Ok(())
    }
}

/// Builder for [`FollowerConfig`]; `build()` validates.
#[derive(Debug, Clone)]
pub struct FollowerConfigBuilder {
    config: FollowerConfig,
}

impl FollowerConfigBuilder {
    /// Delay between successful polls.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.config.poll_interval = interval;
        self
    }

    /// Exponential failure backoff: base delay and ceiling.
    pub fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.config.backoff_base = base;
        self.config.backoff_max = max;
        self
    }

    /// Per-attempt connect/read/write timeout.
    pub fn attempt_timeout(mut self, timeout: Duration) -> Self {
        self.config.attempt_timeout = timeout;
        self
    }

    /// Consecutive failures before `/readyz` reports degraded.
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.config.retry_budget = budget;
        self
    }

    /// Version lag beyond which the follower resyncs from a bundle.
    pub fn resync_lag(mut self, lag: u64) -> Self {
        self.config.resync_lag = lag;
        self
    }

    /// Seed of the deterministic backoff jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validate and return the config.
    pub fn build(self) -> Result<FollowerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Everything a poll attempt can fail with. Only the *category* matters to
/// the loop (every failure backs off and counts toward the retry budget);
/// the detail feeds nothing but debugging.
enum PollError {
    /// The primary was unreachable or spoke garbage.
    Transport(HttpError),
    /// The primary answered, but not with what the protocol promises.
    Protocol(String),
    /// A record or bundle was rejected locally (rebuild failure, config
    /// digest mismatch, corrupt bytes).
    Apply(genie::Error),
}

impl std::fmt::Display for PollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PollError::Transport(error) => write!(f, "transport: {error}"),
            PollError::Protocol(detail) => write!(f, "protocol: {detail}"),
            PollError::Apply(error) => write!(f, "apply: {error}"),
        }
    }
}

/// Handle to the replication poller thread.
pub(crate) struct FollowerRunner {
    shutdown: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl FollowerRunner {
    /// Start the poller over `live` against `config.primary`.
    pub(crate) fn start(
        live: Arc<LiveWorld>,
        config: FollowerConfig,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<FollowerRunner> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let worker = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("genie-follower".to_owned())
                .spawn(move || follower_loop(&live, &config, &metrics, &shutdown))?
        };
        Ok(FollowerRunner {
            shutdown,
            worker: Some(worker),
        })
    }

    /// Stop polling and join the poller thread. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for FollowerRunner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn follower_loop(
    live: &Arc<LiveWorld>,
    config: &FollowerConfig,
    metrics: &Arc<Metrics>,
    shutdown: &AtomicBool,
) {
    let mut failures: u32 = 0;
    let mut attempt: u64 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        attempt += 1;
        metrics.replication_polls.fetch_add(1, Ordering::Relaxed);
        match poll_primary(live, config, metrics) {
            Ok(()) => {
                failures = 0;
                metrics.degraded.store(0, Ordering::Relaxed);
                sleep_unless_shutdown(config.poll_interval, shutdown);
            }
            Err(_) => {
                failures = failures.saturating_add(1);
                metrics.replication_errors.fetch_add(1, Ordering::Relaxed);
                if failures >= config.retry_budget {
                    // Degraded, not dead: the last world keeps serving.
                    metrics.degraded.store(1, Ordering::Relaxed);
                }
                sleep_unless_shutdown(backoff_delay(config, failures, attempt), shutdown);
            }
        }
    }
}

/// The delay before retry `failures` (1-based): exponential growth capped
/// at `backoff_max`, then "equal jitter" — half the backoff is fixed, half
/// is a deterministic hash of `(seed, attempt)` — so the worst case never
/// exceeds the cap and simultaneous followers still spread out.
fn backoff_delay(config: &FollowerConfig, failures: u32, attempt: u64) -> Duration {
    let exponent = failures.saturating_sub(1).min(16);
    let backoff = config
        .backoff_base
        .saturating_mul(1u32 << exponent)
        .min(config.backoff_max);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&config.seed.to_le_bytes());
    key[8..].copy_from_slice(&attempt.to_le_bytes());
    let fraction = (fnv64(&key) % 1024) as f64 / 1024.0;
    backoff / 2 + backoff.mul_f64(fraction / 2.0)
}

fn sleep_unless_shutdown(total: Duration, shutdown: &AtomicBool) {
    let mut remaining = total;
    while !remaining.is_zero() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let tick = remaining.min(SLEEP_TICK);
        std::thread::sleep(tick);
        remaining = remaining.saturating_sub(tick);
    }
}

/// One poll: fetch the primary's delta feed and converge on it.
fn poll_primary(
    live: &Arc<LiveWorld>,
    config: &FollowerConfig,
    metrics: &Arc<Metrics>,
) -> Result<(), PollError> {
    let addr = resolve(&config.primary)?;
    let local = live.version();
    let response = http_get(
        &addr,
        &format!("/v1/admin/deltas?since={local}"),
        config.attempt_timeout,
        MAX_DELTAS_BODY,
    )?;
    if response.status != 200 {
        return Err(PollError::Protocol(format!(
            "delta feed answered {}",
            response.status
        )));
    }
    let text = std::str::from_utf8(&response.body)
        .map_err(|_| PollError::Protocol("delta feed is not UTF-8".to_owned()))?;
    let json = Json::parse(text)
        .map_err(|error| PollError::Protocol(format!("malformed delta feed: {error}")))?;
    let feed = admin::delta_feed_from_json(&json)
        .map_err(|error| PollError::Protocol(error.to_string()))?;
    metrics
        .replication_lag
        .store(feed.world_version.saturating_sub(local), Ordering::Relaxed);
    if feed.world_version <= local {
        return Ok(());
    }
    let lag = feed.world_version - local;
    let contiguous = feed
        .records
        .first()
        .is_some_and(|record| record.version == local + 1);
    if !contiguous || lag > config.resync_lag {
        // Too far behind for record-by-record catch-up (or the records
        // before the journal's start are gone): install the primary's
        // latest bundle wholesale.
        let response = http_get(
            &addr,
            "/v1/admin/bundle",
            config.attempt_timeout,
            MAX_BUNDLE_BODY,
        )?;
        if response.status != 200 {
            return Err(PollError::Protocol(format!(
                "bundle endpoint answered {}",
                response.status
            )));
        }
        live.install_bundle(&response.body)
            .map_err(PollError::Apply)?;
        metrics.replication_resyncs.fetch_add(1, Ordering::Relaxed);
    } else {
        for record in &feed.records {
            // Records must chain exactly; anything else waits for the next
            // poll (which will see the gap and resync).
            if record.version != live.version() + 1 {
                break;
            }
            live.reload_with(&record.delta, record.mode)
                .map_err(PollError::Apply)?;
            metrics.replication_applied.fetch_add(1, Ordering::Relaxed);
        }
    }
    metrics.replication_lag.store(
        feed.world_version.saturating_sub(live.version()),
        Ordering::Relaxed,
    );
    Ok(())
}

fn resolve(primary: &str) -> Result<SocketAddr, PollError> {
    primary
        .to_socket_addrs()
        .map_err(|error| PollError::Transport(HttpError::Io(error)))?
        .next()
        .ok_or_else(|| PollError::Protocol(format!("`{primary}` resolves to no address")))
}

/// One bounded GET against the primary: connect, send, read one framed
/// response. Every socket operation carries `timeout`.
fn http_get(
    addr: &SocketAddr,
    path: &str,
    timeout: Duration,
    max_body_bytes: usize,
) -> Result<http::Response, PollError> {
    let transport = |error: std::io::Error| PollError::Transport(HttpError::Io(error));
    let mut stream = TcpStream::connect_timeout(addr, timeout).map_err(transport)?;
    stream.set_read_timeout(Some(timeout)).map_err(transport)?;
    stream.set_write_timeout(Some(timeout)).map_err(transport)?;
    let _ = stream.set_nodelay(true);
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(transport)?;
    let mut reader = BufReader::new(stream);
    http::read_response(&mut reader, max_body_bytes).map_err(PollError::Transport)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_knobs_are_typed_errors() {
        assert!(FollowerConfig::builder("127.0.0.1:1").build().is_ok());
        assert!(FollowerConfig::builder("").build().is_err());
        assert!(FollowerConfig::builder("h:1")
            .poll_interval(Duration::ZERO)
            .build()
            .is_err());
        assert!(FollowerConfig::builder("h:1")
            .backoff(Duration::from_secs(10), Duration::from_secs(1))
            .build()
            .is_err());
        assert!(FollowerConfig::builder("h:1")
            .backoff(Duration::ZERO, Duration::from_secs(1))
            .build()
            .is_err());
        assert!(FollowerConfig::builder("h:1")
            .attempt_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(FollowerConfig::builder("h:1")
            .retry_budget(0)
            .build()
            .is_err());
        assert!(FollowerConfig::builder("h:1")
            .resync_lag(0)
            .build()
            .is_err());
        let error = FollowerConfig::builder("h:1")
            .retry_budget(0)
            .build()
            .unwrap_err();
        assert!(error.to_string().contains("retry_budget"));
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let config = FollowerConfig::builder("127.0.0.1:1")
            .backoff(Duration::from_millis(100), Duration::from_secs(2))
            .seed(42)
            .build()
            .unwrap();
        // Growth: each consecutive failure at least keeps the floor
        // (backoff/2) non-decreasing until the cap.
        let floor =
            |failures: u32| backoff_delay(&config, failures, u64::from(failures)).as_millis();
        assert!(floor(1) >= 50);
        assert!(floor(3) >= 200, "exponential floor, got {}ms", floor(3));
        // Cap: even absurd failure counts stay within backoff_max.
        for attempt in 0..64 {
            let delay = backoff_delay(&config, 60, attempt);
            assert!(delay <= config.backoff_max, "uncapped backoff {delay:?}");
        }
        // Determinism: same (seed, failures, attempt) → same delay; a
        // different attempt jitters differently.
        assert_eq!(backoff_delay(&config, 5, 7), backoff_delay(&config, 5, 7));
        assert_ne!(
            backoff_delay(&config, 5, 7),
            backoff_delay(&config, 5, 8),
            "jitter must vary across attempts"
        );
    }
}
