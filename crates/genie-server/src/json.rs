//! A minimal JSON value: parser and string escaping.
//!
//! The container this workspace builds in has no crates.io access and the
//! vendored `serde` stand-in has neither a serializer nor a deserializer,
//! so the server hand-rolls the little JSON it needs — the same decision
//! the bench layer made with `genie_bench::json_object`. The parser is a
//! bounds-checked recursive descent over untrusted request bytes: depth is
//! capped (a `[[[[…` bomb cannot blow the stack), every error is a typed
//! [`JsonError`] with a byte offset, and input size is already capped by
//! the HTTP layer's body limit before a single byte reaches this module.

use std::fmt;

/// Maximum nesting depth accepted from untrusted input.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (later duplicates shadow earlier ones on
    /// [`Json::get`] lookups is *not* true — first match wins).
    Object(Vec<(String, Json)>),
}

/// A parse failure: what was wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What failed.
    pub detail: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.detail, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.at != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, detail: &str) -> JsonError {
        JsonError {
            detail: detail.to_owned(),
            at: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than the server accepts"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.at += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.error("raw control character in string")),
                _ => {
                    // Re-scan a whole UTF-8 scalar from the source slice; the
                    // input is already validated UTF-8 (it arrived as &str).
                    let start = self.at - 1;
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    // Non-empty by construction (`rest` starts at a byte we
                    // just consumed), but typed beats provable on the
                    // untrusted-input path.
                    let Some(c) = text.chars().next() else {
                        return Err(self.error("truncated string"));
                    };
                    out.push(c);
                    self.at = start + c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by `\u` and a
        // low surrogate; anything else is an error (never a panic).
        if (0xd800..=0xdbff).contains(&first) {
            if self.peek() == Some(b'\\') {
                self.at += 1;
                self.expect(b'u')?;
                let second = self.hex4()?;
                if (0xdc00..=0xdfff).contains(&second) {
                    let combined =
                        0x10000 + (((first - 0xd800) as u32) << 10) + (second - 0xdc00) as u32;
                    return char::from_u32(combined).ok_or_else(|| self.error("invalid surrogate"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        if (0xdc00..=0xdfff).contains(&first) {
            return Err(self.error("unpaired low surrogate"));
        }
        char::from_u32(first as u32).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut value: u16 = 0;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = match byte {
                b'0'..=b'9' => byte - b'0',
                b'a'..=b'f' => byte - b'a' + 10,
                b'A'..=b'F' => byte - b'A' + 10,
                _ => return Err(self.error("non-hex digit in \\u escape")),
            };
            value = (value << 4) | digit as u16;
            self.at += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.error("malformed number"))?;
        let value: f64 = text.parse().map_err(|_| self.error("malformed number"))?;
        if !value.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(Json::Number(value))
    }
}

/// Quote and escape a string for JSON output.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let parsed = Json::parse(
            r#"{"utterance": "tweet \"hi\"", "candidates": 3, "principal": null, "ok": true}"#,
        )
        .unwrap();
        assert_eq!(
            parsed.get("utterance").unwrap().as_str(),
            Some("tweet \"hi\"")
        );
        assert_eq!(parsed.get("candidates").unwrap().as_f64(), Some(3.0));
        assert_eq!(parsed.get("principal"), Some(&Json::Null));
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("missing"), None);

        let batch =
            Json::parse(r#"{"requests": [{"utterance": "a"}, {"utterance": "b"}]}"#).unwrap();
        assert_eq!(batch.get("requests").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn escapes_and_unicode_roundtrip() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t caño 猫 \u{0001}";
        let wire = escape(original);
        let back = Json::parse(&wire).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // Surrogate pair.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn hostile_inputs_are_typed_errors_not_panics() {
        let cases = [
            "",
            "{",
            "}",
            "{\"a\"",
            "{\"a\": }",
            "[1, 2",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\u12\"",
            "\"\\ud800 unpaired\"",
            "truelike",
            "1e999",
            "--3",
            "{\"a\": 1} trailing",
            "nul",
            "\u{0007}",
            "{\"k\": \u{0001}}",
        ];
        for case in cases {
            assert!(Json::parse(case).is_err(), "`{case}` unexpectedly parsed");
        }
        // Depth bomb: typed error, not a stack overflow.
        let bomb = "[".repeat(10_000);
        let error = Json::parse(&bomb).unwrap_err();
        assert!(error.detail.contains("nesting"));
    }

    #[test]
    fn numbers_parse_with_signs_and_exponents() {
        assert_eq!(Json::parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(Json::parse("0").unwrap().as_f64(), Some(0.0));
    }
}
