//! The socket front-end: bind, accept, route, drain, shut down.
//!
//! # Threading model
//!
//! `worker_threads` acceptor threads share one `TcpListener` (accepting
//! from multiple threads is the classic pre-forked pattern — the kernel
//! load-balances) and each owns its connection for the connection's
//! lifetime, so a request's handler never migrates threads. Parse work
//! does not happen on acceptor threads: single parses queue into the
//! [`crate::coalescer::Coalescer`] (one dispatcher thread, micro-batched
//! through `GenieEngine::parse_batch`), which is where the engine's own
//! deterministic parallelism takes over. Reload rebuilds do not happen on
//! acceptor threads either: they queue into the
//! [`crate::reload::ReloadRunner`]'s builder thread.
//!
//! # Supervision
//!
//! Acceptors are supervised: a watchdog thread owns the acceptor handles,
//! joins any that die (a panic that escapes a handler — per-request
//! handling itself runs under `catch_unwind` and answers a typed `500`
//! first), and respawns them so the configured accept capacity recovers.
//! The chaos soak drives this on purpose through the `server.accept` and
//! `server.handle` failpoints.
//!
//! # Overload
//!
//! Ahead of the coalescer sits a bounded admission gate: past
//! `max_inflight` concurrently admitted parse requests the server sheds
//! with a `503` + `Retry-After` instead of queueing unboundedly
//! (deliberately distinct from the per-client quota's `429`). Each admitted
//! request carries a deadline; one that cannot complete inside
//! `request_deadline` answers a typed `504`.
//!
//! # Shutdown
//!
//! [`GenieServer::shutdown`] flips the flag, nudges each blocked acceptor
//! awake with loopback connections until the supervisor (which joins the
//! acceptors) exits, then closes and joins the coalescer (which drains its
//! queue by construction) and the reload runner (which finishes or rolls
//! back an in-progress rebuild).

use std::io::BufReader;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use genie::live::LiveWorld;
use genie::{EngineStatsHandle, GenieEngine, GenieResult};

use crate::admin;
use crate::api;
use crate::coalescer::{Coalescer, SubmitError};
use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::follower::{FollowerConfig, FollowerRunner};
use crate::http::{self, HttpError, Request};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::quota::Quota;
use crate::reload::{ReloadRunner, ReloadSubmit};

/// How often the supervisor watchdog sweeps for dead acceptors.
const SUPERVISOR_TICK: Duration = Duration::from_millis(20);

struct Shared {
    engine: GenieEngine,
    engine_stats: EngineStatsHandle,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    quota: Option<Quota>,
    coalescer: Coalescer,
    /// The live world behind the engine, when bound with
    /// [`GenieServer::bind_live`] or [`GenieServer::bind_follower`]; the
    /// replication surface (`/v1/admin/deltas`, `/v1/admin/bundle`) needs
    /// it beyond what the [`ReloadRunner`] holds.
    live: Option<Arc<LiveWorld>>,
    /// The background reload builder, when the server was bound with
    /// [`GenieServer::bind_live`]; `None` makes `/v1/admin/reload` a 503
    /// (followers deliberately have none — their world converges on the
    /// primary's journal, never on direct writes).
    reload: Option<ReloadRunner>,
    /// Whether this server replicates from a primary
    /// ([`GenieServer::bind_follower`]); `/readyz` reports the role.
    follower: bool,
    /// Parse requests currently admitted (queued or executing); the
    /// overload gate compares this against `config.max_inflight`.
    inflight: AtomicUsize,
    shutdown: AtomicBool,
}

/// A bound, serving HTTP front-end over a [`GenieEngine`].
///
/// Dropping the server shuts it down gracefully (equivalent to
/// [`GenieServer::shutdown`]).
pub struct GenieServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    supervisor: Option<JoinHandle<()>>,
    /// The replication poller, when bound with
    /// [`GenieServer::bind_follower`].
    follower_runner: Option<FollowerRunner>,
}

impl GenieServer {
    /// Bind `config.addr` and start serving `engine`.
    ///
    /// # Errors
    ///
    /// A typed [`ServerError`]: `Config` for an invalid config, `Io` when
    /// the socket cannot be bound, `Spawn` when the OS refuses a thread.
    /// (`ServerError` converts into `genie::Error`, so `?` keeps working
    /// in `GenieResult` contexts.)
    pub fn bind(engine: GenieEngine, config: ServerConfig) -> Result<GenieServer, ServerError> {
        Self::bind_inner(engine, None, false, config)
    }

    /// Bind `config.addr` and serve a [`LiveWorld`]'s engine, enabling the
    /// live-update admin surface: `POST /v1/admin/reload` applies a skill
    /// delta (incremental re-synthesis + retraining + atomic world swap)
    /// on a background builder thread — the default reply is `202
    /// Accepted`, `{"wait": true}` blocks for the swap report — and
    /// `GET /v1/admin/version` reports the serving snapshot version.
    /// Requests in flight during a swap finish on the world they started
    /// with; a failed or panicking rebuild leaves the old world serving;
    /// [`GenieServer::shutdown`] drains an in-progress reload.
    ///
    /// # Errors
    ///
    /// A typed [`ServerError`], as for [`GenieServer::bind`].
    pub fn bind_live(
        live: Arc<LiveWorld>,
        config: ServerConfig,
    ) -> Result<GenieServer, ServerError> {
        let engine = live.engine().clone();
        Self::bind_inner(engine, Some(live), false, config)
    }

    /// Bind `config.addr` and serve `live` as a **follower** of the primary
    /// named in `follower`: a background poller fetches
    /// `GET /v1/admin/deltas?since=V` with exponential backoff + jitter,
    /// applies each record deterministically (converging on the primary's
    /// `weights_digest`), and resyncs from the primary's bundle when it
    /// falls too far behind. While the primary is unreachable the follower
    /// keeps serving its last world in **degraded mode** — `GET /readyz`
    /// answers `503` and the `server_degraded` gauge flips, but parses keep
    /// working. Followers refuse direct `POST /v1/admin/reload` (`503
    /// not_live`): their world converges on the journal alone.
    ///
    /// # Errors
    ///
    /// A typed [`ServerError`], as for [`GenieServer::bind`].
    pub fn bind_follower(
        live: Arc<LiveWorld>,
        config: ServerConfig,
        follower: FollowerConfig,
    ) -> Result<GenieServer, ServerError> {
        follower.validate()?;
        let engine = live.engine().clone();
        let mut server = Self::bind_inner(engine, Some(live.clone()), true, config)?;
        let runner = FollowerRunner::start(live, follower, server.shared.metrics.clone()).map_err(
            |source| ServerError::Spawn {
                what: "follower poller",
                source,
            },
        )?;
        server.follower_runner = Some(runner);
        Ok(server)
    }

    fn bind_inner(
        engine: GenieEngine,
        live: Option<Arc<LiveWorld>>,
        follower: bool,
        config: ServerConfig,
    ) -> Result<GenieServer, ServerError> {
        config.validate()?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::default());
        let quota =
            (config.quota_burst > 0).then(|| Quota::new(config.quota_burst, config.quota_per_sec));
        let coalescer = Coalescer::start(
            engine.clone(),
            config.coalesce_window,
            config.max_coalesce_batch,
            metrics.clone(),
        )
        .map_err(|source| ServerError::Spawn {
            what: "coalescer dispatcher",
            source,
        })?;
        let reload = live
            .clone()
            .filter(|_| !follower)
            .map(|live| ReloadRunner::start(live, metrics.clone()))
            .transpose()
            .map_err(|source| ServerError::Spawn {
                what: "reload runner",
                source,
            })?;
        let shared = Arc::new(Shared {
            engine_stats: engine.stats_handle(),
            engine,
            config,
            metrics,
            quota,
            coalescer,
            live,
            reload,
            follower,
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let mut acceptors = Vec::with_capacity(shared.config.worker_threads);
        for worker in 0..shared.config.worker_threads {
            let handle = spawn_acceptor(&shared, &listener, worker).map_err(|source| {
                // Threads already spawned must not outlive a failed bind
                // holding the listener: tell them to exit on their next
                // accepted connection.
                shared.shutdown.store(true, Ordering::SeqCst);
                ServerError::Spawn {
                    what: "acceptor",
                    source,
                }
            })?;
            acceptors.push(Some(handle));
        }
        let supervisor = {
            let supervised = shared.clone();
            std::thread::Builder::new()
                .name("genie-supervisor".to_owned())
                .spawn(move || supervise(&supervised, &listener, acceptors))
                .map_err(|source| {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    ServerError::Spawn {
                        what: "supervisor",
                        source,
                    }
                })?
        };
        Ok(GenieServer {
            shared,
            addr,
            supervisor: Some(supervisor),
            follower_runner: None,
        })
    }

    /// The bound address (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current metrics exposition (same text `GET /metrics` serves).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render(&self.shared.engine_stats)
    }

    /// Gracefully stop: refuse new connections, drain in-flight requests
    /// and the coalescer queue, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Stop the replication poller first: no new world swaps land while
        // the request paths drain.
        if let Some(mut runner) = self.follower_runner.take() {
            runner.shutdown();
        }
        let Some(supervisor) = self.supervisor.take() else {
            return;
        };
        // Nudge acceptors blocked in `accept()` awake until the supervisor
        // (which joins them) has exited; a nudge connection is answered by
        // the flag check and dropped. Busy acceptors finish their
        // connection first — that is the drain.
        while !supervisor.is_finished() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(100));
            std::thread::sleep(Duration::from_millis(5));
        }
        let _ = supervisor.join();
        // All handlers are gone; close the queues and drain the workers.
        self.shared.coalescer.shutdown();
        if let Some(reload) = self.shared.reload.as_ref() {
            reload.shutdown();
        }
    }
}

impl Drop for GenieServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_acceptor(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    worker: usize,
) -> std::io::Result<JoinHandle<()>> {
    let shared = shared.clone();
    let listener = listener.try_clone()?;
    std::thread::Builder::new()
        .name(format!("genie-server-{worker}"))
        .spawn(move || accept_loop(&shared, &listener))
}

/// The watchdog: joins acceptors that died (an escaped panic) and respawns
/// them so accept capacity recovers; on shutdown, joins whatever is left.
fn supervise(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    mut acceptors: Vec<Option<JoinHandle<()>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        for (worker, slot) in acceptors.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(JoinHandle::is_finished) {
                if let Some(dead) = slot.take() {
                    let _ = dead.join();
                }
            }
            if slot.is_none() && !shared.shutdown.load(Ordering::SeqCst) {
                // A respawn failure (thread limits) is retried next tick;
                // the remaining acceptors keep serving meanwhile.
                if let Ok(handle) = spawn_acceptor(shared, listener, worker) {
                    shared
                        .metrics
                        .acceptor_respawns
                        .fetch_add(1, Ordering::Relaxed);
                    *slot = Some(handle);
                }
            }
        }
        std::thread::sleep(SUPERVISOR_TICK);
    }
    for slot in &mut acceptors {
        if let Some(handle) = slot.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(stream);
                    return;
                }
                // Chaos hook: an injected error drops this connection (the
                // client sees a reset, a valid fault-model outcome); an
                // injected panic kills this acceptor so the supervisor's
                // respawn path gets exercised.
                if genie_nlp::failpoint::fail_io("server.accept").is_err() {
                    drop(stream);
                    continue;
                }
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                handle_connection(shared, stream, peer);
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (EMFILE, aborted handshake):
                // back off briefly and keep serving.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, peer: SocketAddr) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => {
                shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                // Supervision: a handler panic costs this one request (a
                // typed 500) and this one connection, never the acceptor.
                let routed = catch_unwind(AssertUnwindSafe(|| route(shared, peer.ip(), &request)));
                let (outcome, panicked) = match routed {
                    Ok(outcome) => (outcome, false),
                    Err(_) => {
                        shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
                        let outcome = Outcome::error(
                            500,
                            "Internal Server Error",
                            "internal_panic",
                            "the request handler panicked; it was supervised and this \
                             connection will close",
                        );
                        (outcome, true)
                    }
                };
                shared
                    .metrics
                    .record_latency(started.elapsed().as_micros() as u64);
                shared.metrics.record_status(outcome.status);
                let keep_alive =
                    request.keep_alive && !panicked && !shared.shutdown.load(Ordering::SeqCst);
                if http::write_response(
                    &mut stream,
                    outcome.status,
                    outcome.reason,
                    outcome.content_type,
                    &outcome.body,
                    keep_alive,
                    &outcome.extra_headers,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Err(error) => {
                // Codec-level failure: answer when there is an answer to
                // give, then close the connection either way (the stream
                // position is no longer trustworthy).
                if let Some((status, reason)) = error.status() {
                    shared.metrics.record_status(status);
                    let body = format!(
                        "{{\"error\": {{\"code\": {}, \"message\": {}}}}}",
                        crate::json::escape(error.code()),
                        crate::json::escape(&error.to_string()),
                    );
                    let _ = http::write_response(
                        &mut stream,
                        status,
                        reason,
                        "application/json",
                        body.as_bytes(),
                        false,
                        &[],
                    );
                }
                return;
            }
        }
    }
}

struct Outcome {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    /// Raw bytes: JSON and metrics bodies are UTF-8, the bundle endpoint's
    /// is a sealed binary artifact.
    body: Vec<u8>,
    extra_headers: Vec<(&'static str, String)>,
}

impl Outcome {
    fn json(status: u16, reason: &'static str, body: String) -> Outcome {
        Outcome {
            status,
            reason,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    fn error(status: u16, reason: &'static str, code: &str, message: &str) -> Outcome {
        Outcome::json(
            status,
            reason,
            format!(
                "{{\"error\": {{\"code\": {}, \"message\": {}}}}}",
                crate::json::escape(code),
                crate::json::escape(message),
            ),
        )
    }
}

/// RAII admission slot: dropping it (however the request ends — success,
/// typed error, or panic unwinding through `catch_unwind`) frees capacity.
struct InflightPermit<'a>(&'a AtomicUsize);

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Try to take an admission slot; past `max_inflight` the request is shed
/// with a `503` + `Retry-After` (distinct from the quota's `429`: the gate
/// protects the *server*, the quota polices each *client*).
fn admit(shared: &Shared) -> Result<Option<InflightPermit<'_>>, Box<Outcome>> {
    if shared.config.max_inflight == 0 {
        return Ok(None); // gate disabled
    }
    let admitted = shared.inflight.fetch_add(1, Ordering::AcqRel);
    if admitted >= shared.config.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
        let mut outcome = Outcome::error(
            503,
            "Service Unavailable",
            "overloaded",
            &format!(
                "the server is at its admission limit ({} in-flight requests); retry shortly",
                shared.config.max_inflight
            ),
        );
        outcome.extra_headers.push(("Retry-After", "1".to_owned()));
        return Err(Box::new(outcome));
    }
    Ok(Some(InflightPermit(&shared.inflight)))
}

fn route(shared: &Shared, peer: IpAddr, request: &Request) -> Outcome {
    // Chaos hook: an injected error is a typed 500; an injected panic
    // unwinds into the handler's `catch_unwind` and becomes the
    // `internal_panic` 500, proving supervision end to end.
    if let Err(error) = genie_nlp::failpoint::fail_io("server.handle") {
        return Outcome::error(
            500,
            "Internal Server Error",
            "injected_fault",
            &error.to_string(),
        );
    }
    // The admin surface takes query parameters (`/v1/admin/deltas?since=V`);
    // routing matches on the path alone.
    let (path, query) = request
        .path
        .split_once('?')
        .unwrap_or((request.path.as_str(), ""));
    match (request.method.as_str(), path) {
        ("POST", "/v1/parse") => {
            let _permit = match admit(shared) {
                Ok(permit) => permit,
                Err(shed) => return *shed,
            };
            if let Some(outcome) = check_quota(shared, peer, 1.0) {
                return outcome;
            }
            shared
                .metrics
                .parse_requests
                .fetch_add(1, Ordering::Relaxed);
            let parse_request = match decode_body(&request.body)
                .and_then(|json| api::parse_request_from_json(&json))
            {
                Ok(parse_request) => parse_request,
                Err(error) => return codec_outcome(&error),
            };
            let deadline = Instant::now() + shared.config.request_deadline;
            match shared.coalescer.submit(parse_request, deadline) {
                Ok(result) => {
                    record_parse_result(shared, &result);
                    let (status, reason, body) = api::render_result(&result);
                    Outcome::json(status, reason, body)
                }
                Err(SubmitError::ShuttingDown) => Outcome::error(
                    503,
                    "Service Unavailable",
                    "shutting_down",
                    "the server is draining and no longer accepts work",
                ),
                Err(SubmitError::DeadlineExceeded) => {
                    shared
                        .metrics
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    Outcome::error(
                        504,
                        "Gateway Timeout",
                        "deadline_exceeded",
                        &format!(
                            "the request missed its {}ms deadline budget",
                            shared.config.request_deadline.as_millis()
                        ),
                    )
                }
                Err(SubmitError::Crashed) => Outcome::error(
                    500,
                    "Internal Server Error",
                    "batch_crashed",
                    "the micro-batch serving this request crashed; it was supervised — retry",
                ),
            }
        }
        ("POST", "/v1/parse_batch") => {
            let _permit = match admit(shared) {
                Ok(permit) => permit,
                Err(shed) => return *shed,
            };
            shared
                .metrics
                .batch_requests
                .fetch_add(1, Ordering::Relaxed);
            let requests = match decode_body(&request.body).and_then(|json| {
                api::parse_batch_from_json(&json, shared.config.max_batch_requests)
            }) {
                Ok(requests) => requests,
                Err(error) => return codec_outcome(&error),
            };
            if let Some(outcome) = check_quota(shared, peer, requests.len() as f64) {
                return outcome;
            }
            // A client-assembled batch is already a batch: it goes straight
            // to the engine's deterministic fan-out, not via the coalescer.
            let results = shared.engine.parse_batch(&requests);
            for result in &results {
                record_parse_result(shared, result);
            }
            Outcome::json(200, "OK", api::render_batch(&results))
        }
        ("POST", "/v1/admin/reload") => {
            shared
                .metrics
                .reload_requests
                .fetch_add(1, Ordering::Relaxed);
            let Some(runner) = shared.reload.as_ref() else {
                shared.metrics.reload_failed.fetch_add(1, Ordering::Relaxed);
                return Outcome::error(
                    503,
                    "Service Unavailable",
                    "not_live",
                    "this server was not bound to a live world; reload is unavailable",
                );
            };
            let body = match decode_body(&request.body) {
                Ok(body) => body,
                Err(error) => {
                    shared.metrics.reload_failed.fetch_add(1, Ordering::Relaxed);
                    return codec_outcome(&error);
                }
            };
            let (delta, mode) = match admin::skill_delta_from_json(&body) {
                Ok(decoded) => decoded,
                Err(error) => {
                    shared.metrics.reload_failed.fetch_add(1, Ordering::Relaxed);
                    return codec_outcome(&error);
                }
            };
            // The rebuild runs on the background builder thread; this
            // acceptor either returns immediately (202) or merely waits for
            // the report, so shutdown can drain it like any blocked request.
            match runner.submit(delta, mode, admin::wait_from_json(&body)) {
                ReloadSubmit::Accepted { accepted_version } => {
                    Outcome::json(202, "Accepted", admin::render_accepted(accepted_version))
                }
                ReloadSubmit::Done(outcome) => match *outcome {
                    Ok(report) => Outcome::json(200, "OK", admin::render_swap_report(&report)),
                    Err(error) => {
                        let (status, reason) = api::status_for_error(&error);
                        Outcome::json(status, reason, api::render_error(&error))
                    }
                },
                ReloadSubmit::Busy => {
                    let mut outcome = Outcome::error(
                        409,
                        "Conflict",
                        "reload_in_progress",
                        "another reload is already queued or running; poll \
                         /v1/admin/reload/status and retry",
                    );
                    // Rebuilds take seconds, not milliseconds: tell the
                    // client when retrying is worth it.
                    outcome.extra_headers.push(("Retry-After", "2".to_owned()));
                    outcome
                }
                ReloadSubmit::ShuttingDown => Outcome::error(
                    503,
                    "Service Unavailable",
                    "shutting_down",
                    "the server is draining and no longer accepts reloads",
                ),
            }
        }
        ("GET", "/v1/admin/reload/status") => match shared.reload.as_ref() {
            Some(runner) => Outcome::json(200, "OK", runner.render_status()),
            None => Outcome::error(
                503,
                "Service Unavailable",
                "not_live",
                "this server was not bound to a live world; reload is unavailable",
            ),
        },
        ("GET", "/v1/admin/version") => Outcome::json(
            200,
            "OK",
            admin::render_version(
                shared.engine.world_version(),
                shared.reload.is_some(),
                shared.engine.model().weights_digest(),
            ),
        ),
        ("GET", "/v1/admin/deltas") => {
            let Some(live) = shared.live.as_ref() else {
                return Outcome::error(
                    503,
                    "Service Unavailable",
                    "not_live",
                    "this server was not bound to a live world; there is no delta journal",
                );
            };
            let since = match query_param(query, "since") {
                None => 0,
                Some(raw) => match raw.parse::<u64>() {
                    Ok(since) => since,
                    Err(_) => {
                        return Outcome::error(
                            400,
                            "Bad Request",
                            "bad_request",
                            &format!("`since` must be a non-negative integer, got `{raw}`"),
                        )
                    }
                },
            };
            let records = live.journal_records_since(since);
            Outcome::json(
                200,
                "OK",
                admin::render_deltas(live.version(), live.journal_first_version(), &records),
            )
        }
        ("GET", "/v1/admin/bundle") => {
            let Some(live) = shared.live.as_ref() else {
                return Outcome::error(
                    503,
                    "Service Unavailable",
                    "not_live",
                    "this server was not bound to a live world; there is no bundle",
                );
            };
            match live.bundle_bytes() {
                // Sealed bytes ship verbatim: the checksum footer crosses
                // the wire, so the receiver re-validates end to end.
                Ok(bytes) => Outcome {
                    status: 200,
                    reason: "OK",
                    content_type: "application/octet-stream",
                    body: bytes,
                    extra_headers: Vec::new(),
                },
                Err(genie::Error::Config(error)) => Outcome::error(
                    503,
                    "Service Unavailable",
                    "not_durable",
                    &error.to_string(),
                ),
                Err(error) => Outcome::error(
                    500,
                    "Internal Server Error",
                    "bundle_unavailable",
                    &error.to_string(),
                ),
            }
        }
        ("GET", "/metrics") => Outcome {
            status: 200,
            reason: "OK",
            content_type: "text/plain; charset=utf-8",
            body: shared.metrics.render(&shared.engine_stats).into_bytes(),
            extra_headers: Vec::new(),
        },
        ("GET", "/healthz") => Outcome::json(200, "OK", "{\"status\": \"ok\"}".to_owned()),
        ("GET", "/readyz") => {
            let degraded = shared.metrics.degraded.load(Ordering::Relaxed) != 0;
            let lag = shared.metrics.replication_lag.load(Ordering::Relaxed);
            let role = if shared.follower {
                "follower"
            } else {
                "primary"
            };
            let body = admin::render_ready(
                role,
                !degraded,
                shared.engine.world_version(),
                lag,
                degraded,
            );
            if degraded {
                // Still serving (parses keep working on the last world),
                // but load balancers should prefer healthy replicas.
                Outcome::json(503, "Service Unavailable", body)
            } else {
                Outcome::json(200, "OK", body)
            }
        }
        ("POST" | "GET", _) => Outcome::error(
            404,
            "Not Found",
            "not_found",
            &format!("no such endpoint: {}", request.path),
        ),
        _ => {
            let mut outcome = Outcome::error(
                405,
                "Method Not Allowed",
                "method_not_allowed",
                &format!("method {} is not supported", request.method),
            );
            outcome
                .extra_headers
                .push(("Allow", "GET, POST".to_owned()));
            outcome
        }
    }
}

/// The value of query parameter `name`, verbatim (the admin paths are
/// ASCII; no percent-decoding).
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=')?;
        (key == name).then_some(value)
    })
}

fn decode_body(body: &[u8]) -> Result<Json, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::BadRequest("request body is not UTF-8".into()))?;
    Json::parse(text).map_err(|error| HttpError::BadRequest(format!("malformed JSON: {error}")))
}

fn codec_outcome(error: &HttpError) -> Outcome {
    let (status, reason) = error.status().unwrap_or((400, "Bad Request"));
    Outcome::error(status, reason, error.code(), &error.to_string())
}

fn check_quota(shared: &Shared, peer: IpAddr, cost: f64) -> Option<Outcome> {
    let quota = shared.quota.as_ref()?;
    let Err(exceeded) = quota.try_take(peer, cost, Instant::now()) else {
        return None;
    };
    shared
        .metrics
        .quota_rejections
        .fetch_add(1, Ordering::Relaxed);
    let mut outcome = Outcome::error(
        429,
        "Too Many Requests",
        "quota_exhausted",
        &format!(
            "per-client quota exhausted; retry in {:.3}s",
            exceeded.retry_after_secs
        ),
    );
    outcome.extra_headers.push((
        "Retry-After",
        format!("{}", exceeded.retry_after_secs.ceil().max(1.0) as u64),
    ));
    Some(outcome)
}

fn record_parse_result(shared: &Shared, result: &GenieResult<genie::ParseResponse>) {
    if result.is_ok() {
        shared.metrics.parse_ok.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.metrics.parse_failed.fetch_add(1, Ordering::Relaxed);
    }
}
