//! The socket front-end: bind, accept, route, drain, shut down.
//!
//! # Threading model
//!
//! `worker_threads` acceptor threads share one `TcpListener` (accepting
//! from multiple threads is the classic pre-forked pattern — the kernel
//! load-balances) and each owns its connection for the connection's
//! lifetime, so a request's handler never migrates threads. Parse work
//! does not happen on acceptor threads: single parses queue into the
//! [`crate::coalescer::Coalescer`] (one dispatcher thread, micro-batched
//! through `GenieEngine::parse_batch`), which is where the engine's own
//! deterministic parallelism takes over.
//!
//! # Shutdown
//!
//! [`GenieServer::shutdown`] flips the flag, nudges each blocked acceptor
//! awake with loopback connections, joins the acceptors (each finishes the
//! request it is serving — in-flight requests drain, idle keep-alive
//! connections close within the read timeout), then closes and joins the
//! coalescer (which drains its queue by construction).

use std::io::BufReader;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use genie::live::LiveWorld;
use genie::{EngineStatsHandle, GenieEngine, GenieResult};

use crate::admin;
use crate::api;
use crate::coalescer::Coalescer;
use crate::config::ServerConfig;
use crate::http::{self, HttpError, Request};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::quota::Quota;

struct Shared {
    engine: GenieEngine,
    engine_stats: EngineStatsHandle,
    /// The live world behind the engine, when the server was bound with
    /// [`GenieServer::bind_live`]; `None` makes `/v1/admin/reload` a 503.
    live: Option<Arc<LiveWorld>>,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    quota: Option<Quota>,
    coalescer: Coalescer,
    shutdown: AtomicBool,
}

/// A bound, serving HTTP front-end over a [`GenieEngine`].
///
/// Dropping the server shuts it down gracefully (equivalent to
/// [`GenieServer::shutdown`]).
pub struct GenieServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptors: Vec<JoinHandle<()>>,
}

impl GenieServer {
    /// Bind `config.addr` and start serving `engine`.
    ///
    /// # Errors
    ///
    /// `Error::Config` for an invalid config, `Error::Io` when the socket
    /// cannot be bound.
    pub fn bind(engine: GenieEngine, config: ServerConfig) -> GenieResult<GenieServer> {
        Self::bind_inner(engine, None, config)
    }

    /// Bind `config.addr` and serve a [`LiveWorld`]'s engine, enabling the
    /// live-update admin surface: `POST /v1/admin/reload` applies a skill
    /// delta (incremental re-synthesis + retraining + atomic world swap)
    /// and `GET /v1/admin/version` reports the serving snapshot version.
    /// Requests in flight during a swap finish on the world they started
    /// with; [`GenieServer::shutdown`] drains an in-progress reload like
    /// any other request.
    ///
    /// # Errors
    ///
    /// `Error::Config` for an invalid config, `Error::Io` when the socket
    /// cannot be bound.
    pub fn bind_live(live: Arc<LiveWorld>, config: ServerConfig) -> GenieResult<GenieServer> {
        let engine = live.engine().clone();
        Self::bind_inner(engine, Some(live), config)
    }

    fn bind_inner(
        engine: GenieEngine,
        live: Option<Arc<LiveWorld>>,
        config: ServerConfig,
    ) -> GenieResult<GenieServer> {
        config.validate()?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::default());
        let quota =
            (config.quota_burst > 0).then(|| Quota::new(config.quota_burst, config.quota_per_sec));
        let coalescer = Coalescer::start(
            engine.clone(),
            config.coalesce_window,
            config.max_coalesce_batch,
            metrics.clone(),
        );
        let shared = Arc::new(Shared {
            engine_stats: engine.stats_handle(),
            engine,
            live,
            config,
            metrics,
            quota,
            coalescer,
            shutdown: AtomicBool::new(false),
        });
        let acceptors = (0..shared.config.worker_threads)
            .map(|worker| {
                let shared = shared.clone();
                let listener = listener
                    .try_clone()
                    .expect("cloning a listener cannot fail");
                std::thread::Builder::new()
                    .name(format!("genie-server-{worker}"))
                    .spawn(move || accept_loop(&shared, &listener))
                    .expect("spawning an acceptor cannot fail")
            })
            .collect();
        Ok(GenieServer {
            shared,
            addr,
            acceptors,
        })
    }

    /// The bound address (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current metrics exposition (same text `GET /metrics` serves).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render(&self.shared.engine_stats)
    }

    /// Gracefully stop: refuse new connections, drain in-flight requests
    /// and the coalescer queue, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Nudge acceptors blocked in `accept()` awake until all have
        // exited; a nudge connection is answered by the flag check and
        // dropped. Busy acceptors finish their connection first — that is
        // the drain.
        while !self.acceptors.iter().all(JoinHandle::is_finished) {
            let _ = TcpStream::connect_timeout(&self.addr, std::time::Duration::from_millis(100));
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
        // All handlers are gone; close the queue and drain the dispatcher.
        self.shared.coalescer.shutdown();
    }
}

impl Drop for GenieServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(stream);
                    return;
                }
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                handle_connection(shared, stream, peer);
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (EMFILE, aborted handshake):
                // back off briefly and keep serving.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, peer: SocketAddr) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => {
                shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                let outcome = route(shared, peer.ip(), &request);
                shared
                    .metrics
                    .record_latency(started.elapsed().as_micros() as u64);
                shared.metrics.record_status(outcome.status);
                let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                if http::write_response(
                    &mut stream,
                    outcome.status,
                    outcome.reason,
                    outcome.content_type,
                    outcome.body.as_bytes(),
                    keep_alive,
                    &outcome.extra_headers,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Err(error) => {
                // Codec-level failure: answer when there is an answer to
                // give, then close the connection either way (the stream
                // position is no longer trustworthy).
                if let Some((status, reason)) = error.status() {
                    shared.metrics.record_status(status);
                    let body = format!(
                        "{{\"error\": {{\"code\": {}, \"message\": {}}}}}",
                        crate::json::escape(error.code()),
                        crate::json::escape(&error.to_string()),
                    );
                    let _ = http::write_response(
                        &mut stream,
                        status,
                        reason,
                        "application/json",
                        body.as_bytes(),
                        false,
                        &[],
                    );
                }
                return;
            }
        }
    }
}

struct Outcome {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
    extra_headers: Vec<(&'static str, String)>,
}

impl Outcome {
    fn json(status: u16, reason: &'static str, body: String) -> Outcome {
        Outcome {
            status,
            reason,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    fn error(status: u16, reason: &'static str, code: &str, message: &str) -> Outcome {
        Outcome::json(
            status,
            reason,
            format!(
                "{{\"error\": {{\"code\": {}, \"message\": {}}}}}",
                crate::json::escape(code),
                crate::json::escape(message),
            ),
        )
    }
}

fn route(shared: &Shared, peer: IpAddr, request: &Request) -> Outcome {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/parse") => {
            if let Some(outcome) = check_quota(shared, peer, 1.0) {
                return outcome;
            }
            shared
                .metrics
                .parse_requests
                .fetch_add(1, Ordering::Relaxed);
            let parse_request = match decode_body(&request.body)
                .and_then(|json| api::parse_request_from_json(&json))
            {
                Ok(parse_request) => parse_request,
                Err(error) => return codec_outcome(&error),
            };
            match shared.coalescer.submit(parse_request) {
                Ok(result) => {
                    record_parse_result(shared, &result);
                    let (status, reason, body) = api::render_result(&result);
                    Outcome::json(status, reason, body)
                }
                Err(_) => Outcome::error(
                    503,
                    "Service Unavailable",
                    "shutting_down",
                    "the server is draining and no longer accepts work",
                ),
            }
        }
        ("POST", "/v1/parse_batch") => {
            shared
                .metrics
                .batch_requests
                .fetch_add(1, Ordering::Relaxed);
            let requests = match decode_body(&request.body).and_then(|json| {
                api::parse_batch_from_json(&json, shared.config.max_batch_requests)
            }) {
                Ok(requests) => requests,
                Err(error) => return codec_outcome(&error),
            };
            if let Some(outcome) = check_quota(shared, peer, requests.len() as f64) {
                return outcome;
            }
            // A client-assembled batch is already a batch: it goes straight
            // to the engine's deterministic fan-out, not via the coalescer.
            let results = shared.engine.parse_batch(&requests);
            for result in &results {
                record_parse_result(shared, result);
            }
            Outcome::json(200, "OK", api::render_batch(&results))
        }
        ("POST", "/v1/admin/reload") => {
            shared
                .metrics
                .reload_requests
                .fetch_add(1, Ordering::Relaxed);
            let Some(live) = shared.live.as_ref() else {
                shared.metrics.reload_failed.fetch_add(1, Ordering::Relaxed);
                return Outcome::error(
                    503,
                    "Service Unavailable",
                    "not_live",
                    "this server was not bound to a live world; reload is unavailable",
                );
            };
            let (delta, mode) = match decode_body(&request.body)
                .and_then(|json| admin::skill_delta_from_json(&json))
            {
                Ok(decoded) => decoded,
                Err(error) => {
                    shared.metrics.reload_failed.fetch_add(1, Ordering::Relaxed);
                    return codec_outcome(&error);
                }
            };
            // The rebuild runs on this acceptor thread: reloads serialize
            // on the live world's state lock, requests keep flowing through
            // the other acceptors on the old world, and shutdown drains an
            // in-progress reload by joining this thread.
            match live.reload_with(&delta, mode) {
                Ok(report) => {
                    shared.metrics.reload_ok.fetch_add(1, Ordering::Relaxed);
                    Outcome::json(200, "OK", admin::render_swap_report(&report))
                }
                Err(error) => {
                    shared.metrics.reload_failed.fetch_add(1, Ordering::Relaxed);
                    let (status, reason) = api::status_for_error(&error);
                    Outcome::json(status, reason, api::render_error(&error))
                }
            }
        }
        ("GET", "/v1/admin/version") => Outcome::json(
            200,
            "OK",
            admin::render_version(shared.engine.world_version(), shared.live.is_some()),
        ),
        ("GET", "/metrics") => Outcome {
            status: 200,
            reason: "OK",
            content_type: "text/plain; charset=utf-8",
            body: shared.metrics.render(&shared.engine_stats),
            extra_headers: Vec::new(),
        },
        ("GET", "/healthz") => Outcome::json(200, "OK", "{\"status\": \"ok\"}".to_owned()),
        ("POST" | "GET", _) => Outcome::error(
            404,
            "Not Found",
            "not_found",
            &format!("no such endpoint: {}", request.path),
        ),
        _ => {
            let mut outcome = Outcome::error(
                405,
                "Method Not Allowed",
                "method_not_allowed",
                &format!("method {} is not supported", request.method),
            );
            outcome
                .extra_headers
                .push(("Allow", "GET, POST".to_owned()));
            outcome
        }
    }
}

fn decode_body(body: &[u8]) -> Result<Json, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::BadRequest("request body is not UTF-8".into()))?;
    Json::parse(text).map_err(|error| HttpError::BadRequest(format!("malformed JSON: {error}")))
}

fn codec_outcome(error: &HttpError) -> Outcome {
    let (status, reason) = error.status().unwrap_or((400, "Bad Request"));
    Outcome::error(status, reason, error.code(), &error.to_string())
}

fn check_quota(shared: &Shared, peer: IpAddr, cost: f64) -> Option<Outcome> {
    let quota = shared.quota.as_ref()?;
    let Err(exceeded) = quota.try_take(peer, cost, Instant::now()) else {
        return None;
    };
    shared
        .metrics
        .quota_rejections
        .fetch_add(1, Ordering::Relaxed);
    let mut outcome = Outcome::error(
        429,
        "Too Many Requests",
        "quota_exhausted",
        &format!(
            "per-client quota exhausted; retry in {:.3}s",
            exceeded.retry_after_secs
        ),
    );
    outcome.extra_headers.push((
        "Retry-After",
        format!("{}", exceeded.retry_after_secs.ceil().max(1.0) as u64),
    ));
    Some(outcome)
}

fn record_parse_result(shared: &Shared, result: &GenieResult<genie::ParseResponse>) {
    if result.is_ok() {
        shared.metrics.parse_ok.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.metrics.parse_failed.fetch_add(1, Ordering::Relaxed);
    }
}
