//! Serving counters and the `GET /metrics` text rendering.
//!
//! All counters are relaxed atomics — incrementing one is a handful of
//! nanoseconds on the request path, and a scrape is a read-only snapshot.
//! Engine-side counters (requests / cache hits / rejected candidates) are
//! **not** shadow-counted here: the server holds the engine's own
//! [`genie::EngineStatsHandle`] and folds its snapshot into the rendering,
//! so `/metrics` sees exactly what the engine saw (including cache hits on
//! requests that raced each other into one coalesced batch).
//!
//! The exposition format is flat text, one `name value` pair per line in a
//! fixed order — trivially diffable, greppable, and parseable by the CI
//! gate without a JSON parser on the scrape side.

use std::sync::atomic::{AtomicU64, Ordering};

use genie::EngineStatsHandle;

/// The server's own counters (monotonic since boot).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// HTTP requests successfully parsed off the wire.
    pub http_requests: AtomicU64,
    /// `POST /v1/parse` requests routed.
    pub parse_requests: AtomicU64,
    /// `POST /v1/parse_batch` requests routed.
    pub batch_requests: AtomicU64,
    /// Utterances answered 2xx (single or within a batch).
    pub parse_ok: AtomicU64,
    /// Utterances answered with a typed parse error (within 2xx batch
    /// responses or 422 singles).
    pub parse_failed: AtomicU64,
    /// Responses with a 4xx status (codec errors, quota, unknown routes).
    pub http_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub http_5xx: AtomicU64,
    /// Requests rejected by the per-client quota (subset of `http_4xx`).
    pub quota_rejections: AtomicU64,
    /// Micro-batches the coalescer dispatched.
    pub coalesce_batches: AtomicU64,
    /// Single requests served through those micro-batches.
    pub coalesced_requests: AtomicU64,
    /// Largest micro-batch dispatched so far.
    pub coalesce_max_batch: AtomicU64,
    /// Sum of request handling latency, µs (route + engine + render).
    pub latency_us_sum: AtomicU64,
    /// Number of latency observations.
    pub latency_us_count: AtomicU64,
    /// `POST /v1/admin/reload` requests routed.
    pub reload_requests: AtomicU64,
    /// Reloads that completed and swapped a new world in.
    pub reload_ok: AtomicU64,
    /// Reloads rejected (no live world, bad body, busy) or failed
    /// mid-rebuild — every failed reload left the old world serving.
    pub reload_failed: AtomicU64,
    /// Request handlers (or the coalescer dispatcher) that panicked and
    /// were caught by supervision; each cost one `500` or one dropped
    /// batch, never the process.
    pub panics: AtomicU64,
    /// Dead acceptor threads respawned by the supervisor watchdog.
    pub acceptor_respawns: AtomicU64,
    /// Requests shed by the overload admission gate (`503` + `Retry-After`;
    /// disjoint from `quota_rejections`' `429`s).
    pub shed: AtomicU64,
    /// Requests that blew their deadline budget and answered `504`.
    pub deadline_exceeded: AtomicU64,
    /// Replication polls a follower issued against its primary.
    pub replication_polls: AtomicU64,
    /// Journal records a follower applied from its primary.
    pub replication_applied: AtomicU64,
    /// Bundle resyncs a follower performed (too far behind for
    /// record-by-record catch-up).
    pub replication_resyncs: AtomicU64,
    /// Replication poll/apply attempts that failed (primary unreachable,
    /// protocol error, or a rejected record).
    pub replication_errors: AtomicU64,
    /// Gauge: how many world versions the follower currently trails its
    /// primary by (0 when caught up or not a follower).
    pub replication_lag: AtomicU64,
    /// Gauge: 1 while a follower serves in degraded mode (its primary has
    /// been unreachable past the retry budget), 0 otherwise.
    pub degraded: AtomicU64,
}

impl Metrics {
    /// Record one dispatched micro-batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.coalesce_batches.fetch_add(1, Ordering::Relaxed);
        self.coalesced_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.coalesce_max_batch
            .fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Record one handled request's latency.
    pub fn record_latency(&self, micros: u64) {
        self.latency_us_sum.fetch_add(micros, Ordering::Relaxed);
        self.latency_us_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a response by its status code.
    pub fn record_status(&self, status: u16) {
        if (400..500).contains(&status) {
            self.http_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.http_5xx.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Render the flat text exposition, folding in the engine's counters.
    pub fn render(&self, engine: &EngineStatsHandle) -> String {
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        let engine_stats = engine.snapshot();
        let pairs: [(&str, u64); 34] = [
            ("server_connections_total", load(&self.connections)),
            ("server_http_requests_total", load(&self.http_requests)),
            ("server_parse_requests_total", load(&self.parse_requests)),
            ("server_batch_requests_total", load(&self.batch_requests)),
            ("server_parse_ok_total", load(&self.parse_ok)),
            ("server_parse_failed_total", load(&self.parse_failed)),
            ("server_http_4xx_total", load(&self.http_4xx)),
            ("server_http_5xx_total", load(&self.http_5xx)),
            (
                "server_quota_rejections_total",
                load(&self.quota_rejections),
            ),
            (
                "server_coalesce_batches_total",
                load(&self.coalesce_batches),
            ),
            (
                "server_coalesced_requests_total",
                load(&self.coalesced_requests),
            ),
            ("server_coalesce_max_batch", load(&self.coalesce_max_batch)),
            ("server_latency_us_sum", load(&self.latency_us_sum)),
            ("server_latency_us_count", load(&self.latency_us_count)),
            ("server_reload_requests_total", load(&self.reload_requests)),
            ("server_reload_ok_total", load(&self.reload_ok)),
            ("server_reload_failed_total", load(&self.reload_failed)),
            ("server_panics_total", load(&self.panics)),
            (
                "server_acceptor_respawns_total",
                load(&self.acceptor_respawns),
            ),
            ("server_shed_total", load(&self.shed)),
            (
                "server_deadline_exceeded_total",
                load(&self.deadline_exceeded),
            ),
            (
                "server_replication_polls_total",
                load(&self.replication_polls),
            ),
            (
                "server_replication_applied_total",
                load(&self.replication_applied),
            ),
            (
                "server_replication_resyncs_total",
                load(&self.replication_resyncs),
            ),
            (
                "server_replication_errors_total",
                load(&self.replication_errors),
            ),
            ("server_replication_lag", load(&self.replication_lag)),
            ("server_degraded", load(&self.degraded)),
            ("engine_requests_total", engine_stats.requests),
            ("engine_cache_hits_total", engine_stats.cache_hits),
            (
                "engine_rejected_candidates_total",
                engine_stats.rejected_candidates,
            ),
            (
                "engine_cache_misses_total",
                engine_stats.requests - engine_stats.cache_hits.min(engine_stats.requests),
            ),
            ("world_version", engine_stats.world_version),
            ("world_swaps_total", engine_stats.swaps),
            ("world_last_swap_us", engine_stats.last_swap_us),
        ];
        let mut out = String::with_capacity(pairs.len() * 40);
        for (name, value) in pairs {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_and_latency_accumulate() {
        let metrics = Metrics::default();
        metrics.record_batch(3);
        metrics.record_batch(7);
        metrics.record_batch(2);
        assert_eq!(metrics.coalesce_batches.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.coalesced_requests.load(Ordering::Relaxed), 12);
        assert_eq!(metrics.coalesce_max_batch.load(Ordering::Relaxed), 7);
        metrics.record_latency(100);
        metrics.record_latency(250);
        assert_eq!(metrics.latency_us_sum.load(Ordering::Relaxed), 350);
        assert_eq!(metrics.latency_us_count.load(Ordering::Relaxed), 2);
        metrics.record_status(200);
        metrics.record_status(404);
        metrics.record_status(429);
        metrics.record_status(500);
        assert_eq!(metrics.http_4xx.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.http_5xx.load(Ordering::Relaxed), 1);
    }
}
