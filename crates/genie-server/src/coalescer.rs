//! The micro-batch coalescing queue.
//!
//! Concurrent `POST /v1/parse` requests land here as jobs. One dispatcher
//! thread gathers jobs under the configured latency budget (or until the
//! batch cap) and serves the whole micro-batch through
//! [`genie::GenieEngine::parse_batch`] — the deterministic batch path
//! (an order-preserving `genie-parallel` fan-out of the same per-request
//! pipeline `predict_topk_batch` maps over, sharing the engine's response
//! cache). Each response is a pure function of its own request, so **which
//! requests happen to share a micro-batch can change latency and
//! amortization, never content** — the property the end-to-end determinism
//! tests pin at worker counts {1, 2, 8}.
//!
//! # Deadlines
//!
//! Every job carries its request's deadline. The submitter waits with
//! `recv_timeout` and answers a typed `504` past it; the dispatcher skips
//! jobs that are already expired when their batch forms, so a stalled
//! pipeline cannot also waste engine work on answers nobody is waiting for.
//!
//! # Supervision
//!
//! The per-batch work runs under `catch_unwind`: a panic (the
//! `coalescer.flush` failpoint injects them in chaos runs) costs that one
//! batch — its submitters get a typed `500` via [`SubmitError::Crashed`] —
//! and the dispatcher keeps serving. Shutdown stays drain-by-construction:
//! closing the job channel lets the dispatcher serve everything already
//! queued, then exit; `shutdown()` joins it.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use genie::{GenieEngine, GenieResult, ParseRequest, ParseResponse};

use crate::metrics::Metrics;
use std::sync::Arc;

/// One queued request and the channel its response travels back on.
struct Job {
    request: ParseRequest,
    deadline: Instant,
    reply: mpsc::SyncSender<GenieResult<ParseResponse>>,
}

/// Why a submission produced no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is shutting down and the queue is closed. The HTTP layer
    /// answers `503`.
    ShuttingDown,
    /// The request's deadline budget elapsed before its batch completed.
    /// The HTTP layer answers `504`.
    DeadlineExceeded,
    /// The dispatcher dropped this job's reply without answering — its
    /// batch panicked mid-dispatch. The HTTP layer answers `500`.
    Crashed,
}

/// Handle to the dispatcher thread.
pub struct Coalescer {
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl Coalescer {
    /// Start the dispatcher over `engine`.
    ///
    /// # Errors
    ///
    /// The underlying thread-spawn failure, when the OS refuses a thread.
    pub fn start(
        engine: GenieEngine,
        window: Duration,
        max_batch: usize,
        metrics: Arc<Metrics>,
    ) -> io::Result<Coalescer> {
        let (sender, receiver) = mpsc::channel::<Job>();
        let dispatcher = std::thread::Builder::new()
            .name("genie-coalescer".to_owned())
            .spawn(move || dispatch_loop(&engine, &receiver, window, max_batch, &metrics))?;
        Ok(Coalescer {
            sender: Mutex::new(Some(sender)),
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }

    /// Submit one request and block until its response is computed or
    /// `deadline` passes.
    ///
    /// # Errors
    ///
    /// A [`SubmitError`] when no response will come (the caller answers a
    /// typed 5xx); the inner [`GenieResult`] carries per-request parse
    /// errors.
    pub fn submit(
        &self,
        request: ParseRequest,
        deadline: Instant,
    ) -> Result<GenieResult<ParseResponse>, SubmitError> {
        let (reply, response) = mpsc::sync_channel(1);
        let sender = {
            let guard = self.sender.lock().unwrap_or_else(|e| e.into_inner());
            guard.clone()
        };
        let Some(sender) = sender else {
            return Err(SubmitError::ShuttingDown);
        };
        sender
            .send(Job {
                request,
                deadline,
                reply,
            })
            .map_err(|_| SubmitError::ShuttingDown)?;
        let now = Instant::now();
        let Some(budget) = deadline
            .checked_duration_since(now)
            .filter(|b| !b.is_zero())
        else {
            return Err(SubmitError::DeadlineExceeded);
        };
        match response.recv_timeout(budget) {
            Ok(result) => Ok(result),
            Err(RecvTimeoutError::Timeout) => Err(SubmitError::DeadlineExceeded),
            // The dispatcher replies exactly once per accepted job, even
            // while draining; a disconnect without a reply means its batch
            // panicked — or the job was dropped as already expired, in
            // which case the deadline verdict is the truthful one.
            Err(RecvTimeoutError::Disconnected) => {
                if Instant::now() >= deadline {
                    Err(SubmitError::DeadlineExceeded)
                } else {
                    Err(SubmitError::Crashed)
                }
            }
        }
    }

    /// Close the queue, let the dispatcher drain everything queued, and
    /// join it. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut guard = self.sender.lock().unwrap_or_else(|e| e.into_inner());
            guard.take();
        }
        let dispatcher = {
            let mut guard = self.dispatcher.lock().unwrap_or_else(|e| e.into_inner());
            guard.take()
        };
        if let Some(handle) = dispatcher {
            let _ = handle.join();
        }
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(
    engine: &GenieEngine,
    receiver: &mpsc::Receiver<Job>,
    window: Duration,
    max_batch: usize,
    metrics: &Metrics,
) {
    loop {
        // Block for the batch's first request…
        let Ok(first) = receiver.recv() else {
            return; // queue closed and fully drained
        };
        let mut batch = vec![first];
        // …then gather whatever else arrives inside the latency budget.
        let gather_deadline = Instant::now() + window;
        while batch.len() < max_batch {
            let now = Instant::now();
            let Some(budget) = gather_deadline
                .checked_duration_since(now)
                .filter(|b| !b.is_zero())
            else {
                break;
            };
            match receiver.recv_timeout(budget) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Jobs already past their deadline get dropped here: their
        // submitters have answered 504 and gone, and the engine should not
        // burn a batch slot computing for nobody.
        let now = Instant::now();
        batch.retain(|job| job.deadline > now);
        if batch.is_empty() {
            continue;
        }
        // A panic below (e.g. the `coalescer.flush` failpoint) costs this
        // one batch — the dropped reply senders surface as typed 500s at
        // the submitters — and the dispatcher keeps serving.
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            if let Err(error) = genie_nlp::failpoint::fail_io("coalescer.flush") {
                for job in &batch {
                    let _ = job
                        .reply
                        .send(Err(genie::Error::Io(io::Error::other(error.to_string()))));
                }
                return;
            }
            metrics.record_batch(batch.len());
            let requests: Vec<ParseRequest> = batch.iter().map(|job| job.request.clone()).collect();
            let results = engine.parse_batch(&requests);
            for (job, result) in batch.iter().zip(results) {
                // A submitter that gave up (connection died) just drops its
                // receiver; failing to deliver is not an error.
                let _ = job.reply.send(result);
            }
        }))
        .is_err();
        if crashed {
            metrics
                .panics
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}
