//! The micro-batch coalescing queue.
//!
//! Concurrent `POST /v1/parse` requests land here as jobs. One dispatcher
//! thread gathers jobs under the configured latency budget (or until the
//! batch cap) and serves the whole micro-batch through
//! [`genie::GenieEngine::parse_batch`] — the deterministic batch path
//! (an order-preserving `genie-parallel` fan-out of the same per-request
//! pipeline `predict_topk_batch` maps over, sharing the engine's response
//! cache). Each response is a pure function of its own request, so **which
//! requests happen to share a micro-batch can change latency and
//! amortization, never content** — the property the end-to-end determinism
//! tests pin at worker counts {1, 2, 8}.
//!
//! Shutdown is drain-by-construction: closing the job channel lets the
//! dispatcher serve everything already queued, then exit; `shutdown()`
//! joins it.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use genie::{GenieEngine, GenieResult, ParseRequest, ParseResponse};

use crate::metrics::Metrics;
use std::sync::Arc;

/// One queued request and the channel its response travels back on.
struct Job {
    request: ParseRequest,
    reply: mpsc::SyncSender<GenieResult<ParseResponse>>,
}

/// The submission error: the server is shutting down and the queue is
/// closed. The HTTP layer answers `503`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuttingDown;

/// Handle to the dispatcher thread.
pub struct Coalescer {
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl Coalescer {
    /// Start the dispatcher over `engine`.
    pub fn start(
        engine: GenieEngine,
        window: Duration,
        max_batch: usize,
        metrics: Arc<Metrics>,
    ) -> Coalescer {
        let (sender, receiver) = mpsc::channel::<Job>();
        let dispatcher = std::thread::Builder::new()
            .name("genie-coalescer".to_owned())
            .spawn(move || dispatch_loop(&engine, &receiver, window, max_batch, &metrics))
            .expect("spawning the coalescer dispatcher cannot fail");
        Coalescer {
            sender: Mutex::new(Some(sender)),
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Submit one request and block until its response is computed.
    ///
    /// # Errors
    ///
    /// `Err(ShuttingDown)` when the queue is closed (the caller answers
    /// `503`); the inner [`GenieResult`] carries per-request parse errors.
    pub fn submit(
        &self,
        request: ParseRequest,
    ) -> Result<GenieResult<ParseResponse>, ShuttingDown> {
        let (reply, response) = mpsc::sync_channel(1);
        let sender = {
            let guard = self.sender.lock().unwrap_or_else(|e| e.into_inner());
            guard.clone()
        };
        let Some(sender) = sender else {
            return Err(ShuttingDown);
        };
        sender
            .send(Job { request, reply })
            .map_err(|_| ShuttingDown)?;
        // The dispatcher replies exactly once per accepted job (even while
        // draining); a disconnect without a reply means it is gone.
        response.recv().map_err(|_| ShuttingDown)
    }

    /// Close the queue, let the dispatcher drain everything queued, and
    /// join it. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut guard = self.sender.lock().unwrap_or_else(|e| e.into_inner());
            guard.take();
        }
        let dispatcher = {
            let mut guard = self.dispatcher.lock().unwrap_or_else(|e| e.into_inner());
            guard.take()
        };
        if let Some(handle) = dispatcher {
            let _ = handle.join();
        }
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(
    engine: &GenieEngine,
    receiver: &mpsc::Receiver<Job>,
    window: Duration,
    max_batch: usize,
    metrics: &Metrics,
) {
    loop {
        // Block for the batch's first request…
        let Ok(first) = receiver.recv() else {
            return; // queue closed and fully drained
        };
        let mut batch = vec![first];
        // …then gather whatever else arrives inside the latency budget.
        let deadline = Instant::now() + window;
        while batch.len() < max_batch {
            let now = Instant::now();
            let Some(budget) = deadline
                .checked_duration_since(now)
                .filter(|b| !b.is_zero())
            else {
                break;
            };
            match receiver.recv_timeout(budget) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        metrics.record_batch(batch.len());
        let requests: Vec<ParseRequest> = batch.iter().map(|job| job.request.clone()).collect();
        let results = engine.parse_batch(&requests);
        for (job, result) in batch.into_iter().zip(results) {
            // A submitter that gave up (connection died) just drops its
            // receiver; failing to deliver is not an error.
            let _ = job.reply.send(result);
        }
    }
}
