//! The validating [`ServerConfig`] builder.
//!
//! Same philosophy as `GeneratorConfig` / `PipelineConfig`: every knob a
//! hostile or fat-fingered deployment could set to something dangerous is
//! validated at `build()` into a typed [`ConfigError`] (which converts
//! into `genie::Error::Config`), so a misconfigured server can never bind
//! a socket.

use std::time::Duration;

use genie_templates::ConfigError;

/// Default micro-batch latency budget.
pub const DEFAULT_COALESCE_WINDOW: Duration = Duration::from_millis(2);
/// Default cap on one coalesced micro-batch.
pub const DEFAULT_MAX_COALESCE_BATCH: usize = 32;
/// Default cap on a request body.
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 * 1024;
/// Default cap on the number of utterances in one `/v1/parse_batch`.
pub const DEFAULT_MAX_BATCH_REQUESTS: usize = 64;
/// Default socket read timeout (also the slow-write budget).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Default acceptor/handler thread count.
pub const DEFAULT_WORKER_THREADS: usize = 4;
/// Default cap on concurrently admitted parse requests (the overload
/// shedding gate); generous enough that only a genuine pile-up sheds.
pub const DEFAULT_MAX_INFLIGHT: usize = 512;
/// Default per-request deadline budget (coalescer wait + batch execution).
pub const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// The server's validated configuration. Construct via
/// [`ServerConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Acceptor/handler threads (each owns one connection at a time).
    pub worker_threads: usize,
    /// Latency budget under which concurrent single requests coalesce
    /// into one micro-batch. Zero disables the wait (each batch takes
    /// whatever is already queued).
    pub coalesce_window: Duration,
    /// Most single requests in one coalesced micro-batch.
    pub max_coalesce_batch: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Most utterances accepted in one `/v1/parse_batch` request.
    pub max_batch_requests: usize,
    /// Socket read timeout: the budget a client has to deliver each
    /// request (slow writes past it get `408`), and the idle keep-alive
    /// lifetime.
    pub read_timeout: Duration,
    /// Token-bucket burst per client IP; `0` disables quotas.
    pub quota_burst: u32,
    /// Token-bucket refill rate per client IP, tokens/second.
    pub quota_per_sec: f64,
    /// Cap on parse requests admitted concurrently (queued in the
    /// coalescer or executing). Past it the server **sheds** with a `503`
    /// and `Retry-After` instead of queueing unboundedly; `0` disables the
    /// gate.
    pub max_inflight: usize,
    /// Per-request deadline budget: a single parse that cannot complete
    /// (coalescer wait included) inside it answers a typed `504` instead of
    /// stalling its keep-alive pipeline.
    pub request_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            worker_threads: DEFAULT_WORKER_THREADS,
            coalesce_window: DEFAULT_COALESCE_WINDOW,
            max_coalesce_batch: DEFAULT_MAX_COALESCE_BATCH,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            max_batch_requests: DEFAULT_MAX_BATCH_REQUESTS,
            read_timeout: DEFAULT_READ_TIMEOUT,
            quota_burst: 0,
            quota_per_sec: 0.0,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            request_deadline: DEFAULT_REQUEST_DEADLINE,
        }
    }
}

impl ServerConfig {
    /// Start building a config.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// Re-validate an assembled config (builders call this from `build`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.worker_threads == 0 || self.worker_threads > 1024 {
            return Err(ConfigError::new(
                "worker_threads",
                format!("must be in 1..=1024, got {}", self.worker_threads),
            ));
        }
        if self.coalesce_window > Duration::from_secs(1) {
            return Err(ConfigError::new(
                "coalesce_window",
                "a coalescing budget above 1s is a stall, not a batch",
            ));
        }
        if self.max_coalesce_batch == 0 || self.max_coalesce_batch > 4096 {
            return Err(ConfigError::new(
                "max_coalesce_batch",
                format!("must be in 1..=4096, got {}", self.max_coalesce_batch),
            ));
        }
        if self.max_body_bytes == 0 || self.max_body_bytes > 16 * 1024 * 1024 {
            return Err(ConfigError::new(
                "max_body_bytes",
                format!("must be in 1..=16MiB, got {}", self.max_body_bytes),
            ));
        }
        if self.max_batch_requests == 0 || self.max_batch_requests > 4096 {
            return Err(ConfigError::new(
                "max_batch_requests",
                format!("must be in 1..=4096, got {}", self.max_batch_requests),
            ));
        }
        if self.read_timeout.is_zero() || self.read_timeout > Duration::from_secs(300) {
            return Err(ConfigError::new(
                "read_timeout",
                "must be positive and at most 300s",
            ));
        }
        if !self.quota_per_sec.is_finite() || self.quota_per_sec < 0.0 {
            return Err(ConfigError::new(
                "quota_per_sec",
                format!(
                    "must be a finite non-negative rate, got {}",
                    self.quota_per_sec
                ),
            ));
        }
        if self.quota_burst > 0 && self.quota_per_sec == 0.0 {
            return Err(ConfigError::new(
                "quota_per_sec",
                "a non-zero quota burst needs a non-zero refill rate",
            ));
        }
        if self.max_inflight > 1 << 20 {
            return Err(ConfigError::new(
                "max_inflight",
                format!("must be at most 2^20, got {}", self.max_inflight),
            ));
        }
        if self.request_deadline.is_zero() || self.request_deadline > Duration::from_secs(600) {
            return Err(ConfigError::new(
                "request_deadline",
                "must be positive and at most 600s",
            ));
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`]; `build()` validates.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Address to bind (e.g. `"127.0.0.1:8400"`, port `0` = ephemeral).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Acceptor/handler threads.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.config.worker_threads = threads;
        self
    }

    /// Micro-batch latency budget (zero = no added wait).
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.config.coalesce_window = window;
        self
    }

    /// Cap on one coalesced micro-batch.
    pub fn max_coalesce_batch(mut self, size: usize) -> Self {
        self.config.max_coalesce_batch = size;
        self
    }

    /// Cap on a request body, bytes.
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.config.max_body_bytes = bytes;
        self
    }

    /// Cap on utterances per `/v1/parse_batch`.
    pub fn max_batch_requests(mut self, requests: usize) -> Self {
        self.config.max_batch_requests = requests;
        self
    }

    /// Socket read timeout / slow-write budget.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Per-client token-bucket quota: `burst` tokens, refilled at
    /// `per_sec`. A burst of `0` disables quotas.
    pub fn quota(mut self, burst: u32, per_sec: f64) -> Self {
        self.config.quota_burst = burst;
        self.config.quota_per_sec = per_sec;
        self
    }

    /// Overload-shedding cap on concurrently admitted parse requests
    /// (`0` disables the gate).
    pub fn max_inflight(mut self, requests: usize) -> Self {
        self.config.max_inflight = requests;
        self
    }

    /// Per-request deadline budget (coalescer wait + execution).
    pub fn request_deadline(mut self, deadline: Duration) -> Self {
        self.config.request_deadline = deadline;
        self
    }

    /// Validate and return the config.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let config = ServerConfig::builder().build().unwrap();
        assert_eq!(config.coalesce_window, DEFAULT_COALESCE_WINDOW);
        assert_eq!(config.worker_threads, DEFAULT_WORKER_THREADS);
        assert_eq!(config.quota_burst, 0);
    }

    #[test]
    fn out_of_range_knobs_are_typed_errors() {
        assert!(ServerConfig::builder().worker_threads(0).build().is_err());
        assert!(ServerConfig::builder()
            .worker_threads(9999)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .coalesce_window(Duration::from_secs(10))
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .max_coalesce_batch(0)
            .build()
            .is_err());
        assert!(ServerConfig::builder().max_body_bytes(0).build().is_err());
        assert!(ServerConfig::builder()
            .max_body_bytes(1 << 30)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .max_batch_requests(0)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .read_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServerConfig::builder().quota(4, f64::NAN).build().is_err());
        assert!(ServerConfig::builder().quota(4, -1.0).build().is_err());
        assert!(ServerConfig::builder().quota(4, 0.0).build().is_err());
        assert!(ServerConfig::builder()
            .max_inflight((1 << 20) + 1)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .request_deadline(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .request_deadline(Duration::from_secs(3600))
            .build()
            .is_err());
        // The errors name the offending field.
        let error = ServerConfig::builder().quota(4, 0.0).build().unwrap_err();
        assert!(error.to_string().contains("quota_per_sec"));
    }

    #[test]
    fn quota_disabled_by_zero_burst_is_valid() {
        let config = ServerConfig::builder().quota(0, 0.0).build().unwrap();
        assert_eq!(config.quota_burst, 0);
    }
}
