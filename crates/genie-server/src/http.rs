//! A bounds-checked HTTP/1.1 codec over blocking streams.
//!
//! This is deliberately *not* a general HTTP implementation — it is the
//! smallest codec that serves the three endpoints safely against hostile
//! bytes, in the same philosophy as `genie::Error::CorruptArtifact`: the
//! transport was readable, the bytes were not, and that difference must be
//! a typed error ([`HttpError`]) — never a panic, never an unbounded read,
//! never a hang past the configured timeouts.
//!
//! Limits enforced while *reading* (before any allocation proportional to
//! attacker input): request-line and header-line length, header count,
//! declared and actual body size. Timeouts come from the socket's
//! `read_timeout`; the codec distinguishes an **idle** timeout (keep-alive
//! connection with no next request — close quietly) from a **mid-request**
//! timeout (slow-write attack — answer `408` and close).

use std::io::{BufRead, Write};

/// Longest accepted request line (method + path + version).
pub const MAX_REQUEST_LINE_BYTES: usize = 4096;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE_BYTES: usize = 4096;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted request path.
pub const MAX_PATH_BYTES: usize = 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verbatim (e.g. `GET`, `POST`).
    pub method: String,
    /// The path verbatim (no percent-decoding; the API paths are ASCII).
    pub path: String,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Everything that can go wrong reading a request. Variants with a
/// [`HttpError::status`] are answered on the wire; the rest close the
/// connection silently (there is nobody left to answer).
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or body framing → `400`.
    BadRequest(String),
    /// A body-carrying method without `Content-Length` → `411`.
    LengthRequired,
    /// Declared body larger than the server accepts → `413`.
    PayloadTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// Request path longer than [`MAX_PATH_BYTES`] → `414`.
    UriTooLong,
    /// The peer stalled mid-request past the read timeout → `408`.
    Timeout,
    /// The peer went idle between keep-alive requests; close quietly.
    IdleTimeout,
    /// The peer closed the connection cleanly before a request started.
    Closed,
    /// A transport error; close quietly.
    Io(std::io::Error),
}

impl HttpError {
    /// The `(status, reason)` to answer with, or `None` when the
    /// connection should just close.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            HttpError::PayloadTooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::UriTooLong => Some((414, "URI Too Long")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::IdleTimeout | HttpError::Closed | HttpError::Io(_) => None,
        }
    }

    /// A short machine-readable code for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::BadRequest(_) => "bad_request",
            HttpError::LengthRequired => "length_required",
            HttpError::PayloadTooLarge { .. } => "payload_too_large",
            HttpError::UriTooLong => "uri_too_long",
            HttpError::Timeout => "timeout",
            HttpError::IdleTimeout => "idle_timeout",
            HttpError::Closed => "closed",
            HttpError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            HttpError::LengthRequired => write!(f, "Content-Length required"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the limit of {limit}"
                )
            }
            HttpError::UriTooLong => write!(f, "request path too long"),
            HttpError::Timeout => write!(f, "timed out reading the request"),
            HttpError::IdleTimeout => write!(f, "idle keep-alive connection"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(error) => write!(f, "i/o error: {error}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn is_timeout(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one `\n`-terminated line of at most `limit` bytes (CR stripped).
///
/// `Ok(None)` is a clean EOF before the first byte; EOF mid-line is a
/// `BadRequest`. A socket timeout maps to [`HttpError::Timeout`] when any
/// bytes of the line had arrived (including bytes of earlier lines:
/// `started`), [`HttpError::IdleTimeout`] otherwise.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    limit: usize,
    started: bool,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && !started {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("unexpected end of stream".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header bytes".into()))?;
                    return Ok(Some(text));
                }
                if line.len() >= limit {
                    return Err(HttpError::BadRequest("header line too long".into()));
                }
                line.push(byte[0]);
            }
            Err(error) if is_timeout(&error) => {
                if line.is_empty() && !started {
                    return Err(HttpError::IdleTimeout);
                }
                return Err(HttpError::Timeout);
            }
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(error) => return Err(HttpError::Io(error)),
        }
    }
}

/// Read one request from `reader`, enforcing every size limit while
/// reading. `Ok(None)` means the peer closed cleanly between requests.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line_limited(reader, MAX_REQUEST_LINE_BYTES, false)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version), None) => (method, path, version),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line: `{}`",
                request_line.escape_debug()
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{}`",
            version.escape_debug()
        )));
    }
    if path.len() > MAX_PATH_BYTES {
        return Err(HttpError::UriTooLong);
    }
    let method = method.to_owned();
    let path = path.to_owned();

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length: Option<usize> = None;
    let mut headers_seen = 0usize;
    loop {
        let line = read_line_limited(reader, MAX_HEADER_LINE_BYTES, true)?
            .ok_or_else(|| HttpError::BadRequest("stream ended inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header: `{}`",
                line.escape_debug()
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let length: usize = value.parse().map_err(|_| {
                    HttpError::BadRequest(format!(
                        "unparseable Content-Length `{}`",
                        value.escape_debug()
                    ))
                })?;
                content_length = Some(length);
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                // Chunked bodies are out of scope for the API surface; a
                // typed rejection beats silently mis-framing the stream.
                return Err(HttpError::BadRequest(
                    "Transfer-Encoding is not supported; send Content-Length".into(),
                ));
            }
            _ => {}
        }
    }

    let body = match content_length {
        Some(declared) if declared > max_body_bytes => {
            return Err(HttpError::PayloadTooLarge {
                declared,
                limit: max_body_bytes,
            });
        }
        Some(declared) => {
            let mut body = vec![0u8; declared];
            let mut filled = 0usize;
            while filled < declared {
                match reader.read(&mut body[filled..]) {
                    Ok(0) => {
                        return Err(HttpError::BadRequest(
                            "body shorter than Content-Length".into(),
                        ))
                    }
                    Ok(n) => filled += n,
                    Err(error) if is_timeout(&error) => return Err(HttpError::Timeout),
                    Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(error) => return Err(HttpError::Io(error)),
                }
            }
            body
        }
        None if method == "POST" || method == "PUT" || method == "PATCH" => {
            return Err(HttpError::LengthRequired);
        }
        None => Vec::new(),
    };

    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// One parsed response — the *client* side of the codec, used by the
/// follower's replication poller against a primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Read one response from `reader`, enforcing the same line/header limits
/// as [`read_request`] and capping the body at `max_body_bytes`. The
/// server end of this codec always frames with `Content-Length`, so a
/// short read is a typed error, never a silent truncation.
pub fn read_response<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> Result<Response, HttpError> {
    let status_line = read_line_limited(reader, MAX_REQUEST_LINE_BYTES, false)?
        .ok_or_else(|| HttpError::BadRequest("stream closed before a status line".into()))?;
    let mut parts = status_line.split(' ').filter(|p| !p.is_empty());
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => {
            code.parse().map_err(|_| {
                HttpError::BadRequest(format!("unparseable status code `{}`", code.escape_debug()))
            })?
        }
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed status line: `{}`",
                status_line.escape_debug()
            )))
        }
    };
    let mut content_length: Option<usize> = None;
    let mut headers_seen = 0usize;
    loop {
        let line = read_line_limited(reader, MAX_HEADER_LINE_BYTES, true)?
            .ok_or_else(|| HttpError::BadRequest("stream ended inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers".into()));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let length: usize = value.trim().parse().map_err(|_| {
                    HttpError::BadRequest(format!(
                        "unparseable Content-Length `{}`",
                        value.trim().escape_debug()
                    ))
                })?;
                content_length = Some(length);
            }
        }
    }
    let declared = content_length
        .ok_or_else(|| HttpError::BadRequest("response without Content-Length".into()))?;
    if declared > max_body_bytes {
        return Err(HttpError::PayloadTooLarge {
            declared,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; declared];
    let mut filled = 0usize;
    while filled < declared {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(HttpError::BadRequest(
                    "response body shorter than Content-Length".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(error) if is_timeout(&error) => return Err(HttpError::Timeout),
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(error) => return Err(HttpError::Io(error)),
        }
    }
    Ok(Response { status, body })
}

/// Write one response. The body is always fully framed with
/// `Content-Length`, so pipelined clients can delimit responses.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_a_post_with_body_and_keep_alive_default() {
        let wire = b"POST /v1/parse HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let request = read(wire).unwrap().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/parse");
        assert_eq!(request.body, b"hello");
        assert!(request.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let wire = b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!read(wire).unwrap().unwrap().keep_alive);
        let wire10 = b"GET /metrics HTTP/1.0\r\n\r\n";
        assert!(!read(wire10).unwrap().unwrap().keep_alive);
    }

    #[test]
    fn clean_eof_before_a_request_is_none() {
        assert!(read(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_request_line_is_bad_request() {
        // Stream ends mid-line: typed 400, not a hang or a panic.
        let error = read(b"POST /v1/parse HT").unwrap_err();
        assert!(matches!(error, HttpError::BadRequest(_)));
        assert_eq!(error.status(), Some((400, "Bad Request")));
    }

    #[test]
    fn garbage_request_lines_are_bad_requests() {
        for wire in [
            &b"\x00\x01\x02\x03\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /too many words HTTP/1.1 extra\r\n\r\n",
            b"GET / SMTP/1.0\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"\xff\xfe garbage\r\n\r\n",
        ] {
            assert!(
                matches!(read(wire), Err(HttpError::BadRequest(_))),
                "`{}` not rejected",
                String::from_utf8_lossy(wire).escape_debug()
            );
        }
    }

    #[test]
    fn missing_content_length_on_post_is_length_required() {
        let error = read(b"POST /v1/parse HTTP/1.1\r\n\r\n{}").unwrap_err();
        assert!(matches!(error, HttpError::LengthRequired));
        assert_eq!(error.status(), Some((411, "Length Required")));
    }

    #[test]
    fn oversized_declared_body_is_payload_too_large_before_reading_it() {
        // The body bytes are never read (there are none to read) — the
        // declared length alone rejects the request.
        let wire = b"POST /v1/parse HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let error = read(wire).unwrap_err();
        assert!(matches!(
            error,
            HttpError::PayloadTooLarge {
                declared: 999_999_999,
                limit: 1024
            }
        ));
        assert_eq!(error.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn unparseable_content_length_is_bad_request() {
        for value in ["-1", "abc", "1e3", "18446744073709551616"] {
            let wire = format!("POST /v1/parse HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
            assert!(matches!(
                read(wire.as_bytes()),
                Err(HttpError::BadRequest(_))
            ));
        }
    }

    #[test]
    fn body_shorter_than_declared_is_bad_request() {
        let wire = b"POST /v1/parse HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(read(wire), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn oversized_lines_headers_and_paths_are_typed_errors() {
        let long_line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE_BYTES)
        );
        assert!(matches!(
            read(long_line.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));

        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_PATH_BYTES + 1));
        assert!(matches!(
            read(long_path.as_bytes()),
            Err(HttpError::UriTooLong)
        ));

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: v\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(
            read(many_headers.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        let wire = b"POST /v1/parse HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(read(wire), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn slow_writes_time_out_as_typed_errors_over_a_real_socket() {
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Half a request line, then stall far past the read timeout.
            stream.write_all(b"POST /v1/par").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(300));
            stream
        });
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        let mut reader = BufReader::new(server_side);
        let error = read_request(&mut reader, 1024).unwrap_err();
        assert!(matches!(error, HttpError::Timeout), "got {error:?}");
        assert_eq!(error.status(), Some((408, "Request Timeout")));
        drop(client.join().unwrap());

        // An idle keep-alive peer (zero bytes sent) is the quiet variant.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let idle = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        let mut reader = BufReader::new(server_side);
        let error = read_request(&mut reader, 1024).unwrap_err();
        assert!(matches!(error, HttpError::IdleTimeout), "got {error:?}");
        assert!(error.status().is_none());
        drop(idle);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back_from_one_stream() {
        let wire = b"POST /v1/parse HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                     GET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&wire[..]);
        let first = read_request(&mut reader, 1024).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"hi");
        let second = read_request(&mut reader, 1024).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/metrics");
        assert!(read_request(&mut reader, 1024).unwrap().is_none());
    }

    #[test]
    fn responses_round_trip_through_the_client_reader() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            503,
            "Service Unavailable",
            "application/json",
            b"{\"degraded\": true}",
            false,
            &[],
        )
        .unwrap();
        let response = read_response(&mut BufReader::new(&wire[..]), 1024).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.body, b"{\"degraded\": true}");

        // Oversized and truncated bodies are typed errors.
        let oversized = b"HTTP/1.1 200 OK\r\nContent-Length: 99999\r\n\r\n";
        assert!(matches!(
            read_response(&mut BufReader::new(&oversized[..]), 1024),
            Err(HttpError::PayloadTooLarge { .. })
        ));
        let truncated = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(
            read_response(&mut BufReader::new(&truncated[..]), 1024),
            Err(HttpError::BadRequest(_))
        ));
        let unframed = b"HTTP/1.1 200 OK\r\n\r\n";
        assert!(matches!(
            read_response(&mut BufReader::new(&unframed[..]), 1024),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn responses_are_fully_framed() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            200,
            "OK",
            "application/json",
            b"{\"ok\":true}",
            true,
            &[("Retry-After", "2".to_owned())],
        )
        .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
