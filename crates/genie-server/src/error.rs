//! The server's typed bind-time error.
//!
//! Binding used to `.expect(...)` its way through listener cloning and
//! thread spawning — a resource-exhausted host (thread limits, fd limits)
//! would take the process down instead of reporting a failure the caller
//! can handle. Every bind-time failure is now a [`ServerError`], and
//! `From<ServerError> for genie::Error` keeps `?` working in
//! `GenieResult` contexts.

use std::fmt;
use std::io;

use genie_templates::ConfigError;

/// Why [`crate::GenieServer`] failed to bind and start serving.
#[derive(Debug)]
pub enum ServerError {
    /// The [`crate::ServerConfig`] failed validation.
    Config(ConfigError),
    /// The listening socket could not be bound, inspected, or cloned.
    Io(io::Error),
    /// An OS thread could not be spawned at bind time. `what` names the
    /// thread (acceptor, coalescer dispatcher, supervisor, reload runner).
    Spawn {
        /// Which thread failed to start.
        what: &'static str,
        /// The underlying spawn failure.
        source: io::Error,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Config(error) => write!(f, "invalid server config: {error}"),
            ServerError::Io(error) => write!(f, "server socket setup failed: {error}"),
            ServerError::Spawn { what, source } => {
                write!(f, "could not spawn the {what} thread: {source}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Config(error) => Some(error),
            ServerError::Io(error) => Some(error),
            ServerError::Spawn { source, .. } => Some(source),
        }
    }
}

impl From<ConfigError> for ServerError {
    fn from(error: ConfigError) -> Self {
        ServerError::Config(error)
    }
}

impl From<io::Error> for ServerError {
    fn from(error: io::Error) -> Self {
        ServerError::Io(error)
    }
}

impl From<ServerError> for genie::Error {
    fn from(error: ServerError) -> Self {
        match error {
            ServerError::Config(config) => genie::Error::from(config),
            ServerError::Io(io) => genie::Error::Io(io),
            spawn @ ServerError::Spawn { .. } => {
                genie::Error::Io(io::Error::other(spawn.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failing_stage() {
        let spawn = ServerError::Spawn {
            what: "acceptor",
            source: io::Error::other("out of threads"),
        };
        assert!(spawn.to_string().contains("acceptor"));
        assert!(spawn.to_string().contains("out of threads"));
        let as_genie: genie::Error = spawn.into();
        assert!(matches!(as_genie, genie::Error::Io(_)));

        let config = ServerError::from(ConfigError::new("worker_threads", "zero"));
        assert!(config.to_string().contains("worker_threads"));
        let as_genie: genie::Error = config.into();
        assert!(matches!(as_genie, genie::Error::Config(_)));
    }
}
