#!/usr/bin/env python3
"""Bench regression gates, one per trajectory report.

Usage: bench_gate.py <kind> <fresh.json> <committed.json>

Every gate compares a fresh smoke run against the committed trajectory
point. Throughput thresholds assume consistent runner hardware between
the run that produced the committed report and this one; when runners
change class, refresh the committed BENCH_*.json in the same PR. Digest
and invariant checks are exact — they catch silent behavior changes, not
noise.
"""

import json
import sys


def gate_synthesis(fresh, committed):
    """>10% sentences/sec regression or dataset-digest drift fails."""

    def sequential_rate(report):
        return next(
            run["sentences_per_sec"]
            for run in report["runs"]
            if run["mode"] == "sequential"
        )

    fresh_rate = sequential_rate(fresh)
    committed_rate = sequential_rate(committed)
    ratio = fresh_rate / committed_rate
    print(f"sequential sentences/sec: committed {committed_rate:.0f}, "
          f"fresh {fresh_rate:.0f} ({ratio:.2%})")
    assert ratio >= 0.90, (
        f"sentences/sec regressed by more than 10%: {ratio:.2%}"
    )
    assert fresh["dataset_digest"] == committed["dataset_digest"], (
        "dataset digest drifted: "
        f"{fresh['dataset_digest']} != {committed['dataset_digest']}"
    )


def gate_training(fresh, committed):
    """>10% examples/sec regression, weights-digest or accuracy drift fails."""
    # Digests are only comparable for the same workload: a baseline
    # refreshed without GENIE_BENCH_SMOKE=1 would otherwise fail below
    # with a misleading "digest drifted" error.
    assert committed["smoke"] and fresh["config"] == committed["config"], (
        "committed BENCH_training.json is not the smoke workload "
        "(refresh it with GENIE_BENCH_SMOKE=1): "
        f"{committed['config']} != {fresh['config']}"
    )
    ratio = fresh["train_examples_per_sec"] / committed["train_examples_per_sec"]
    print(f"train examples/sec: committed {committed['train_examples_per_sec']:.0f}, "
          f"fresh {fresh['train_examples_per_sec']:.0f} ({ratio:.2%})")
    assert ratio >= 0.90, (
        f"train examples/sec regressed by more than 10%: {ratio:.2%}"
    )
    assert fresh["weights_digest"] == committed["weights_digest"], (
        "trained-weights digest drifted: "
        f"{fresh['weights_digest']} != {committed['weights_digest']}"
    )
    assert fresh["exact_match_accuracy"] == committed["exact_match_accuracy"], (
        "exact-match accuracy drifted: "
        f"{fresh['exact_match_accuracy']} != {committed['exact_match_accuracy']}"
    )


def gate_artifacts(fresh, committed):
    """Invariant violations, dataset-digest drift, or 2x load-time fails."""
    assert fresh["config"] == committed["config"], (
        "committed BENCH_artifacts.json was measured on a different "
        f"workload: {committed['config']} != {fresh['config']}"
    )
    for report, which in ((fresh, "fresh"), (committed, "committed")):
        assert report["dataset"]["formats_agree"], f"{which}: formats diverged"
        assert report["snapshot"]["roundtrip_ok"], f"{which}: snapshot roundtrip failed"
        speedup = report["snapshot"]["load_speedup_vs_train"]
        assert speedup >= 10.0, (
            f"{which}: snapshot load only {speedup}x faster than training"
        )
    assert fresh["dataset"]["dataset_digest"] == committed["dataset"]["dataset_digest"], (
        "dataset digest drifted: "
        f"{fresh['dataset']['dataset_digest']} != {committed['dataset']['dataset_digest']}"
    )
    fresh_load = fresh["snapshot"]["load_secs"]
    budget = max(2.0 * committed["snapshot"]["load_secs"], 0.05)
    print(f"snapshot load: committed {committed['snapshot']['load_secs']:.4f}s, "
          f"fresh {fresh_load:.4f}s (budget {budget:.4f}s)")
    assert fresh_load <= budget, (
        f"snapshot load regressed: {fresh_load:.4f}s > {budget:.4f}s"
    )


def gate_serving(fresh, committed):
    """Socket-level e2e gate.

    Correctness is binary: the fresh run must have asserted byte identity
    with the in-process rendering and typed 4xx on every malformed probe
    (the serving_e2e binary exits non-zero otherwise, but the report flags
    make the contract visible in the trajectory). Perf bounds are loose —
    socket numbers absorb loopback scheduling jitter far beyond the 10%
    used by the in-process gates: req/s may not halve, p99 may not
    triple (floored at 25ms to absorb tiny absolute baselines).
    """
    assert fresh["config"] == committed["config"], (
        "committed BENCH_serving.json was measured on a different "
        f"workload: {committed['config']} != {fresh['config']}"
    )
    for report, which in ((fresh, "fresh"), (committed, "committed")):
        socket = report["socket"]
        assert socket["byte_identical"], (
            f"{which}: socket responses were not byte-identical to in-process"
        )
        assert socket["malformed_probes_typed"], (
            f"{which}: malformed probes were not answered with typed 4xx"
        )
        assert socket["coalesce_batches"] >= 1, f"{which}: nothing coalesced"
        assert socket["swap_request_errors"] == 0, (
            f"{which}: requests dropped or errored while worlds swapped"
        )
    fresh_socket, committed_socket = fresh["socket"], committed["socket"]
    ratio = fresh_socket["requests_per_sec"] / committed_socket["requests_per_sec"]
    print(f"socket req/s: committed {committed_socket['requests_per_sec']:.0f}, "
          f"fresh {fresh_socket['requests_per_sec']:.0f} ({ratio:.2%})")
    assert ratio >= 0.50, (
        f"socket req/s regressed by more than 50%: {ratio:.2%}"
    )
    p99_budget = max(3.0 * committed_socket["p99_us"], 25_000.0)
    print(f"socket p99: committed {committed_socket['p99_us']:.0f}us, "
          f"fresh {fresh_socket['p99_us']:.0f}us (budget {p99_budget:.0f}us)")
    assert fresh_socket["p99_us"] <= p99_budget, (
        f"socket p99 regressed: {fresh_socket['p99_us']:.0f}us > {p99_budget:.0f}us"
    )
    # Swap-induced tail latency is a tracked trajectory, not a gate: the
    # reload monopolizes a CPU for the whole resynthesize+retrain, so its
    # p99 rides runner load far beyond what a threshold could absorb.
    print(f"p99 during swap: committed {committed_socket['p99_during_swap_us']:.0f}us, "
          f"fresh {fresh_socket['p99_during_swap_us']:.0f}us (tracked, not gated)")


def gate_live(fresh, committed):
    """Hot-swap gate: exact correctness invariants, latency tracked only.

    The live bench binary already exits non-zero when a request drops or
    errors during a swap, when post-swap socket responses drift from the
    cold-engine rendering, or when `/metrics` disagrees with the swap
    count — the report flags re-assert those contracts so the committed
    trajectory point visibly carries them. Reload and during-swap
    latencies are printed for the trajectory but not thresholded: a
    reload is a full resynthesize+retrain on one core, so its absolute
    time tracks runner class, not regressions the 10%-style gates catch.
    """
    assert fresh["config"] == committed["config"], (
        "committed BENCH_live.json was measured on a different "
        f"workload: {committed['config']} != {fresh['config']}"
    )
    swaps = fresh["config"]["swaps"]
    for report, which in ((fresh, "fresh"), (committed, "committed")):
        swap, post = report["swap"], report["post_swap"]
        assert swap["request_errors"] == 0, (
            f"{which}: requests dropped or errored during swaps"
        )
        assert post["byte_identical"], (
            f"{which}: post-swap responses drifted from the cold engine"
        )
        assert post["metrics_consistent"], (
            f"{which}: /metrics disagreed with the admin version endpoint"
        )
        assert post["world_version"] == swaps + 1, (
            f"{which}: expected world version {swaps + 1}, "
            f"got {post['world_version']}"
        )
        assert swap["full_rebuild_swaps"] == 1, (
            f"{which}: exactly the class-adding swap should fully rebuild, "
            f"got {swap['full_rebuild_swaps']}"
        )
        assert swap["incremental_swaps"] == swaps - 1, (
            f"{which}: every content-only swap must take the incremental "
            f"path, got {swap['incremental_swaps']} of {swaps - 1}"
        )
        assert swap["last_reused_batches"] > 0, (
            f"{which}: the last incremental swap reused no memoized batches"
        )
    for key in ("p99_us", "requests_per_sec"):
        print(f"steady {key}: committed {committed['steady'][key]:.1f}, "
              f"fresh {fresh['steady'][key]:.1f}")
    for key in ("p99_during_swap_us", "mean_reload_ms"):
        print(f"swap {key}: committed {committed['swap'][key]:.1f}, "
              f"fresh {fresh['swap'][key]:.1f} (tracked, not gated)")


def gate_robustness(fresh, committed):
    """Chaos-soak gate: fault-model invariants exact, counts tracked only.

    The chaos_soak binary already exits non-zero when any invariant
    breaks; the gate re-asserts the flags on both reports so the
    committed trajectory point visibly carries them, and pins the
    seeded fault-schedule digest — the schedule is a pure function of
    (seed, site, hit-index), so a digest drift means the injection
    engine (or the plan) changed and the soak is no longer replaying
    the committed scenario. Per-site fired counts depend on thread
    scheduling (how many hits each site takes), so they are tracked,
    not gated.
    """
    assert fresh["config"] == committed["config"], (
        "committed BENCH_robustness.json was measured on a different "
        f"fault plan: {committed['config']} != {fresh['config']}"
    )
    assert fresh["fault_schedule_digest"] == committed["fault_schedule_digest"], (
        "fault schedule digest drifted (injection engine or plan changed): "
        f"{fresh['fault_schedule_digest']} != {committed['fault_schedule_digest']}"
    )
    for report, which in ((fresh, "fresh"), (committed, "committed")):
        assert report["all_responses_valid"], (
            f"{which}: a response under chaos was neither byte-identical "
            "nor a typed 4xx/5xx"
        )
        assert report["version_monotonic"], (
            f"{which}: the world version went backwards under the reload storm"
        )
        assert report["recovered_to_steady_state"], (
            f"{which}: the post-chaos byte-identity pass was not clean"
        )
        assert report["zero_hung_connections"], (
            f"{which}: a connection hung"
        )
        reloads = report["reload_storm"]
        assert reloads["swapped"] + reloads["failed_typed"] == reloads["attempted"], (
            f"{which}: a reload neither swapped nor failed typed"
        )
        assert reloads["version_after"] == reloads["version_before"] + reloads["swapped"], (
            f"{which}: version advanced by {reloads['version_after'] - reloads['version_before']}"
            f" but {reloads['swapped']} reloads swapped"
        )
    storm, metrics = fresh["storm"], fresh["server_metrics"]
    print(f"storm: {storm['identical']} identical, {storm['typed_faults']} typed faults, "
          f"{storm['reconnects']} reconnects")
    print(f"supervision: {metrics['server_panics_total']} panics caught, "
          f"{metrics['server_acceptor_respawns_total']} acceptors respawned "
          "(tracked, not gated)")


def gate_recovery(fresh, committed):
    """Recovery-soak gate: durability invariants exact, timings tracked only.

    The recovery_soak binary already exits non-zero when any invariant
    breaks; the gate re-asserts the flags on both reports so the
    committed trajectory point visibly carries them, and pins the
    seeded fault-schedule digest — a drift means the crash/storm
    scenario is no longer the committed one. Recovery latency and
    replication poll counts depend on scheduler timing, so they are
    tracked, not gated.
    """
    assert fresh["config"] == committed["config"], (
        "committed BENCH_recovery.json was measured on a different "
        f"fault plan: {committed['config']} != {fresh['config']}"
    )
    assert fresh["fault_schedule_digest"] == committed["fault_schedule_digest"], (
        "fault schedule digest drifted (injection engine or plan changed): "
        f"{fresh['fault_schedule_digest']} != {committed['fault_schedule_digest']}"
    )
    flags = (
        "recovered_version_matches",
        "recovered_digest_matches",
        "typed_faults_only",
        "follower_converged",
        "follower_digest_matches",
        "degraded_mode_served",
    )
    for report, which in ((fresh, "fresh"), (committed, "committed")):
        for flag in flags:
            assert report["invariants"][flag], f"{which}: invariant `{flag}` broke"
    storm, replication = fresh["crash_storm"], fresh["replication"]
    print(f"crash storm: {storm['recoveries']} recoveries to v{storm['final_version']}, "
          f"{storm['typed_faults']} typed faults, "
          f"mean recovery {storm['mean_recovery_secs']:.3f}s / "
          f"max {storm['max_recovery_secs']:.3f}s (tracked, not gated)")
    print(f"replication: follower v{replication['follower_version']} after "
          f"{replication['polls']} polls, {replication['applied']} applied, "
          f"{replication['resyncs']} resyncs, {replication['errors']} errors "
          "(tracked, not gated)")


GATES = {
    "synthesis": gate_synthesis,
    "training": gate_training,
    "artifacts": gate_artifacts,
    "serving": gate_serving,
    "live": gate_live,
    "robustness": gate_robustness,
    "recovery": gate_recovery,
}


def main():
    if len(sys.argv) != 4 or sys.argv[1] not in GATES:
        kinds = " | ".join(GATES)
        sys.exit(f"usage: bench_gate.py <{kinds}> <fresh.json> <committed.json>")
    kind, fresh_path, committed_path = sys.argv[1:]
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(committed_path) as f:
        committed = json.load(f)
    GATES[kind](fresh, committed)
    print(f"{kind} gate: OK")


if __name__ == "__main__":
    main()
