#!/usr/bin/env bash
# Shared bench-smoke driver: every bench job runs the same four steps —
# park the committed trajectory point, produce a fresh smoke report over
# it, show the report, and gate the fresh numbers against the committed
# ones (ci/bench_gate.py).
#
# Usage: ci/bench_smoke.sh <kind> -- <command...>
#   <kind>        one of synthesis | serving | training | artifacts | live
#                 | robustness | recovery
#                 (names BENCH_<kind>.json and picks the gate)
#   <command...>  produces a fresh BENCH_<kind>.json in the repo root
set -euo pipefail

kind="${1:?usage: ci/bench_smoke.sh <kind> -- <command...>}"
shift
if [ "${1:-}" != "--" ]; then
  echo "usage: ci/bench_smoke.sh <kind> -- <command...>" >&2
  exit 2
fi
shift

report="BENCH_${kind}.json"
if [ ! -f "$report" ]; then
  echo "no committed $report to gate against" >&2
  exit 1
fi
mkdir -p committed
cp "$report" "committed/$report"

"$@"

echo "--- fresh $report ---"
cat "$report"

python3 "$(dirname "$0")/bench_gate.py" "$kind" "$report" "committed/$report"
