//! The data-acquisition pipeline end to end (§3): synthesize sentences from
//! templates, sample them for (simulated) crowdsourced paraphrasing, expand
//! parameters, and report the composition of the resulting training set
//! (Fig. 7), plus the crowdsourcing batch that would be uploaded to MTurk.
//!
//! Run with: `cargo run --release --example dataset_pipeline`

use genie::crowdsource::build_batch;
use genie::pipeline::{DataPipeline, PipelineConfig};
use genie_templates::GeneratorConfig;
use thingpedia::Thingpedia;

fn main() -> genie::GenieResult<()> {
    let library = Thingpedia::builtin();
    let pipeline = DataPipeline::new(
        &library,
        PipelineConfig::builder()
            .synthesis(GeneratorConfig::builder().target_per_rule(80).build()?)
            .paraphrase_sample(300)
            .build()?,
    );
    let data = pipeline.build()?;

    println!("Synthesized sentences: {}", data.synthesized.len());
    println!("Simulated paraphrases: {}", data.paraphrases.len());
    println!("Augmented sentences:   {}", data.augmented.len());

    let combined = data.combined();
    println!("\nTraining-set composition (Fig. 7):");
    for (bucket, share) in combined.composition().shares() {
        println!("  {bucket:<35} {:5.1}%", share * 100.0);
    }
    println!(
        "\nDistinct programs: {}   distinct function combinations: {}   distinct words: {}",
        combined.distinct_programs(),
        combined.distinct_function_combinations(),
        combined.distinct_words()
    );
    println!(
        "Paraphrase fraction of the training set: {:.1}% (paper: 19%)",
        combined.paraphrase_fraction() * 100.0
    );

    println!("\nSample synthesized sentence and its paraphrases:");
    if let Some(example) = data
        .synthesized
        .examples
        .iter()
        .find(|e| !e.flags.primitive)
    {
        println!("  synthesized: \"{}\"", example.text());
        println!("  program:     {}", example.program);
        for paraphrase in data
            .paraphrases
            .examples
            .iter()
            .filter(|p| p.program == example.program)
            .take(3)
        {
            println!("  paraphrase:  \"{}\"", paraphrase.text());
        }
    }

    // The crowdsourcing batch Genie would upload to MTurk.
    let batch = build_batch(&library, &data.synthesized.examples, 10, 7);
    println!(
        "\nCrowdsource batch: {} tasks x {} assignments x {} paraphrases = {} expected paraphrases",
        batch.tasks.len(),
        batch.assignments,
        batch.paraphrases_per_worker,
        batch.expected_paraphrases()
    );
    println!(
        "First CSV rows:\n{}",
        batch
            .to_csv()
            .lines()
            .take(4)
            .collect::<Vec<_>>()
            .join("\n")
    );
    Ok(())
}
