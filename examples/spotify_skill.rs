//! The Spotify case study (§6.1): load the comprehensive Spotify skill
//! (15 queries, 17 actions), synthesize quote-free music commands, and show
//! how the same surface pattern ("play X") maps to different API calls
//! depending on whether X is a song or an artist.
//!
//! Run with: `cargo run --release --example spotify_skill`

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;
use thingtalk::describe::Describer;
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::typecheck;
use thingtalk::SchemaRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Thingpedia::builtin_with_spotify();
    let spotify = library.class("com.spotify").expect("spotify class exists");
    println!(
        "Spotify skill: {} queries, {} actions, {} primitive templates",
        spotify.queries().count(),
        spotify.actions().count(),
        library.templates_for("com.spotify", "play_song").len()
            + library.templates_for("com.spotify", "play_artist").len()
    );

    // Quote-free free-form parameters: the same carrier phrase, different
    // functions depending on the entity.
    let play_song =
        parse_program("now => @com.spotify.play_song(song = \"shake it off\"^^com.spotify:song)")?;
    let play_artist = parse_program(
        "now => @com.spotify.play_artist(artist = \"taylor swift\"^^com.spotify:artist)",
    )?;
    typecheck(&library, &play_song)?;
    typecheck(&library, &play_artist)?;
    let describer = Describer::new(&library);
    println!("\n\"play shake it off\"   => {play_song}");
    println!(
        "                         ({})",
        describer.describe(&play_song)
    );
    println!("\"play taylor swift\"   => {play_artist}");
    println!(
        "                         ({})",
        describer.describe(&play_artist)
    );

    // The paper's flagship compound examples.
    let alarm = parse_program(
        "attimer time = time(08:00) => @com.spotify.play_song(song = \"wake me up inside\"^^com.spotify:song)",
    )?;
    typecheck(&library, &alarm)?;
    println!("\n\"wake me up at 8 am by playing wake me up inside\"\n  => {alarm}");

    let fast_songs = parse_program(
        "now => @com.spotify.get_saved_songs() filter tempo > 500bpm => @com.spotify.add_to_playlist(playlist = \"dance dance revolution\"^^com.spotify:playlist, song = song)",
    )?;
    typecheck(&library, &fast_songs)?;
    println!("\n\"add all songs faster than 500 bpm to the playlist dance dance revolution\"\n  => {fast_songs}");

    // Synthesize some Spotify training sentences.
    let generator = SentenceGenerator::new(
        &library,
        GeneratorConfig::builder()
            .target_per_rule(40)
            .build()
            .expect("valid synthesis config"),
    );
    let spotify_examples: Vec<_> = generator
        .synthesize()
        .into_iter()
        .filter(|e| e.program.devices().contains(&"com.spotify"))
        .take(8)
        .collect();
    println!("\nSample synthesized Spotify sentences:");
    for example in &spotify_examples {
        println!(
            "  \"{}\"",
            example.utterance_text(genie_templates::intern::shared())
        );
        println!("     => {}", example.program);
    }
    Ok(())
}
