//! The TT+A case study (§6.3): extending ThingTalk with aggregation
//! (max/min/sum/avg/count). Parses and executes aggregation queries over the
//! simulated Dropbox skill and synthesizes aggregation training sentences.
//!
//! Run with: `cargo run --release --example aggregation`

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::{SimulatedDevices, Thingpedia};
use thingtalk::runtime::ExecutionEngine;
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::typecheck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Thingpedia::builtin();

    // "find the total size of a folder" (the paper's example).
    let total_size =
        parse_program("now => agg sum file_size of (@com.dropbox.list_folder()) => notify")?;
    typecheck(&library, &total_size)?;
    let mut engine = ExecutionEngine::new(SimulatedDevices::new(library.clone(), 11));
    let outcome = engine.execute_once(&total_size)?;
    println!("\"find the total size of my dropbox folder\"");
    println!("  => {total_size}");
    println!("  result: {:?}", outcome.notifications[0]);

    // Count, average and max over other skills.
    for (sentence, source) in [
        (
            "how many files are in my dropbox",
            "now => agg count of (@com.dropbox.list_folder()) => notify",
        ),
        (
            "what is the average rating of movies in theaters",
            "now => agg avg rating of (@com.themoviedb.now_playing()) => notify",
        ),
        (
            "the most popular tweet i wrote",
            "now => agg max retweet_count of (@com.twitter.my_tweets()) => notify",
        ),
    ] {
        let program = parse_program(source)?;
        typecheck(&library, &program)?;
        let outcome = engine.execute_once(&program)?;
        println!("\n\"{sentence}\"");
        println!("  => {program}");
        println!("  result: {:?}", outcome.notifications[0]);
    }

    // Synthesize TT+A training sentences (the paper wrote 6 construct
    // templates and collected 2,421 paraphrases for this extension).
    let generator = SentenceGenerator::new(
        &library,
        GeneratorConfig::builder()
            .target_per_rule(40)
            .include_aggregation(true)
            .build()
            .expect("valid synthesis config"),
    );
    let aggregation_examples: Vec<_> = generator
        .synthesize()
        .into_iter()
        .filter(|e| e.flags.aggregation)
        .take(8)
        .collect();
    println!("\nSample synthesized aggregation sentences:");
    for example in &aggregation_examples {
        println!(
            "  \"{}\"",
            example.utterance_text(genie_templates::intern::shared())
        );
        println!("     => {}", example.program);
    }
    Ok(())
}
