//! The TACL case study (§6.2): access-control policies that describe who may
//! see what. Parses the paper's "my secretary is allowed to see my work
//! emails" policy, checks programs against it, and synthesizes a small
//! policy corpus with the template engine.
//!
//! Run with: `cargo run --release --example access_control`

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;
use thingtalk::policy::check_program;
use thingtalk::syntax::{parse_policy, parse_program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's example policy.
    let policy = parse_policy(
        "source == \"secretary\" : now => @com.gmail.inbox() filter labels contains \"work\" => notify",
    )?;
    println!("Policy: {policy}");

    let allowed =
        parse_program("now => @com.gmail.inbox() filter labels contains \"work\" => notify")?;
    let all_mail = parse_program("now => @com.gmail.inbox() => notify")?;
    let other_skill = parse_program("now => @com.twitter.direct_messages() => notify")?;

    for (who, program, label) in [
        ("secretary", &allowed, "work emails"),
        ("secretary", &all_mail, "the whole inbox"),
        ("secretary", &other_skill, "twitter direct messages"),
        ("stranger", &allowed, "work emails"),
    ] {
        let verdict = if policy.allows_program(who, program) {
            "ALLOWED"
        } else {
            "DENIED"
        };
        println!("  {who:<10} requesting {label:<28} -> {verdict}");
    }

    // A policy set: any policy that matches admits the program.
    let policies = vec![
        policy,
        parse_policy("true : now => @org.thingpedia.weather.current() => notify")?,
        parse_policy(
            "source == \"roommate\" : now => @com.hue.set_power(name = \"living room light\"^^tt:device_name, power = enum:on)",
        )?,
    ];
    let weather = parse_program("now => @org.thingpedia.weather.current() => notify")?;
    println!(
        "\nAnyone may check the weather: {}",
        check_program(&policies, "stranger", &weather)
    );

    // Synthesize policy training data for the TACL parser.
    let library = Thingpedia::builtin();
    let generator = SentenceGenerator::new(
        &library,
        GeneratorConfig::builder()
            .target_per_rule(30)
            .max_depth(3)
            .build()
            .expect("valid synthesis config"),
    );
    let synthesized = generator.synthesize_policies();
    println!(
        "\nSynthesized {} policy sentences; samples:",
        synthesized.len()
    );
    for (utterance, policy) in synthesized.iter().take(6) {
        println!("  \"{utterance}\"");
        println!("     => {policy}");
    }
    Ok(())
}
