//! Quickstart: parse, typecheck, canonicalize, describe and execute the
//! paper's running example (Fig. 1) — "get a cat picture and post it on
//! Facebook with caption funny cat" — then train a tiny semantic parser and
//! translate a natural-language command end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie_templates::GeneratorConfig;
use luinet::{LuinetParser, ModelConfig};
use thingpedia::{SimulatedDevices, Thingpedia};
use thingtalk::canonical::canonicalized;
use thingtalk::describe::Describer;
use thingtalk::nn_syntax::from_tokens;
use thingtalk::runtime::ExecutionEngine;
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::typecheck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Thingpedia::builtin();
    println!(
        "Loaded Thingpedia: {} skills, {} functions, {} primitive templates",
        library.class_count(),
        thingtalk::SchemaRegistry::function_count(&library),
        library.templates().len()
    );

    // 1. The Fig. 1 program: parse, typecheck, canonicalize, describe.
    let program = parse_program(
        "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")",
    )?;
    typecheck(&library, &program)?;
    let canonical = canonicalized(&library, &program);
    println!("\nThingTalk program:   {canonical}");
    println!(
        "Canonical sentence:  {}",
        Describer::new(&library).describe(&canonical)
    );

    // 2. Execute it on the simulated devices.
    let mut engine = ExecutionEngine::new(SimulatedDevices::new(library.clone(), 42));
    let outcome = engine.execute_once(&canonical)?;
    for action in &outcome.actions {
        println!(
            "Executed action:     {} with {} parameters",
            action.function,
            action.params.len()
        );
    }

    // 3. Train a small parser with the Genie pipeline and translate a new
    //    command.
    println!("\nBuilding a small training set and training the parser (about a minute)...");
    let pipeline = DataPipeline::new(
        &library,
        PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(60)
                    .build()
                    .expect("valid synthesis config"),
            )
            .paraphrase_sample(200)
            .build()
            .expect("valid pipeline config"),
    );
    let data = pipeline.build().expect("the builtin pipeline cannot fail");
    println!(
        "Training set: {} synthesized + {} paraphrases + {} augmented sentences",
        data.synthesized.len(),
        data.paraphrases.len(),
        data.augmented.len()
    );
    let mut parser =
        LuinetParser::new(ModelConfig::default()).with_pretrained_lm(pipeline.pretrain_lm(1));
    parser.train(&pipeline.to_parser_examples(&data.combined(), NnOptions::default()));

    let command = "show me my dropbox files";
    let tokens = parser.predict(&genie_templates::intern::shared().tokenize_text(command));
    println!("\nUser command:        {command}");
    println!("Predicted tokens:    {}", tokens.join(" "));
    if let Ok(predicted) = from_tokens(&tokens) {
        println!("Predicted program:   {predicted}");
        println!(
            "Confirmation:        {}",
            Describer::new(&library).describe(&predicted)
        );
    }

    // Serve the trained parser behind the thread-safe engine facade: every
    // answer is decoded, typechecked and policy-checked, and malformed
    // requests come back as typed errors instead of panics.
    let engine = genie::GenieEngine::builder()
        .thingpedia(library.clone())
        .model(parser)
        .build()?;
    match engine.parse(&genie::ParseRequest::new(command)) {
        Ok(response) => println!(
            "\nServed via GenieEngine: {} candidate(s); best: {}",
            response.candidates.len(),
            response.best().source
        ),
        Err(error) => println!("\nServed via GenieEngine: no parse ({error})"),
    }
    assert!(engine.parse(&genie::ParseRequest::new("")).is_err());

    // 4. Put the engine on a socket: genie-server speaks HTTP/JSON over
    //    std TcpListener, coalescing concurrent requests into deterministic
    //    micro-batches. Port 0 picks an ephemeral port.
    let config = genie_server::ServerConfig::builder()
        .addr("127.0.0.1:0")
        .quota(64, 16.0) // per-client token bucket: 64 burst, 16 req/s
        .build()?;
    let mut server = genie_server::GenieServer::bind(engine, config)?;
    println!("\ngenie-server listening on http://{}", server.local_addr());
    println!(
        "  try: curl -d '{{\"utterance\": \"{command}\"}}' http://{}/v1/parse",
        server.local_addr()
    );
    server.shutdown(); // graceful: drains in-flight requests

    // 5. Live updates: a hot-swappable world behind the same socket
    //    front-end. A LiveWorld owns the synthesis memo, so a skill delta
    //    re-synthesizes only the affected (rule, batch) work items,
    //    retrains, and swaps library + model + cache atomically as one
    //    version — in-flight requests finish on the world they started
    //    with, and a full-mode reload is byte-identical to a restart.
    let live_pipeline = PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .max_depth(4)
                .seed(7)
                .quiet(true)
                .build()
                .expect("valid synthesis config"),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .expect("valid pipeline config");
    let live = std::sync::Arc::new(genie::LiveWorld::bootstrap(
        library.clone(),
        live_pipeline,
        ModelConfig {
            epochs: 4,
            seed: 7,
            threads: 1,
            ..ModelConfig::default()
        },
    )?);
    let mut live_server = genie_server::GenieServer::bind_live(
        live.clone(),
        genie_server::ServerConfig::builder()
            .addr("127.0.0.1:0")
            .build()?,
    )?;
    println!(
        "\nlive genie-server on http://{} (world version {})",
        live_server.local_addr(),
        live.version()
    );
    // Add a brand-new skill while the server runs. Over the wire this is:
    //   curl -d '{"op": "upsert",
    //             "class": "class @com.lights { action set_power(in req power : Enum(on, off)); }",
    //             "templates": [{"category": "vp", "function": "set_power",
    //                            "utterance": "turn $power the lights"}]}' \
    //        http://<addr>/v1/admin/reload
    let class = thingtalk::syntax::parse_class(
        "class @com.lights { action set_power(in req power : Enum(on, off)); }",
    )?;
    let template = thingpedia::PrimitiveTemplate::new(
        "com.lights",
        "set_power",
        thingpedia::PhraseCategory::VerbPhrase,
        "turn $power the lights",
    );
    let report = live.reload(&genie::SkillDelta::Upsert {
        class,
        templates: vec![template],
    })?;
    println!(
        "Hot-swapped to world version {} in {:.0}ms \
         ({} of {} synthesis batches reused; check GET /v1/admin/version)",
        report.version,
        report.swap_latency_us as f64 / 1e3,
        report.reused_batches,
        report.total_batches,
    );
    live_server.shutdown();
    Ok(())
}
