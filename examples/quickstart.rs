//! Quickstart: parse, typecheck, canonicalize, describe and execute the
//! paper's running example (Fig. 1) — "get a cat picture and post it on
//! Facebook with caption funny cat" — then train a tiny semantic parser and
//! translate a natural-language command end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie_templates::GeneratorConfig;
use luinet::{LuinetParser, ModelConfig};
use thingpedia::{SimulatedDevices, Thingpedia};
use thingtalk::canonical::canonicalized;
use thingtalk::describe::Describer;
use thingtalk::nn_syntax::from_tokens;
use thingtalk::runtime::ExecutionEngine;
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::typecheck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Thingpedia::builtin();
    println!(
        "Loaded Thingpedia: {} skills, {} functions, {} primitive templates",
        library.class_count(),
        thingtalk::SchemaRegistry::function_count(&library),
        library.templates().len()
    );

    // 1. The Fig. 1 program: parse, typecheck, canonicalize, describe.
    let program = parse_program(
        "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")",
    )?;
    typecheck(&library, &program)?;
    let canonical = canonicalized(&library, &program);
    println!("\nThingTalk program:   {canonical}");
    println!(
        "Canonical sentence:  {}",
        Describer::new(&library).describe(&canonical)
    );

    // 2. Execute it on the simulated devices.
    let mut engine = ExecutionEngine::new(SimulatedDevices::new(library.clone(), 42));
    let outcome = engine.execute_once(&canonical)?;
    for action in &outcome.actions {
        println!(
            "Executed action:     {} with {} parameters",
            action.function,
            action.params.len()
        );
    }

    // 3. Train a small parser with the Genie pipeline and translate a new
    //    command.
    println!("\nBuilding a small training set and training the parser (about a minute)...");
    let pipeline = DataPipeline::new(
        &library,
        PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(60)
                    .build()
                    .expect("valid synthesis config"),
            )
            .paraphrase_sample(200)
            .build()
            .expect("valid pipeline config"),
    );
    let data = pipeline.build().expect("the builtin pipeline cannot fail");
    println!(
        "Training set: {} synthesized + {} paraphrases + {} augmented sentences",
        data.synthesized.len(),
        data.paraphrases.len(),
        data.augmented.len()
    );
    let mut parser =
        LuinetParser::new(ModelConfig::default()).with_pretrained_lm(pipeline.pretrain_lm(1));
    parser.train(&pipeline.to_parser_examples(&data.combined(), NnOptions::default()));

    let command = "show me my dropbox files";
    let tokens = parser.predict(&genie_templates::intern::shared().tokenize_text(command));
    println!("\nUser command:        {command}");
    println!("Predicted tokens:    {}", tokens.join(" "));
    if let Ok(predicted) = from_tokens(&tokens) {
        println!("Predicted program:   {predicted}");
        println!(
            "Confirmation:        {}",
            Describer::new(&library).describe(&predicted)
        );
    }

    // Serve the trained parser behind the thread-safe engine facade: every
    // answer is decoded, typechecked and policy-checked, and malformed
    // requests come back as typed errors instead of panics.
    let engine = genie::GenieEngine::builder()
        .thingpedia(library.clone())
        .model(parser)
        .build()?;
    match engine.parse(&genie::ParseRequest::new(command)) {
        Ok(response) => println!(
            "\nServed via GenieEngine: {} candidate(s); best: {}",
            response.candidates.len(),
            response.best().source
        ),
        Err(error) => println!("\nServed via GenieEngine: no parse ({error})"),
    }
    assert!(engine.parse(&genie::ParseRequest::new("")).is_err());

    // 4. Put the engine on a socket: genie-server speaks HTTP/JSON over
    //    std TcpListener, coalescing concurrent requests into deterministic
    //    micro-batches. Port 0 picks an ephemeral port.
    let config = genie_server::ServerConfig::builder()
        .addr("127.0.0.1:0")
        .quota(64, 16.0) // per-client token bucket: 64 burst, 16 req/s
        .build()?;
    let mut server = genie_server::GenieServer::bind(engine, config)?;
    println!("\ngenie-server listening on http://{}", server.local_addr());
    println!(
        "  try: curl -d '{{\"utterance\": \"{command}\"}}' http://{}/v1/parse",
        server.local_addr()
    );
    server.shutdown(); // graceful: drains in-flight requests
    Ok(())
}
