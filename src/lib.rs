//! # genie-repro
//!
//! Umbrella crate for the reproduction of *Genie: A Generator of Natural
//! Language Semantic Parsers for Virtual Assistant Commands* (PLDI 2019).
//!
//! This crate re-exports the workspace members so that the runnable examples
//! under `examples/` and the cross-crate integration tests under `tests/` can
//! depend on a single package. Library users should normally depend on the
//! individual crates directly:
//!
//! * [`thingtalk`] — the Virtual Assistant Programming Language (VAPL).
//! * [`thingpedia`] — the skill library and simulated device runtime.
//! * [`genie_nlp`] — tokenization, argument identification, paraphrase lexicon.
//! * [`genie_templates`] — the NL-template language and sampled synthesis.
//! * [`luinet`] — the neural semantic parser and the Wang-et-al baseline.
//! * [`genie`] — the end-to-end data-acquisition and evaluation pipeline.
//!
//! # Quickstart
//!
//! ```
//! use thingtalk::syntax::parse_program;
//!
//! let program = parse_program(
//!     "now => @com.thecatapi.get() => @com.facebook.post_picture(caption = \"funny cat\")",
//! )?;
//! assert!(program.is_compound());
//! # Ok::<(), thingtalk::Error>(())
//! ```

pub use genie;
pub use genie_nlp;
pub use genie_templates;
pub use luinet;
pub use thingpedia;
pub use thingtalk;
