//! Cross-crate integration tests: the full path from natural language to an
//! executed program, exercising every layer of the reproduction together.

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie_templates::{GeneratorConfig, SentenceGenerator};
use luinet::{LuinetParser, ModelConfig};
use thingpedia::{SimulatedDevices, Thingpedia};
use thingtalk::canonical::{canonicalized, equivalent};
use thingtalk::describe::Describer;
use thingtalk::nn_syntax::{from_tokens, to_tokens, NnSyntaxOptions};
use thingtalk::runtime::ExecutionEngine;
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::typecheck;

fn small_pipeline_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        synthesis: GeneratorConfig {
            target_per_rule: 12,
            max_depth: 5,
            instantiations_per_template: 1,
            seed,
            include_aggregation: false,
            include_timers: true,
            threads: 0,
            ..GeneratorConfig::default()
        },
        paraphrase_sample: 50,
        ..PipelineConfig::default()
    }
}

#[test]
fn fig1_command_parses_typechecks_executes_and_roundtrips() {
    let library = Thingpedia::builtin();
    let program = parse_program(
        "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, caption = \"funny cat\")",
    )
    .unwrap();
    typecheck(&library, &program).unwrap();

    // Canonicalization is idempotent and preserves equivalence.
    let canonical = canonicalized(&library, &program);
    assert!(equivalent(&library, &program, &canonical));

    // NN-syntax round trip.
    let tokens = to_tokens(&canonical, NnSyntaxOptions::default());
    let decoded = from_tokens(&tokens).unwrap();
    assert_eq!(canonical, decoded);

    // The canonical confirmation sentence mentions both skills.
    let sentence = Describer::new(&library).describe(&canonical);
    assert!(sentence.contains("facebook") || sentence.contains("Facebook"));

    // Execution on the simulated devices performs the Facebook action with
    // the picture URL passed from the cat API.
    let mut engine = ExecutionEngine::new(SimulatedDevices::new(library, 1));
    let outcome = engine.execute_once(&canonical).unwrap();
    assert_eq!(outcome.actions.len(), 1);
    assert!(outcome.actions[0].params.contains_key("picture_url"));
    assert!(outcome.actions[0].params.contains_key("caption"));
}

#[test]
fn synthesized_programs_execute_on_the_simulated_runtime() {
    let library = Thingpedia::builtin();
    let generator = SentenceGenerator::new(
        &library,
        GeneratorConfig {
            target_per_rule: 10,
            max_depth: 5,
            instantiations_per_template: 1,
            seed: 3,
            include_aggregation: false,
            include_timers: false,
            threads: 0,
            ..GeneratorConfig::default()
        },
    );
    let examples = generator.synthesize();
    assert!(examples.len() > 50);
    let mut executed = 0;
    let mut engine = ExecutionEngine::new(SimulatedDevices::new(library.clone(), 3));
    for example in examples.iter().take(120) {
        typecheck(&library, &example.program).unwrap();
        // `now` programs run once; event-driven ones for a few ticks.
        let result = if example.program.is_event_driven() {
            engine.run_for(&example.program, 2)
        } else {
            engine.execute_once(&example.program)
        };
        result.unwrap_or_else(|e| panic!("`{}` failed to execute: {e}", example.program));
        executed += 1;
    }
    assert_eq!(executed, examples.len().min(120));
    assert!(executed >= 50);
}

#[test]
fn trained_parser_translates_held_out_paraphrases() {
    let library = Thingpedia::builtin();
    let pipeline = DataPipeline::new(&library, small_pipeline_config(7));
    let data = pipeline.build().unwrap();
    let train = pipeline.to_parser_examples(&data.combined(), NnOptions::default());
    assert!(train.len() > 200);

    let mut parser = LuinetParser::new(ModelConfig {
        epochs: 2,
        ..ModelConfig::default()
    });
    parser.train(&train);

    // Evaluate on paraphrases the parser has not seen (same programs, new
    // sentences): accuracy must be far above chance.
    let held_out: Vec<_> = data
        .paraphrases
        .examples
        .iter()
        .take(60)
        .map(|e| {
            (
                genie_templates::intern::shared().tokenized(&e.utterance),
                pipeline.gold_tokens(e, NnOptions::default()),
            )
        })
        .collect();
    let correct = held_out
        .iter()
        .filter(|(sentence, gold)| {
            let predicted = parser.predict(sentence);
            predicted == *gold
                || from_tokens(&predicted)
                    .map(|p| {
                        from_tokens(gold)
                            .map(|g| equivalent(&library, &p, &g))
                            .unwrap_or(false)
                    })
                    .unwrap_or(false)
        })
        .count();
    let accuracy = correct as f64 / held_out.len() as f64;
    assert!(
        accuracy > 0.2,
        "expected non-trivial accuracy on paraphrases of trained programs, got {accuracy:.2}"
    );
}

#[test]
fn predicted_programs_are_mostly_executable() {
    let library = Thingpedia::builtin();
    let pipeline = DataPipeline::new(&library, small_pipeline_config(11));
    let data = pipeline.build().unwrap();
    let train = pipeline.to_parser_examples(&data.combined(), NnOptions::default());
    let mut parser = LuinetParser::new(ModelConfig {
        epochs: 2,
        ..ModelConfig::default()
    });
    parser.train(&train);

    let mut engine = ExecutionEngine::new(SimulatedDevices::new(library.clone(), 5));
    let mut parsed_ok = 0;
    let mut total = 0;
    for example in data.synthesized.examples.iter().take(40) {
        total += 1;
        let predicted =
            parser.predict(&genie_templates::intern::shared().tokenized(&example.utterance));
        let Ok(program) = from_tokens(&predicted) else {
            continue;
        };
        parsed_ok += 1;
        if typecheck(&library, &program).is_ok() && !program.is_event_driven() {
            // Executable predictions must not crash the runtime.
            let _ = engine.execute_once(&program);
        }
    }
    assert!(
        parsed_ok * 2 >= total,
        "only {parsed_ok}/{total} predictions were syntactically valid"
    );
}
