//! Replica catch-up end to end: a follower bound with
//! [`GenieServer::bind_follower`] polls its primary's delta feed, replays
//! journal records through the same deterministic rebuild the primary ran,
//! and converges on the primary's `weights_digest` byte for byte. When the
//! primary is unreachable the follower keeps serving its last world in
//! degraded mode (`/readyz` flips to 503); when it has fallen too far
//! behind it resyncs wholesale from the primary's sealed world bundle.
//!
//! No failpoints are armed here, so these tests run in the harness's
//! normal parallel threads (unlike `fault_tolerance.rs`).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use genie::live::LiveWorld;
use genie::ParaphraseConfig;
use genie::PipelineConfig;
use genie_server::{FollowerConfig, GenieServer, ServerConfig};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;
use thingpedia::{PhraseCategory, PrimitiveTemplate, Thingpedia};

/// How long a follower gets to converge before the test gives up. Each
/// applied record is a full deterministic rebuild (synthesis + retrain),
/// so this is generous on purpose.
const CONVERGENCE_DEADLINE: Duration = Duration::from_secs(300);

// ---------------------------------------------------------------------------
// Fixtures: the same small deterministic world `recovery.rs` uses
// ---------------------------------------------------------------------------

fn pipeline() -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .max_depth(4)
                .instantiations_per_template(1)
                .seed(7)
                .threads(1)
                .shards(4)
                .quiet(true)
                .build()
                .unwrap(),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(7)
                .build()
                .unwrap(),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(7)
        .build()
        .unwrap()
}

fn model() -> ModelConfig {
    ModelConfig {
        epochs: 4,
        seed: 7,
        threads: 1,
        ..ModelConfig::default()
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("genie-replication-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn reload_body(utterance: &str) -> String {
    let class = "class @com.test.lights { action set_power(in req power : Enum(on, off)); }";
    format!(
        "{{\"op\": \"upsert\", \"class\": {}, \"templates\": \
         [{{\"category\": \"vp\", \"function\": \"set_power\", \
         \"utterance\": {}}}], \"mode\": \"full\", \"wait\": true}}",
        genie_server::json::escape(class),
        genie_server::json::escape(utterance),
    )
}

fn lights_delta(utterance: &str) -> genie::SkillDelta {
    let class = thingtalk::syntax::parse_class(
        "class @com.test.lights { action set_power(in req power : Enum(on, off)); }",
    )
    .unwrap();
    let template = PrimitiveTemplate::new(
        &class.name,
        "set_power",
        PhraseCategory::VerbPhrase,
        utterance.to_owned(),
    );
    genie::SkillDelta::Upsert {
        class,
        templates: vec![template],
    }
}

fn server_config() -> ServerConfig {
    ServerConfig::builder().worker_threads(2).build().unwrap()
}

// ---------------------------------------------------------------------------
// A minimal blocking HTTP client (same idiom as `server_e2e.rs`)
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    body: String,
}

fn read_response<R: BufRead>(reader: &mut R) -> Response {
    let mut status_line = String::new();
    assert!(reader.read_line(&mut status_line).unwrap() > 0, "EOF");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("malformed status line")
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').unwrap();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    Response {
        status,
        body: String::from_utf8(body).unwrap(),
    }
}

fn get(addr: SocketAddr, path: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    read_response(&mut BufReader::new(stream))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len(),
            )
            .as_bytes(),
        )
        .unwrap();
    read_response(&mut BufReader::new(stream))
}

fn metric(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing from:\n{metrics_text}"))
}

/// The `"weights_digest": "0x…"` value out of a `/v1/admin/version` body.
fn digest_of(version_body: &str) -> String {
    let key = "\"weights_digest\": \"";
    let start = version_body
        .find(key)
        .unwrap_or_else(|| panic!("no weights_digest in: {version_body}"))
        + key.len();
    let end = start + version_body[start..].find('"').unwrap();
    version_body[start..end].to_owned()
}

fn wait_for(deadline: Duration, what: &str, mut done: impl FnMut() -> bool) {
    let give_up = Instant::now() + deadline;
    while !done() {
        assert!(Instant::now() < give_up, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

// ---------------------------------------------------------------------------
// Catch-up: record-by-record replay converges on the primary's digest
// ---------------------------------------------------------------------------

#[test]
fn a_follower_replays_the_delta_feed_and_matches_the_primary_digest() {
    // The primary must journal for its delta feed to carry records —
    // a non-durable primary only ever offers the bundle path.
    let dir = scratch_dir("catchup-primary");
    let (primary_live, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    let primary_live = Arc::new(primary_live);
    let follower_live =
        Arc::new(LiveWorld::bootstrap(Thingpedia::builtin(), pipeline(), model()).unwrap());
    // Determinism precondition: two cold bootstraps of the same config are
    // the same world. Everything below builds on this.
    assert_eq!(
        primary_live.weights_digest(),
        follower_live.weights_digest()
    );

    let mut primary = GenieServer::bind_live(primary_live.clone(), server_config()).unwrap();
    let follower_config = FollowerConfig::builder(primary.local_addr().to_string())
        .poll_interval(Duration::from_millis(25))
        .backoff(Duration::from_millis(20), Duration::from_millis(200))
        .build()
        .unwrap();
    let mut follower =
        GenieServer::bind_follower(follower_live.clone(), server_config(), follower_config)
            .unwrap();

    // Followers take writes from their primary only: a direct reload is a
    // typed refusal, not a fork of history.
    let refused = post(
        follower.local_addr(),
        "/v1/admin/reload",
        "{\"op\": \"remove\", \"name\": \"x\"}",
    );
    assert_eq!(refused.status, 503, "body: {}", refused.body);

    // Advance the primary (synchronous reload: the response carries the
    // swap report), then let the poller replay the record.
    let swapped = post(
        primary.local_addr(),
        "/v1/admin/reload",
        &reload_body("flip the replicated lights $power"),
    );
    assert_eq!(swapped.status, 200, "body: {}", swapped.body);
    assert_eq!(primary_live.version(), 2);

    wait_for(
        CONVERGENCE_DEADLINE,
        "follower catch-up to version 2",
        || follower_live.version() == 2,
    );
    assert_eq!(
        follower_live.weights_digest(),
        primary_live.weights_digest(),
        "the replayed rebuild must be byte-identical to the primary's"
    );

    // The same identity must hold over the wire, and the follower must
    // report itself ready with zero lag.
    let primary_version = get(primary.local_addr(), "/v1/admin/version");
    let follower_version = get(follower.local_addr(), "/v1/admin/version");
    assert_eq!(
        digest_of(&primary_version.body),
        digest_of(&follower_version.body)
    );
    let ready = get(follower.local_addr(), "/readyz");
    assert_eq!(ready.status, 200, "body: {}", ready.body);
    assert!(
        ready.body.contains("\"role\": \"follower\""),
        "body: {}",
        ready.body
    );
    assert!(
        ready.body.contains("\"ready\": true"),
        "body: {}",
        ready.body
    );
    let metrics = follower.metrics_text();
    assert!(metric(&metrics, "server_replication_applied_total") >= 1);
    assert_eq!(metric(&metrics, "server_replication_lag"), 0);
    assert_eq!(metric(&metrics, "server_degraded"), 0);

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Degraded mode: an unreachable primary flips /readyz, parsing continues
// ---------------------------------------------------------------------------

#[test]
fn an_unreachable_primary_degrades_the_follower_but_parsing_continues() {
    // A listener that accepts into its backlog and never answers: every
    // poll attempt times out. Keeping it bound (instead of pointing at a
    // closed port) guards against another test grabbing the port.
    let black_hole = TcpListener::bind("127.0.0.1:0").unwrap();
    let primary_addr = black_hole.local_addr().unwrap();

    let follower_live =
        Arc::new(LiveWorld::bootstrap(Thingpedia::builtin(), pipeline(), model()).unwrap());
    let follower_config = FollowerConfig::builder(primary_addr.to_string())
        .poll_interval(Duration::from_millis(25))
        .backoff(Duration::from_millis(20), Duration::from_millis(100))
        .attempt_timeout(Duration::from_millis(100))
        .retry_budget(2)
        .build()
        .unwrap();
    let mut follower =
        GenieServer::bind_follower(follower_live, server_config(), follower_config).unwrap();
    let addr = follower.local_addr();

    wait_for(Duration::from_secs(60), "degraded mode", || {
        get(addr, "/readyz").status == 503
    });
    let ready = get(addr, "/readyz");
    assert!(
        ready.body.contains("\"status\": \"degraded\""),
        "body: {}",
        ready.body
    );
    assert!(
        ready.body.contains("\"degraded\": true"),
        "body: {}",
        ready.body
    );
    assert!(
        ready.body.contains("\"role\": \"follower\""),
        "body: {}",
        ready.body
    );
    let metrics = follower.metrics_text();
    assert_eq!(metric(&metrics, "server_degraded"), 1);
    assert!(metric(&metrics, "server_replication_errors_total") >= 2);

    // Degraded ≠ down: liveness holds and the last world keeps answering
    // parses (a nonsense utterance earns a *typed* 422, not a refusal).
    assert_eq!(get(addr, "/healthz").status, 200);
    let parse = post(addr, "/v1/parse", "{\"utterance\": \"zz unparseable zz\"}");
    assert_eq!(parse.status, 422, "body: {}", parse.body);
    assert!(parse.body.contains("\"error\""), "body: {}", parse.body);

    follower.shutdown();
    drop(black_hole);
}

// ---------------------------------------------------------------------------
// Resync: a follower too far behind installs the primary's sealed bundle
// ---------------------------------------------------------------------------

#[test]
fn a_lagging_follower_resyncs_from_the_primary_bundle() {
    // The primary must be durable — the bundle endpoint serves its sealed
    // `world.bundle` verbatim.
    let dir = scratch_dir("resync-primary");
    let (primary_live, _) =
        LiveWorld::open_durable(&dir, Thingpedia::builtin(), pipeline(), model()).unwrap();
    let primary_live = Arc::new(primary_live);
    primary_live
        .reload(&lights_delta("turn the resync lights $power"))
        .unwrap();
    primary_live
        .reload(&lights_delta("switch the resync lights $power"))
        .unwrap();
    assert_eq!(primary_live.version(), 3);

    let follower_live =
        Arc::new(LiveWorld::bootstrap(Thingpedia::builtin(), pipeline(), model()).unwrap());
    let mut primary = GenieServer::bind_live(primary_live.clone(), server_config()).unwrap();
    // resync_lag 1: trailing by two versions makes record-by-record replay
    // "uneconomical", forcing the bundle path.
    let follower_config = FollowerConfig::builder(primary.local_addr().to_string())
        .poll_interval(Duration::from_millis(25))
        .backoff(Duration::from_millis(20), Duration::from_millis(200))
        .resync_lag(1)
        .build()
        .unwrap();
    let mut follower =
        GenieServer::bind_follower(follower_live.clone(), server_config(), follower_config)
            .unwrap();

    wait_for(CONVERGENCE_DEADLINE, "bundle resync to version 3", || {
        follower_live.version() == 3
    });
    assert_eq!(
        follower_live.weights_digest(),
        primary_live.weights_digest(),
        "the installed bundle must carry the primary's exact model"
    );
    let metrics = follower.metrics_text();
    assert!(metric(&metrics, "server_replication_resyncs_total") >= 1);
    assert_eq!(metric(&metrics, "server_replication_lag"), 0);
    let ready = get(follower.local_addr(), "/readyz");
    assert_eq!(ready.status, 200, "body: {}", ready.body);

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
