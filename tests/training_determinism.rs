//! Determinism guarantees of the sharded parallel LUInet trainer: a fixed
//! `ModelConfig` must produce byte-identical trained weights and
//! predictions regardless of the worker thread count and across repeated
//! runs, and sharded (parallel-capable) training must not cost accuracy
//! versus the one-shard sequential trainer.

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie_templates::GeneratorConfig;
use luinet::{LuinetParser, ModelConfig, ParserExample};
use thingpedia::Thingpedia;

/// A real (pipeline-synthesized) training workload, big enough to split
/// into the default four shards.
fn workload() -> Vec<ParserExample> {
    let library = Thingpedia::builtin();
    let pipeline = DataPipeline::new(
        &library,
        PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(15)
                    .max_depth(5)
                    .instantiations_per_template(1)
                    .seed(19)
                    .quiet(true)
                    .build()
                    .expect("valid synthesis config"),
            )
            .paraphrase_sample(60)
            .seed(19)
            .build()
            .expect("valid pipeline config"),
    );
    let data = pipeline.build().expect("builtin pipeline builds");
    pipeline.to_parser_examples(&data.combined(), NnOptions::default())
}

fn train(examples: &[ParserExample], threads: usize, train_shards: usize) -> LuinetParser {
    let mut parser = LuinetParser::new(ModelConfig {
        epochs: 2,
        seed: 23,
        threads,
        train_shards,
        ..ModelConfig::default()
    });
    parser.train(examples);
    parser
}

#[test]
fn trained_weights_are_thread_count_invariant() {
    let examples = workload();
    assert!(
        examples.len() >= 256,
        "workload too small: {}",
        examples.len()
    );
    let sequential = train(&examples, 1, 4);
    let digest = sequential.weights_digest();
    let sentences: Vec<&genie_nlp::TokenStream> =
        examples.iter().take(40).map(|e| &e.sentence).collect();
    let topk = sequential.predict_topk_batch(&sentences, 3, 1);
    for threads in [2, 8, 0] {
        let parallel = train(&examples, threads, 4);
        assert_eq!(
            parallel.weights_digest(),
            digest,
            "trained weights differ at {threads} threads"
        );
        assert_eq!(
            parallel.predict_topk_batch(&sentences, 3, threads),
            topk,
            "top-k predictions differ at {threads} threads"
        );
    }
}

#[test]
fn matrix_thread_count_matches_the_sequential_trainer() {
    // The CI determinism matrix exports GENIE_TEST_THREADS={1, 2, 8}; the
    // trained weights at that worker count must equal the sequential ones.
    // Without the variable (local runs), default to 8 workers so the
    // multi-worker path is still exercised.
    let threads: usize = std::env::var("GENIE_TEST_THREADS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(8);
    let examples = workload();
    assert_eq!(
        train(&examples, threads, 4).weights_digest(),
        train(&examples, 1, 4).weights_digest(),
        "threads = {threads}"
    );
}

#[test]
fn same_seed_same_weights_across_runs() {
    let examples = workload();
    assert_eq!(
        train(&examples, 0, 4).weights_digest(),
        train(&examples, 0, 4).weights_digest()
    );
}

#[test]
fn sharded_training_accuracy_is_no_worse_than_sequential() {
    // The smoke-experiment guard of the training rework: the default
    // sharded trainer (parallel-capable, summed delayed updates with a
    // short mixing round) must not lose accuracy against the one-shard
    // trainer — a fully sequential perceptron over the same per-epoch
    // shuffle (the closest living relative of the seed repo's trainer,
    // which shuffled from one continuing RNG instead).
    let examples = workload();
    let sequential = train(&examples, 1, 1).exact_match_accuracy(&examples);
    let sharded = train(&examples, 0, 4).exact_match_accuracy(&examples);
    assert!(
        sharded >= sequential,
        "sharded training lost accuracy: {sharded:.4} < {sequential:.4}"
    );
    assert!(
        sequential > 0.3,
        "sequential trainer unexpectedly weak: {sequential:.4}"
    );
}
