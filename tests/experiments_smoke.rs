//! Smoke tests for the experiment runners: every figure/table of the paper
//! can be regenerated end to end at tiny scale, and the qualitative shape of
//! the headline result (Fig. 8: Genie beats paraphrase-only on realistic
//! data) holds.

use genie::experiments::{
    ablation, case_studies, dataset_characteristics, error_analysis, training_strategies,
    ExperimentScale,
};
use thingpedia::Thingpedia;

fn tiny() -> ExperimentScale {
    ExperimentScale::tiny()
}

#[test]
fn fig7_dataset_characteristics_run() {
    let library = Thingpedia::builtin();
    let stats = dataset_characteristics(&library, tiny()).unwrap();
    assert!(stats.total_sentences > 100);
    // Every Fig. 7 bucket is represented.
    assert!(stats.composition.primitive > 0);
    assert!(stats.composition.primitive_filters > 0);
    assert!(stats.composition.compound > 0);
    assert!(stats.composition.compound_param_passing > 0);
    assert!(stats.composition.compound_filters > 0);
}

#[test]
fn fig8_training_strategies_run_and_genie_wins_on_realistic_data() {
    let library = Thingpedia::builtin();
    let mut scale = tiny();
    scale.target_per_rule = 20;
    scale.paraphrase_sample = 80;
    scale.epochs = 2;
    let rows = training_strategies(&library, scale).unwrap();
    assert_eq!(rows.len(), 3);
    let genie = rows.iter().find(|r| r.strategy == "Genie").unwrap();
    let paraphrase_only = rows
        .iter()
        .find(|r| r.strategy == "Paraphrase Only")
        .unwrap();
    // The headline qualitative result: on realistic (cheatsheet) data the
    // Genie strategy is at least as good as training on paraphrases alone.
    assert!(
        genie.cheatsheet.mean + 1e-9 >= paraphrase_only.cheatsheet.mean,
        "Genie {:.3} vs Paraphrase Only {:.3} on cheatsheet data",
        genie.cheatsheet.mean,
        paraphrase_only.cheatsheet.mean
    );
    // At this tiny scale absolute accuracy is near zero; just check the
    // numbers are well-formed. (The standard-scale run recorded in
    // EXPERIMENTS.md shows non-trivial accuracy.)
    for summary in [
        &genie.paraphrase,
        &genie.validation,
        &genie.cheatsheet,
        &genie.ifttt,
    ] {
        assert!(summary.mean >= 0.0 && summary.mean <= 1.0);
        assert!(summary.min <= summary.mean && summary.mean <= summary.max);
    }
}

#[test]
fn table3_ablation_runs_with_all_rows() {
    let library = Thingpedia::builtin();
    let rows = ablation(&library, tiny()).unwrap();
    assert_eq!(rows.len(), 6);
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"Genie"));
    assert!(names.contains(&"- canonicalization"));
    assert!(names.contains(&"- decoder LM"));
    for row in &rows {
        assert!(row.validation.mean >= 0.0 && row.validation.mean <= 1.0);
    }
}

#[test]
fn fig9_case_studies_run() {
    let rows = case_studies(tiny()).unwrap();
    assert_eq!(rows.len(), 3);
    let labels: Vec<&str> = rows.iter().map(|r| r.case_study.as_str()).collect();
    assert_eq!(labels, vec!["Spotify", "TACL", "TT+A"]);
    for row in &rows {
        assert!(row.genie.mean >= 0.0 && row.genie.mean <= 1.0);
        assert!(row.baseline.mean >= 0.0 && row.baseline.mean <= 1.0);
    }
}

#[test]
fn error_analysis_metrics_are_ordered() {
    let library = Thingpedia::builtin();
    let mut scale = tiny();
    scale.target_per_rule = 15;
    let result = error_analysis(&library, scale).unwrap();
    assert!(result.count > 0);
    // Structural containments that must hold by definition.
    assert!(result.syntax_correct >= result.type_correct - 1e-9);
    assert!(result.function_accuracy >= result.program_accuracy - 1e-9);
    assert!(result.device_accuracy >= result.function_accuracy - 1e-9);
}
