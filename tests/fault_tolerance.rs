//! Fault-tolerance tests for the `genie-server` front-end: a panicking
//! request handler answers `500` and the server keeps serving, a dead
//! acceptor thread is respawned by the watchdog, the overload gate sheds
//! with `503` + `Retry-After`, expired deadlines answer a typed `504`,
//! and `POST /v1/admin/reload` hands the rebuild to a background builder
//! (202-accepted) that the status endpoint tracks to completion.
//!
//! These tests live in their own binary because several of them arm the
//! **process-global** failpoint registry (`genie_nlp::failpoint`). The
//! test harness still runs tests in this binary on parallel threads, so
//! every test that talks to a server serializes on
//! [`genie_nlp::failpoint::registry_test_lock`] — a test that armed
//! `server.handle` must never overlap a test that assumed a quiet
//! registry.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use genie::engine::{GenieEngine, ParseRequest};
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie::LiveWorld;
use genie_nlp::failpoint::{self, FaultPlan, SiteSpec};
use genie_server::{GenieServer, ServerConfig};
use genie_templates::GeneratorConfig;
use luinet::{LuinetParser, ModelConfig};
use thingpedia::Thingpedia;

// ---------------------------------------------------------------------------
// Serialization + fixtures
// ---------------------------------------------------------------------------

/// Serializes every test in this binary: the failpoint registry is
/// process-global, so an armed plan in one test would inject faults into
/// a server under test in another.
fn registry_lock() -> MutexGuard<'static, ()> {
    failpoint::registry_test_lock()
}

/// Injected panics are part of the script here; keep them out of the test
/// output while still printing any *unexpected* panic. Installed once —
/// the hook is process-global, like the registry.
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if message.contains("injected panic") {
                return;
            }
            previous(info);
        }));
    });
}

/// One trained model for the whole file; per-test engines are cheap views
/// over it (same idiom as `tests/server_e2e.rs`).
fn fixture() -> &'static (Arc<LuinetParser>, String) {
    static FIXTURE: OnceLock<(Arc<LuinetParser>, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let pipeline = small_pipeline();
        let engine = GenieEngine::builder()
            .train(
                pipeline,
                ModelConfig {
                    epochs: 5,
                    seed: 11,
                    ..ModelConfig::default()
                },
            )
            .unwrap()
            .build()
            .unwrap();
        let library = Thingpedia::builtin();
        let data = genie::DataPipeline::new(&library, pipeline)
            .build()
            .unwrap();
        let utterance = data
            .synthesized
            .examples
            .iter()
            .map(|e| e.text())
            .find(|u| {
                engine
                    .parse(&ParseRequest::new(u.clone()).bypass_cache())
                    .is_ok()
            })
            .expect("the engine answers none of its own training utterances");
        (engine.model(), utterance)
    })
}

fn small_pipeline() -> PipelineConfig {
    PipelineConfig::builder()
        .synthesis(
            GeneratorConfig::builder()
                .target_per_rule(10)
                .instantiations_per_template(1)
                .seed(11)
                .quiet(true)
                .build()
                .unwrap(),
        )
        .paraphrase(
            ParaphraseConfig::builder()
                .per_sentence(1)
                .error_rate(0.0)
                .seed(11)
                .build()
                .unwrap(),
        )
        .paraphrase_sample(20)
        .parameter_expansion(false)
        .seed(11)
        .build()
        .unwrap()
}

fn engine() -> GenieEngine {
    let (model, _) = fixture();
    GenieEngine::builder()
        .model_shared(model.clone())
        .threads(1)
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------------
// A minimal test client (same shape as tests/server_e2e.rs)
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// `None` on clean EOF *or* a reset — a connection killed by an injected
/// acceptor panic may surface either way depending on timing.
fn read_response<R: BufRead>(reader: &mut R) -> Option<Response> {
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) | Err(_) => return None,
        Ok(_) => {}
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("malformed status line")
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').unwrap();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().unwrap();
        }
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Response {
        status,
        headers,
        body: String::from_utf8(body).unwrap(),
    })
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    try_post(addr, path, body).expect("no response")
}

/// Like [`post`] but surfaces a dropped connection as `None` — the
/// expected shape when an injected panic kills the thread mid-accept.
fn try_post(addr: SocketAddr, path: &str, body: &str) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    if stream.write_all(request.as_bytes()).is_err() {
        return None;
    }
    read_response(&mut BufReader::new(stream))
}

fn get(addr: SocketAddr, path: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    read_response(&mut BufReader::new(stream)).expect("no response")
}

fn parse_body(utterance: &str) -> String {
    format!(
        "{{\"utterance\": {}}}",
        genie_server::json::escape(utterance)
    )
}

fn metric(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .map(|rest| rest.trim().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing from:\n{metrics_text}"))
}

fn code_of(response: &Response) -> String {
    let marker = "\"code\": \"";
    let start = response
        .body
        .find(marker)
        .unwrap_or_else(|| panic!("no error code in: {}", response.body))
        + marker.len();
    let rest = &response.body[start..];
    rest[..rest.find('"').unwrap()].to_owned()
}

// ---------------------------------------------------------------------------
// Supervision: panics are caught, dead acceptors come back
// ---------------------------------------------------------------------------

#[test]
fn a_panicking_handler_answers_500_and_the_server_keeps_serving() {
    let _serialized = registry_lock();
    quiet_injected_panics();
    let server = GenieServer::bind(
        engine(),
        ServerConfig::builder().worker_threads(2).build().unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let (_, utterance) = fixture();

    let plan =
        FaultPlan::new(0xF417).site("server.handle", SiteSpec::new().panic(1.0).max_fires(1));
    {
        let _armed = failpoint::armed(&plan);
        let crashed = post(addr, "/v1/parse", &parse_body(utterance));
        assert_eq!(crashed.status, 500, "body: {}", crashed.body);
        assert_eq!(code_of(&crashed), "internal_panic");
        // The panic was supervised: the very next request (same worker
        // pool) parses normally.
        let healthy = post(addr, "/v1/parse", &parse_body(utterance));
        assert_eq!(healthy.status, 200, "body: {}", healthy.body);
    }
    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "server_panics_total"), 1);
    assert_eq!(metric(&metrics, "server_acceptor_respawns_total"), 0);
}

#[test]
fn a_dead_acceptor_is_respawned_by_the_watchdog() {
    let _serialized = registry_lock();
    quiet_injected_panics();
    let server = GenieServer::bind(
        engine(),
        ServerConfig::builder().worker_threads(2).build().unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let (_, utterance) = fixture();

    let plan =
        FaultPlan::new(0xACC3).site("server.accept", SiteSpec::new().panic(1.0).max_fires(1));
    {
        let _armed = failpoint::armed(&plan);
        // The injected panic kills the acceptor right after accept: this
        // connection closes with no response written.
        let dropped = try_post(addr, "/v1/parse", &parse_body(utterance));
        assert!(
            dropped.is_none(),
            "the panicking acceptor should have dropped the connection"
        );
    }
    // The watchdog notices the dead thread on its next tick and respawns
    // it; until then the surviving acceptor keeps the port serving.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = server.metrics_text();
        if metric(&metrics, "server_acceptor_respawns_total") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never respawned the dead acceptor:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Back to full strength: requests keep being answered.
    for _ in 0..3 {
        let healthy = post(addr, "/v1/parse", &parse_body(utterance));
        assert_eq!(healthy.status, 200, "body: {}", healthy.body);
    }
}

// ---------------------------------------------------------------------------
// Overload shedding and deadlines
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_with_503_and_retry_after_instead_of_queueing() {
    let _serialized = registry_lock();
    let server = GenieServer::bind(
        engine(),
        ServerConfig::builder()
            .worker_threads(4)
            // One admission slot, and a long coalesce window so the first
            // request provably still holds it when the second arrives.
            .max_inflight(1)
            .coalesce_window(Duration::from_millis(400))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let (_, utterance) = fixture();

    let first = {
        let utterance = utterance.clone();
        std::thread::spawn(move || post(addr, "/v1/parse", &parse_body(&utterance)))
    };
    // Give the first request time to take the only slot and park in the
    // coalescer window, then overflow the gate.
    std::thread::sleep(Duration::from_millis(150));
    let shed = post(addr, "/v1/parse", &parse_body(utterance));
    assert_eq!(shed.status, 503, "body: {}", shed.body);
    assert_eq!(code_of(&shed), "overloaded");
    assert_eq!(
        shed.header("Retry-After"),
        Some("1"),
        "a shed response must carry Retry-After"
    );

    // The admitted request is unharmed by the shed one.
    let admitted = first.join().unwrap();
    assert_eq!(admitted.status, 200, "body: {}", admitted.body);
    assert!(metric(&server.metrics_text(), "server_shed_total") >= 1);
}

#[test]
fn requests_past_their_deadline_answer_a_typed_504() {
    let _serialized = registry_lock();
    let server = GenieServer::bind(
        engine(),
        ServerConfig::builder()
            .worker_threads(2)
            // The deadline expires while the lone request waits out the
            // coalesce window: deterministically too late.
            .request_deadline(Duration::from_millis(50))
            .coalesce_window(Duration::from_millis(400))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let (_, utterance) = fixture();

    let late = post(addr, "/v1/parse", &parse_body(utterance));
    assert_eq!(late.status, 504, "body: {}", late.body);
    assert_eq!(code_of(&late), "deadline_exceeded");
    assert!(metric(&server.metrics_text(), "server_deadline_exceeded_total") >= 1);
}

// ---------------------------------------------------------------------------
// Background reload: 202-accepted, status endpoint, version advance
// ---------------------------------------------------------------------------

#[test]
fn reload_returns_202_and_the_background_builder_swaps_the_world() {
    // Bootstrap outside the lock — it takes a second and arms nothing.
    let live = Arc::new(
        LiveWorld::bootstrap(
            Thingpedia::builtin(),
            small_pipeline(),
            ModelConfig {
                epochs: 4,
                seed: 11,
                threads: 1,
                ..ModelConfig::default()
            },
        )
        .unwrap(),
    );
    let _serialized = registry_lock();
    let server = GenieServer::bind_live(
        live.clone(),
        ServerConfig::builder().worker_threads(2).build().unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    let class = "class @com.test.lights { action set_power(in req power : Enum(on, off)); }";
    let body = format!(
        "{{\"op\": \"upsert\", \"class\": {}, \"templates\": \
         [{{\"category\": \"vp\", \"function\": \"set_power\", \
         \"utterance\": \"flip the test lights $power\"}}], \"mode\": \"full\"}}",
        genie_server::json::escape(class),
    );
    // No "wait" flag: the acceptor hands the rebuild to the background
    // builder and answers immediately.
    let accepted = post(addr, "/v1/admin/reload", &body);
    assert_eq!(accepted.status, 202, "body: {}", accepted.body);
    assert!(
        accepted.body.contains("\"status\": \"accepted\""),
        "body: {}",
        accepted.body
    );
    assert!(
        accepted.body.contains("\"accepted_version\": 1"),
        "body: {}",
        accepted.body
    );

    // Poll the status endpoint until the builder goes idle at version 2.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = get(addr, "/v1/admin/reload/status");
        assert_eq!(status.status, 200, "body: {}", status.body);
        if status.body.contains("\"state\": \"idle\"")
            && status.body.contains("\"world_version\": 2")
        {
            assert!(
                status.body.contains("\"last_error\": null"),
                "body: {}",
                status.body
            );
            assert!(
                !status.body.contains("\"last_report\": null"),
                "body: {}",
                status.body
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "background reload never finished: {}",
            status.body
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let version = get(addr, "/v1/admin/version");
    assert!(
        version.body.contains("\"world_version\": 2"),
        "body: {}",
        version.body
    );
    assert_eq!(live.version(), 2);
    assert_eq!(metric(&server.metrics_text(), "server_reload_ok_total"), 1);
}

#[test]
fn reload_endpoints_answer_503_not_live_without_a_live_world() {
    let _serialized = registry_lock();
    let server = GenieServer::bind(
        engine(),
        ServerConfig::builder().worker_threads(1).build().unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    let reload = post(
        addr,
        "/v1/admin/reload",
        "{\"op\": \"remove\", \"name\": \"x\"}",
    );
    assert_eq!(reload.status, 503, "body: {}", reload.body);
    assert_eq!(code_of(&reload), "not_live");
    let status = get(addr, "/v1/admin/reload/status");
    assert_eq!(status.status, 503, "body: {}", status.body);
    assert_eq!(code_of(&status), "not_live");
    // The version endpoint tells clients this server cannot hot-swap.
    let version = get(addr, "/v1/admin/version");
    assert!(
        version.body.contains("\"live\": false"),
        "body: {}",
        version.body
    );
}
