//! Integration tests for the serving redesign: the fallible public API
//! surface end to end — builder validation, malformed-input decoding,
//! typecheck rejection, and the `GenieEngine` facade's determinism
//! guarantees across thread counts.

use std::sync::OnceLock;

use genie::engine::{GenieEngine, ParseRequest};
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie::{Error, GenieResult, ParseResponse};
use genie_templates::GeneratorConfig;
use luinet::ModelConfig;
use thingpedia::Thingpedia;
use thingtalk::nn_syntax::{from_tokens, from_tokens_checked};

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

#[test]
fn builders_reject_bad_configs_across_all_layers() {
    // Synthesis: zero target, zero/huge depth, huge shard count.
    assert!(GeneratorConfig::builder()
        .target_per_rule(0)
        .build()
        .is_err());
    assert!(GeneratorConfig::builder().max_depth(0).build().is_err());
    assert!(GeneratorConfig::builder().max_depth(100).build().is_err());
    assert!(GeneratorConfig::builder().shards(1 << 20).build().is_err());

    // Paraphrase: a probability outside [0, 1] would panic inside the
    // worker simulation without validation.
    assert!(ParaphraseConfig::builder().error_rate(1.5).build().is_err());
    assert!(ParaphraseConfig::builder()
        .error_rate(-0.1)
        .build()
        .is_err());
    assert!(ParaphraseConfig::builder()
        .error_rate(f64::NAN)
        .build()
        .is_err());

    // Pipeline: nested configs are re-validated at assembly.
    let bad_synthesis = GeneratorConfig {
        max_depth: 0,
        ..GeneratorConfig::default()
    };
    assert!(PipelineConfig::builder()
        .synthesis(bad_synthesis)
        .build()
        .is_err());

    // The errors convert into the unified genie::Error.
    let error: Error = GeneratorConfig::builder()
        .max_depth(0)
        .build()
        .unwrap_err()
        .into();
    assert!(matches!(error, Error::Config(_)));
    assert!(error.to_string().contains("max_depth"));
}

// ---------------------------------------------------------------------------
// Malformed NN-syntax decode and typecheck rejection
// ---------------------------------------------------------------------------

fn tokens(text: &str) -> Vec<String> {
    text.split_whitespace().map(str::to_owned).collect()
}

#[test]
fn malformed_nn_syntax_decodes_to_errors_not_panics() {
    let malformed = [
        "",                            // empty
        "now =>",                      // truncated
        "\" dangling",                 // unterminated quoted span
        "=> => =>",                    // connective soup
        "now => ( ( ( => notify",      // unbalanced parens
        "unit:F 60",                   // unit before its number
        "now => @ ( ) => notify",      // bare @
        "^^com.spotify:song \" hi \"", // entity type before its string
        "param:status = \" hi",        // param without invocation
    ];
    for case in malformed {
        assert!(
            from_tokens(&tokens(case)).is_err(),
            "`{case}` unexpectedly decoded"
        );
    }
}

#[test]
fn typecheck_rejected_candidates_surface_the_type_error() {
    let library = Thingpedia::builtin();
    // Well-formed program over a function the library does not declare.
    let unknown = tokens("now => @com.nonexistent.query ( ) => notify");
    assert!(from_tokens(&unknown).is_ok(), "decode should succeed");
    assert!(matches!(
        from_tokens_checked(&library, &unknown),
        Err(thingtalk::Error::UnknownFunction { .. })
    ));
    // Known function, unknown parameter.
    let bad_param = tokens("now => @com.twitter.post ( param:no_such_param = \" hi \" )");
    assert!(matches!(
        from_tokens_checked(&library, &bad_param),
        Err(thingtalk::Error::UnknownParameter { .. })
    ));
}

// ---------------------------------------------------------------------------
// Engine determinism across thread counts
// ---------------------------------------------------------------------------

/// One trained engine for the whole file (training dominates the runtime),
/// plus a training utterance the engine demonstrably answers.
fn engine() -> &'static (GenieEngine, String) {
    static ENGINE: OnceLock<(GenieEngine, String)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let pipeline = PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(10)
                    .instantiations_per_template(1)
                    .seed(9)
                    .quiet(true)
                    .build()
                    .unwrap(),
            )
            .paraphrase(
                ParaphraseConfig::builder()
                    .per_sentence(1)
                    .error_rate(0.0)
                    .seed(9)
                    .build()
                    .unwrap(),
            )
            .paraphrase_sample(20)
            .parameter_expansion(false)
            .seed(9)
            .build()
            .unwrap();
        let engine = GenieEngine::builder()
            .train(
                pipeline,
                ModelConfig {
                    epochs: 5,
                    seed: 9,
                    ..ModelConfig::default()
                },
            )
            .unwrap()
            .build()
            .unwrap();
        let library = Thingpedia::builtin();
        let data = genie::DataPipeline::new(&library, pipeline)
            .build()
            .unwrap();
        let utterance = data
            .synthesized
            .examples
            .iter()
            .take(30)
            .map(|e| e.text())
            .find(|u| {
                engine
                    .parse(&ParseRequest::new(u.clone()).bypass_cache())
                    .is_ok()
            })
            .expect("the engine answers none of its own training utterances");
        engine.clear_cache();
        (engine, utterance)
    })
}

fn render(results: Vec<GenieResult<ParseResponse>>) -> Vec<String> {
    results
        .into_iter()
        .map(|result| match result {
            Ok(response) => format!(
                "ok {} | {}",
                response.sentence.join(" "),
                response
                    .candidates
                    .iter()
                    .map(|c| format!("{} ~ {}", c.tokens.join(" "), c.source))
                    .collect::<Vec<_>>()
                    .join(" ; ")
            ),
            Err(error) => format!("err {error}"),
        })
        .collect()
}

#[test]
fn engine_cache_and_batches_are_deterministic_across_thread_counts() {
    let (base, known) = engine();
    // A mixed workload: a known-parseable command (repeated, so the warm
    // pass hits the cache), other commands, and garbage.
    let utterances = [
        known.as_str(),
        "tweet deadline extended",
        known.as_str(),
        "",
        "show me my emails",
        "xyzzy plugh",
    ];
    let requests: Vec<ParseRequest> = utterances.iter().map(|u| ParseRequest::new(*u)).collect();
    let mut baseline: Option<Vec<String>> = None;
    for threads in [1usize, 2, 8] {
        // Fresh engine (own cache and counters) per worker count, sharing
        // the trained model.
        let engine = GenieEngine::builder()
            .model_shared(base.model())
            .threads(threads)
            .build()
            .unwrap();
        let rendered = render(engine.parse_batch(&requests));
        // A second pass is served (partly) from the cache and must agree
        // bit for bit with the cold pass.
        let warm = render(engine.parse_batch(&requests));
        assert_eq!(rendered, warm, "warm pass differs at {threads} threads");
        assert!(
            engine.stats().cache_hits > 0,
            "no cache hits at {threads} threads"
        );
        match &baseline {
            None => baseline = Some(rendered),
            Some(expected) => {
                assert_eq!(&rendered, expected, "batch differs at {threads} threads");
            }
        }
    }
}

#[test]
fn engine_errors_are_typed_end_to_end() {
    let (base, _) = engine();
    match base.parse(&ParseRequest::new("")) {
        Err(Error::EmptyUtterance) => {}
        other => panic!("expected EmptyUtterance, got {other:?}"),
    }
    let flood = "word ".repeat(500);
    match base.parse(&ParseRequest::new(flood)) {
        Err(Error::UtteranceTooLong { tokens, limit }) => {
            assert!(tokens > limit);
        }
        other => panic!("expected UtteranceTooLong, got {other:?}"),
    }
}
