//! Determinism guarantees of the sharded streaming synthesis engine: a
//! fixed `GeneratorConfig::seed` must produce an identical dataset —
//! utterances and program token sequences — regardless of the worker
//! thread count and the dedup shard count, and across repeated runs.

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;
use thingtalk::nn_syntax::{to_tokens, NnSyntaxOptions};

fn config(seed: u64, threads: usize) -> GeneratorConfig {
    GeneratorConfig {
        target_per_rule: 30,
        max_depth: 5,
        instantiations_per_template: 1,
        seed,
        include_aggregation: true,
        include_timers: true,
        threads,
        ..GeneratorConfig::default()
    }
}

/// The dataset as the parser sees it: (utterance, program tokens) pairs.
fn dataset_sharded(seed: u64, threads: usize, shards: usize) -> Vec<(String, Vec<String>)> {
    let library = Thingpedia::builtin();
    let config = GeneratorConfig {
        shards,
        ..config(seed, threads)
    };
    let generator = SentenceGenerator::new(&library, config);
    let interner = generator.interner().clone();
    generator
        .synthesize()
        .into_iter()
        .map(|e| {
            (
                interner.render(&e.utterance),
                to_tokens(&e.program, NnSyntaxOptions::default()),
            )
        })
        .collect()
}

fn dataset(seed: u64, threads: usize) -> Vec<(String, Vec<String>)> {
    dataset_sharded(seed, threads, GeneratorConfig::default().shards)
}

#[test]
fn same_seed_same_dataset_across_thread_and_shard_counts() {
    let sequential = dataset_sharded(42, 1, 1);
    assert!(
        sequential.len() > 100,
        "dataset too small: {}",
        sequential.len()
    );
    for threads in [2, 3, 8, 0] {
        for shards in [1, 4, 16] {
            let parallel = dataset_sharded(42, threads, shards);
            assert_eq!(
                parallel, sequential,
                "dataset differs between (1 thread, 1 shard) and ({threads} threads, {shards} shards)"
            );
        }
    }
}

#[test]
fn matrix_thread_count_matches_the_sequential_dataset() {
    // The CI determinism matrix exports GENIE_TEST_THREADS={1, 2, 8}; the
    // dataset at that worker count must equal the sequential single-shard
    // dataset. Without the variable (local runs), default to 8 workers so
    // the multi-worker path is still exercised.
    let threads: usize = std::env::var("GENIE_TEST_THREADS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(8);
    assert_eq!(
        dataset_sharded(42, threads, 4),
        dataset_sharded(42, 1, 1),
        "threads = {threads}"
    );
}

#[test]
fn same_seed_same_dataset_across_runs() {
    assert_eq!(dataset(7, 0), dataset(7, 0));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(dataset(7, 0), dataset(8, 0));
}

#[test]
fn pipeline_output_is_thread_count_invariant() {
    use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};

    let library = Thingpedia::builtin();
    let build = |threads: usize| {
        let pipeline = DataPipeline::new(
            &library,
            PipelineConfig {
                synthesis: config(11, threads),
                paraphrase_sample: 60,
                ..PipelineConfig::default()
            },
        );
        let data = pipeline.build().unwrap();
        let examples = pipeline.to_parser_examples(&data.combined(), NnOptions::default());
        examples
            .into_iter()
            .map(|e| (e.sentence_text(), e.program.join(" ")))
            .collect::<Vec<_>>()
    };
    let sequential = build(1);
    assert!(!sequential.is_empty());
    assert_eq!(build(4), sequential);
    assert_eq!(build(0), sequential);
}

#[test]
fn fused_streaming_pipeline_matches_the_ci_matrix() {
    use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};

    // The exact grid the CI determinism matrix runs through
    // `dataset_digest`: threads {1, 2, 8} × shards {1, 4, 16}.
    let library = Thingpedia::builtin();
    let run = |threads: usize, shards: usize| {
        let pipeline = DataPipeline::new(
            &library,
            PipelineConfig {
                synthesis: GeneratorConfig {
                    threads,
                    shards,
                    ..config(13, threads)
                },
                paraphrase_sample: 40,
                ..PipelineConfig::default()
            },
        );
        let mut out = Vec::new();
        pipeline
            .run_streaming(NnOptions::default(), |e| {
                out.push((e.sentence_text(), e.program.join(" ")))
            })
            .unwrap();
        out
    };
    let reference = run(1, 1);
    assert!(reference.len() > 100);
    for threads in [2, 8] {
        for shards in [4, 16] {
            assert_eq!(
                run(threads, shards),
                reference,
                "threads={threads} shards={shards}"
            );
        }
    }
}

/// Interner determinism (the contract `genie_templates::intern` documents):
/// a fresh pre-seeded arena driven by the full parallel synthesis engine
/// assigns **identical symbols** for any worker count — worker overlays
/// never assign global ids; the canonical sink commits them in stream
/// order.
#[test]
fn interner_assigns_identical_symbols_across_thread_counts() {
    use genie_templates::intern::{fresh, Symbol};
    use genie_templates::SentenceGenerator;
    use thingpedia::ParamDatasets;

    let library = Thingpedia::builtin();
    let datasets = ParamDatasets::builtin();
    let run = |threads: usize| {
        let interner = fresh(&library, &datasets);
        let generator = SentenceGenerator::with_interner(
            &library,
            GeneratorConfig {
                threads,
                batch_size: 8,
                ..config(29, threads)
            },
            interner.clone(),
        );
        let examples = generator.synthesize();
        assert!(!examples.is_empty());
        // The full arena contents: every (id, fragment) pair, in id order.
        let table: Vec<String> = (0..interner.len() as u32)
            .map(|id| interner.resolve(Symbol::from_raw(id)).to_owned())
            .collect();
        // And the raw symbol ids of every emitted utterance.
        let streams: Vec<Vec<u32>> = examples
            .iter()
            .map(|e| e.utterance.iter().map(|s| s.raw()).collect())
            .collect();
        (table, streams)
    };
    let (table_1, streams_1) = run(1);
    for threads in [2, 8] {
        let (table_n, streams_n) = run(threads);
        assert_eq!(
            table_n, table_1,
            "arena contents differ at {threads} threads"
        );
        assert_eq!(
            streams_n, streams_1,
            "symbol ids differ at {threads} threads"
        );
    }
}

/// Property-style round trip over randomized fragments: intern → resolve →
/// intern is the identity, and symbol equality coincides with fragment
/// equality.
#[test]
fn intern_resolve_intern_roundtrip_on_random_fragments() {
    use genie_nlp::intern::Interner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let interner = Interner::new();
    let mut rng = StdRng::seed_from_u64(4242);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyzABC0123456789:.,!@#\"'$_-"
        .chars()
        .collect();
    let mut fragments = Vec::new();
    for _ in 0..500 {
        let len = rng.gen_range(1..12);
        let fragment: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        fragments.push(fragment);
    }
    let symbols: Vec<_> = fragments.iter().map(|f| interner.intern(f)).collect();
    for (fragment, &symbol) in fragments.iter().zip(&symbols) {
        let resolved = interner.resolve(symbol).to_owned();
        assert_eq!(&resolved, fragment, "resolve changed the fragment");
        assert_eq!(
            interner.intern(&resolved),
            symbol,
            "round trip not identity"
        );
    }
    // Symbol equality ⇔ fragment equality (the injectivity the dedup keys
    // and every token comparison in the pipeline rely on).
    for i in 0..fragments.len() {
        for j in (i + 1)..fragments.len() {
            assert_eq!(
                symbols[i] == symbols[j],
                fragments[i] == fragments[j],
                "injectivity violated for {:?} / {:?}",
                fragments[i],
                fragments[j]
            );
        }
    }
}
