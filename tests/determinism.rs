//! Determinism guarantees of the parallel synthesis engine: a fixed
//! `GeneratorConfig::seed` must produce an identical dataset — utterances
//! and program token sequences — regardless of the worker thread count,
//! and across repeated runs.

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;
use thingtalk::nn_syntax::{to_tokens, NnSyntaxOptions};

fn config(seed: u64, threads: usize) -> GeneratorConfig {
    GeneratorConfig {
        target_per_rule: 30,
        max_depth: 5,
        instantiations_per_template: 1,
        seed,
        include_aggregation: true,
        include_timers: true,
        threads,
    }
}

/// The dataset as the parser sees it: (utterance, program tokens) pairs.
fn dataset(seed: u64, threads: usize) -> Vec<(String, Vec<String>)> {
    let library = Thingpedia::builtin();
    SentenceGenerator::new(&library, config(seed, threads))
        .synthesize()
        .into_iter()
        .map(|e| {
            (
                e.utterance,
                to_tokens(&e.program, NnSyntaxOptions::default()),
            )
        })
        .collect()
}

#[test]
fn same_seed_same_dataset_across_thread_counts() {
    let sequential = dataset(42, 1);
    assert!(
        sequential.len() > 100,
        "dataset too small: {}",
        sequential.len()
    );
    for threads in [2, 3, 8, 0] {
        let parallel = dataset(42, threads);
        assert_eq!(
            parallel, sequential,
            "dataset differs between 1 thread and {threads} threads"
        );
    }
}

#[test]
fn same_seed_same_dataset_across_runs() {
    assert_eq!(dataset(7, 0), dataset(7, 0));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(dataset(7, 0), dataset(8, 0));
}

#[test]
fn pipeline_output_is_thread_count_invariant() {
    use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};

    let library = Thingpedia::builtin();
    let build = |threads: usize| {
        let pipeline = DataPipeline::new(
            &library,
            PipelineConfig {
                synthesis: config(11, threads),
                paraphrase_sample: 60,
                ..PipelineConfig::default()
            },
        );
        let data = pipeline.build();
        let examples = pipeline.to_parser_examples(&data.combined(), NnOptions::default());
        examples
            .into_iter()
            .map(|e| (e.sentence.join(" "), e.program.join(" ")))
            .collect::<Vec<_>>()
    };
    let sequential = build(1);
    assert!(!sequential.is_empty());
    assert_eq!(build(4), sequential);
    assert_eq!(build(0), sequential);
}
