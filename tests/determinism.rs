//! Determinism guarantees of the sharded streaming synthesis engine: a
//! fixed `GeneratorConfig::seed` must produce an identical dataset —
//! utterances and program token sequences — regardless of the worker
//! thread count and the dedup shard count, and across repeated runs.

use genie_templates::{GeneratorConfig, SentenceGenerator};
use thingpedia::Thingpedia;
use thingtalk::nn_syntax::{to_tokens, NnSyntaxOptions};

fn config(seed: u64, threads: usize) -> GeneratorConfig {
    GeneratorConfig {
        target_per_rule: 30,
        max_depth: 5,
        instantiations_per_template: 1,
        seed,
        include_aggregation: true,
        include_timers: true,
        threads,
        ..GeneratorConfig::default()
    }
}

/// The dataset as the parser sees it: (utterance, program tokens) pairs.
fn dataset_sharded(seed: u64, threads: usize, shards: usize) -> Vec<(String, Vec<String>)> {
    let library = Thingpedia::builtin();
    let config = GeneratorConfig {
        shards,
        ..config(seed, threads)
    };
    SentenceGenerator::new(&library, config)
        .synthesize()
        .into_iter()
        .map(|e| {
            (
                e.utterance,
                to_tokens(&e.program, NnSyntaxOptions::default()),
            )
        })
        .collect()
}

fn dataset(seed: u64, threads: usize) -> Vec<(String, Vec<String>)> {
    dataset_sharded(seed, threads, GeneratorConfig::default().shards)
}

#[test]
fn same_seed_same_dataset_across_thread_and_shard_counts() {
    let sequential = dataset_sharded(42, 1, 1);
    assert!(
        sequential.len() > 100,
        "dataset too small: {}",
        sequential.len()
    );
    for threads in [2, 3, 8, 0] {
        for shards in [1, 4, 16] {
            let parallel = dataset_sharded(42, threads, shards);
            assert_eq!(
                parallel, sequential,
                "dataset differs between (1 thread, 1 shard) and ({threads} threads, {shards} shards)"
            );
        }
    }
}

#[test]
fn matrix_thread_count_matches_the_sequential_dataset() {
    // The CI determinism matrix exports GENIE_TEST_THREADS={1, 2, 8}; the
    // dataset at that worker count must equal the sequential single-shard
    // dataset. Without the variable (local runs), default to 8 workers so
    // the multi-worker path is still exercised.
    let threads: usize = std::env::var("GENIE_TEST_THREADS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(8);
    assert_eq!(
        dataset_sharded(42, threads, 4),
        dataset_sharded(42, 1, 1),
        "threads = {threads}"
    );
}

#[test]
fn same_seed_same_dataset_across_runs() {
    assert_eq!(dataset(7, 0), dataset(7, 0));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(dataset(7, 0), dataset(8, 0));
}

#[test]
fn pipeline_output_is_thread_count_invariant() {
    use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};

    let library = Thingpedia::builtin();
    let build = |threads: usize| {
        let pipeline = DataPipeline::new(
            &library,
            PipelineConfig {
                synthesis: config(11, threads),
                paraphrase_sample: 60,
                ..PipelineConfig::default()
            },
        );
        let data = pipeline.build().unwrap();
        let examples = pipeline.to_parser_examples(&data.combined(), NnOptions::default());
        examples
            .into_iter()
            .map(|e| (e.sentence.join(" "), e.program.join(" ")))
            .collect::<Vec<_>>()
    };
    let sequential = build(1);
    assert!(!sequential.is_empty());
    assert_eq!(build(4), sequential);
    assert_eq!(build(0), sequential);
}

#[test]
fn fused_streaming_pipeline_matches_the_ci_matrix() {
    use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};

    // The exact grid the CI determinism matrix runs through
    // `dataset_digest`: threads {1, 2, 8} × shards {1, 4, 16}.
    let library = Thingpedia::builtin();
    let run = |threads: usize, shards: usize| {
        let pipeline = DataPipeline::new(
            &library,
            PipelineConfig {
                synthesis: GeneratorConfig {
                    threads,
                    shards,
                    ..config(13, threads)
                },
                paraphrase_sample: 40,
                ..PipelineConfig::default()
            },
        );
        let mut out = Vec::new();
        pipeline
            .run_streaming(NnOptions::default(), |e| {
                out.push((e.sentence.join(" "), e.program.join(" ")))
            })
            .unwrap();
        out
    };
    let reference = run(1, 1);
    assert!(reference.len() > 100);
    for threads in [2, 8] {
        for shards in [4, 16] {
            assert_eq!(
                run(threads, shards),
                reference,
                "threads={threads} shards={shards}"
            );
        }
    }
}
