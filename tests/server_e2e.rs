//! End-to-end tests for the `genie-server` socket front-end: responses over
//! a real TCP connection must be **byte-identical** to rendering the same
//! requests in-process (regardless of engine worker count or how requests
//! coalesce into micro-batches), hostile bytes must get typed 4xx answers
//! without wedging the server, quotas must answer `429`, and shutdown must
//! drain in-flight work.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use genie::engine::{GenieEngine, ParseRequest};
use genie::paraphrase::ParaphraseConfig;
use genie::pipeline::PipelineConfig;
use genie_server::{api, GenieServer, ServerConfig};
use genie_templates::GeneratorConfig;
use luinet::{LuinetParser, ModelConfig};

// ---------------------------------------------------------------------------
// Fixtures: train once, build per-test engines cheaply from the shared model
// ---------------------------------------------------------------------------

/// One trained model for the whole file plus a mix of utterances: some the
/// engine answers, some it rejects with typed errors — both kinds must be
/// deterministic over the socket.
fn fixture() -> &'static (Arc<LuinetParser>, Vec<String>) {
    static FIXTURE: OnceLock<(Arc<LuinetParser>, Vec<String>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let pipeline = PipelineConfig::builder()
            .synthesis(
                GeneratorConfig::builder()
                    .target_per_rule(10)
                    .instantiations_per_template(1)
                    .seed(11)
                    .quiet(true)
                    .build()
                    .unwrap(),
            )
            .paraphrase(
                ParaphraseConfig::builder()
                    .per_sentence(1)
                    .error_rate(0.0)
                    .seed(11)
                    .build()
                    .unwrap(),
            )
            .paraphrase_sample(20)
            .parameter_expansion(false)
            .seed(11)
            .build()
            .unwrap();
        let engine = GenieEngine::builder()
            .train(
                pipeline,
                ModelConfig {
                    epochs: 5,
                    seed: 11,
                    ..ModelConfig::default()
                },
            )
            .unwrap()
            .build()
            .unwrap();
        let library = thingpedia::Thingpedia::builtin();
        let data = genie::DataPipeline::new(&library, pipeline)
            .build()
            .unwrap();
        let mut utterances: Vec<String> = data
            .synthesized
            .examples
            .iter()
            .take(30)
            .map(|e| e.text())
            .filter(|u| {
                engine
                    .parse(&ParseRequest::new(u.clone()).bypass_cache())
                    .is_ok()
            })
            .take(4)
            .collect();
        assert!(
            !utterances.is_empty(),
            "the engine answers none of its own training utterances"
        );
        // Typed parse failures ride along: they too must be byte-stable.
        utterances.push("xyzzy frobnicate the veeblefetzer".to_owned());
        (engine.model(), utterances)
    })
}

fn engine_with_threads(threads: usize) -> GenieEngine {
    let (model, _) = fixture();
    GenieEngine::builder()
        .model_shared(model.clone())
        .threads(threads)
        .build()
        .unwrap()
}

fn serve(engine: GenieEngine, config: ServerConfig) -> GenieServer {
    GenieServer::bind(engine, config).unwrap()
}

// ---------------------------------------------------------------------------
// A minimal test client
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read one `Content-Length`-framed response; `None` on clean EOF.
fn read_response<R: BufRead>(reader: &mut R) -> Option<Response> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).unwrap() == 0 {
        return None;
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("malformed status line")
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').unwrap();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().unwrap();
        }
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    Some(Response {
        status,
        headers,
        body: String::from_utf8(body).unwrap(),
    })
}

fn raw_post(path: &str, body: &str, keep_alive: bool) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(raw_post(path, body, false).as_bytes())
        .unwrap();
    read_response(&mut BufReader::new(stream)).expect("no response")
}

fn get(addr: SocketAddr, path: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    read_response(&mut BufReader::new(stream)).expect("no response")
}

fn parse_body(utterance: &str) -> String {
    format!(
        "{{\"utterance\": {}}}",
        genie_server::json::escape(utterance)
    )
}

fn metric(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .map(|rest| rest.trim().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing from:\n{metrics_text}"))
}

// ---------------------------------------------------------------------------
// Determinism: socket bytes == in-process bytes, at every worker count
// ---------------------------------------------------------------------------

#[test]
fn concurrent_socket_responses_are_byte_identical_to_in_process_at_every_worker_count() {
    let (_, utterances) = fixture();
    // The in-process reference: same requests through the same rendering
    // functions — the single path the server itself serves from.
    let reference_engine = engine_with_threads(1);
    let requests: Vec<ParseRequest> = utterances
        .iter()
        .map(|u| ParseRequest::new(u.clone()))
        .collect();
    let expected: Vec<(u16, String)> = reference_engine
        .parse_batch(&requests)
        .iter()
        .map(|result| {
            let (status, _, body) = api::render_result(result);
            (status, body)
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let server = serve(
            engine_with_threads(threads),
            ServerConfig::builder()
                .worker_threads(4)
                .coalesce_window(Duration::from_millis(5))
                .build()
                .unwrap(),
        );
        let addr = server.local_addr();
        // Hammer concurrently so requests actually race into shared
        // micro-batches, twice over to exercise the response cache too.
        for round in 0..2 {
            let clients: Vec<_> = utterances
                .iter()
                .enumerate()
                .map(|(i, utterance)| {
                    let utterance = utterance.clone();
                    std::thread::spawn(move || {
                        let response = post(addr, "/v1/parse", &parse_body(&utterance));
                        (i, response.status, response.body)
                    })
                })
                .collect();
            for client in clients {
                let (i, status, body) = client.join().unwrap();
                assert_eq!(
                    (status, body.as_str()),
                    (expected[i].0, expected[i].1.as_str()),
                    "threads={threads} round={round} utterance #{i} drifted over the socket"
                );
            }
        }
        let metrics = server.metrics_text();
        assert_eq!(
            metric(&metrics, "server_coalesced_requests_total"),
            2 * utterances.len() as u64,
            "every single parse must flow through the coalescer"
        );
        assert!(metric(&metrics, "server_coalesce_batches_total") >= 1);
    }
}

#[test]
fn batch_endpoint_matches_in_process_parse_batch_bytes() {
    let (_, utterances) = fixture();
    let engine = engine_with_threads(2);
    let requests: Vec<ParseRequest> = utterances
        .iter()
        .map(|u| ParseRequest::new(u.clone()))
        .collect();
    let expected = api::render_batch(&engine.parse_batch(&requests));

    let server = serve(engine, ServerConfig::default());
    let body = format!(
        "{{\"requests\": [{}]}}",
        utterances
            .iter()
            .map(|u| parse_body(u))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let response = post(server.local_addr(), "/v1/parse_batch", &body);
    assert_eq!(response.status, 200);
    assert_eq!(response.body, expected);
}

// ---------------------------------------------------------------------------
// Keep-alive and pipelining over one connection
// ---------------------------------------------------------------------------

#[test]
fn pipelined_keep_alive_requests_are_served_in_order_on_one_connection() {
    let (_, utterances) = fixture();
    let server = serve(engine_with_threads(2), ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Three requests written back-to-back before reading anything.
    let mut wire = String::new();
    wire.push_str(&raw_post("/v1/parse", &parse_body(&utterances[0]), true));
    wire.push_str(&raw_post("/v1/parse", "{\"utterance\": \"\"}", true));
    wire.push_str("GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    stream.write_all(wire.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream);
    let first = read_response(&mut reader).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("Connection"), Some("keep-alive"));
    let second = read_response(&mut reader).unwrap();
    assert_eq!(second.status, 422, "empty utterance is a typed 422");
    assert!(second.body.contains("empty_utterance"));
    let third = read_response(&mut reader).unwrap();
    assert_eq!(third.status, 200);
    assert!(third.body.contains("server_http_requests_total"));
    assert_eq!(third.header("Connection"), Some("close"));
    assert!(read_response(&mut reader).is_none(), "server honors close");
}

// ---------------------------------------------------------------------------
// Quotas
// ---------------------------------------------------------------------------

#[test]
fn quota_exhaustion_answers_429_with_retry_after() {
    let (_, utterances) = fixture();
    let server = serve(
        engine_with_threads(1),
        ServerConfig::builder()
            .quota(2, 0.001) // 2-token burst, refill far slower than the test
            .build()
            .unwrap(),
    );
    let addr = server.local_addr();
    let body = parse_body(&utterances[0]);
    let statuses: Vec<u16> = (0..5)
        .map(|_| post(addr, "/v1/parse", &body).status)
        .collect();
    assert_eq!(
        statuses,
        vec![200, 200, 429, 429, 429],
        "burst of 2, then typed rejection"
    );

    let rejected = post(addr, "/v1/parse", &body);
    assert_eq!(rejected.status, 429);
    assert!(rejected.body.contains("quota_exhausted"));
    let retry_after: u64 = rejected
        .header("Retry-After")
        .expect("429 must carry Retry-After")
        .parse()
        .unwrap();
    assert!(retry_after >= 1);

    // Batch cost is per-utterance: a 3-utterance batch cannot fit either.
    let batch = format!("{{\"requests\": [{0}, {0}, {0}]}}", body);
    assert_eq!(post(addr, "/v1/parse_batch", &batch).status, 429);

    let metrics = server.metrics_text();
    assert!(metric(&metrics, "server_quota_rejections_total") >= 4);
}

// ---------------------------------------------------------------------------
// Hostile bytes against a live server
// ---------------------------------------------------------------------------

#[test]
fn hostile_probes_get_typed_errors_and_never_wedge_the_server() {
    let (_, utterances) = fixture();
    let server = serve(
        engine_with_threads(1),
        ServerConfig::builder()
            .max_body_bytes(1024)
            .read_timeout(Duration::from_millis(200))
            .build()
            .unwrap(),
    );
    let addr = server.local_addr();

    let probe = |wire: &[u8]| -> Option<Response> {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(wire).unwrap();
        read_response(&mut BufReader::new(stream))
    };

    // Garbage request line → 400 with a machine-readable code.
    let garbage = probe(b"\x01\x02\x03 garbage\r\n\r\n").unwrap();
    assert_eq!(garbage.status, 400);
    assert!(garbage.body.contains("bad_request"));

    // POST without Content-Length → 411.
    assert_eq!(
        probe(b"POST /v1/parse HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap()
            .status,
        411
    );

    // Declared body over the limit → 413 without reading the body.
    let oversized =
        probe(b"POST /v1/parse HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n").unwrap();
    assert_eq!(oversized.status, 413);
    assert!(oversized.body.contains("payload_too_large"));

    // Path over the limit → 414.
    let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2048));
    assert_eq!(probe(long_path.as_bytes()).unwrap().status, 414);

    // Malformed JSON, non-UTF-8 bytes, and a JSON depth bomb → 400.
    assert_eq!(
        probe(raw_post("/v1/parse", "{not json", false).as_bytes())
            .unwrap()
            .status,
        400
    );
    let mut non_utf8 = b"POST /v1/parse HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec();
    non_utf8.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc]);
    assert_eq!(probe(&non_utf8).unwrap().status, 400);
    let bomb = "[".repeat(500);
    assert_eq!(
        probe(raw_post("/v1/parse", &bomb, false).as_bytes())
            .unwrap()
            .status,
        400
    );

    // Wrong shapes at the API layer → typed 400s.
    assert_eq!(
        probe(raw_post("/v1/parse", "{\"utterance\": 3}", false).as_bytes())
            .unwrap()
            .status,
        400
    );

    // Unknown route → 404; unsupported method → 405 with Allow.
    assert_eq!(get(addr, "/v1/nope").status, 404);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"DELETE /v1/parse HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let denied = read_response(&mut BufReader::new(stream)).unwrap();
    assert_eq!(denied.status, 405);
    assert_eq!(denied.header("Allow"), Some("GET, POST"));

    // A slow-write attacker (half a request line, then silence) gets a 408
    // once the read timeout fires.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"POST /v1/par").unwrap();
    let timed_out = read_response(&mut BufReader::new(slow)).unwrap();
    assert_eq!(timed_out.status, 408);

    // A peer that connects and says nothing is closed quietly.
    let idle = TcpStream::connect(addr).unwrap();
    assert!(read_response(&mut BufReader::new(idle)).is_none());

    // After every probe the server still serves real work.
    let healthy = post(addr, "/v1/parse", &parse_body(&utterances[0]));
    assert_eq!(healthy.status, 200);

    let metrics = server.metrics_text();
    assert!(metric(&metrics, "server_http_4xx_total") >= 8);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

#[test]
fn metrics_fold_engine_counters_without_shadow_counting() {
    let (_, utterances) = fixture();
    let engine = engine_with_threads(1);
    let server = serve(engine.clone(), ServerConfig::default());
    let addr = server.local_addr();

    // Same utterance twice: the second is an engine cache hit.
    let body = parse_body(&utterances[0]);
    assert_eq!(post(addr, "/v1/parse", &body).status, 200);
    assert_eq!(post(addr, "/v1/parse", &body).status, 200);

    let scraped = get(addr, "/metrics");
    assert_eq!(scraped.status, 200);
    let text = &scraped.body;
    assert_eq!(metric(text, "server_parse_requests_total"), 2);
    assert_eq!(metric(text, "server_parse_ok_total"), 2);
    assert_eq!(metric(text, "server_quota_rejections_total"), 0);
    assert!(metric(text, "server_latency_us_count") >= 2);
    // The engine rows ARE the engine's own counters, scraped live.
    let stats = engine.stats();
    assert_eq!(metric(text, "engine_requests_total"), stats.requests);
    assert_eq!(metric(text, "engine_cache_hits_total"), stats.cache_hits);
    assert!(
        stats.cache_hits >= 1,
        "second identical parse must hit the cache"
    );
    // Every line is exactly `name value`.
    for line in text.lines() {
        let mut parts = line.split(' ');
        assert!(parts.next().is_some_and(|n| !n.is_empty()));
        assert!(
            parts.next().is_some_and(|v| v.parse::<u64>().is_ok()),
            "bad line `{line}`"
        );
        assert!(parts.next().is_none());
    }

    assert_eq!(get(addr, "/healthz").status, 200);
}

// ---------------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------------

#[test]
fn shutdown_drains_in_flight_requests_then_refuses_new_connections() {
    let (_, utterances) = fixture();
    // A wide coalescing window parks the in-flight request inside the
    // coalescer, so shutdown provably overlaps an unfinished request.
    let mut server = serve(
        engine_with_threads(2),
        ServerConfig::builder()
            .coalesce_window(Duration::from_millis(300))
            .worker_threads(2)
            .build()
            .unwrap(),
    );
    let addr = server.local_addr();

    let body = parse_body(&utterances[0]);
    let in_flight = std::thread::spawn(move || post(addr, "/v1/parse", &body));
    // Let the request reach the coalescer queue, then pull the plug.
    std::thread::sleep(Duration::from_millis(60));
    server.shutdown();

    let response = in_flight.join().unwrap();
    assert_eq!(
        response.status, 200,
        "in-flight request must drain, not drop"
    );

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "socket must be closed after shutdown"
    );
}
