//! Integration coverage of the sharded streaming architecture: the sharded
//! dedup set, the batched RNG streams, the memory-bounded streaming sink,
//! and the incremental sharded dataset writers.

use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie::ShardedDatasetWriter;
use genie_templates::dedup::{example_stream_key, program_fingerprints};
use genie_templates::{GeneratorConfig, SentenceGenerator, ShardedDedup};
use thingpedia::Thingpedia;

fn config(shards: usize, batch_size: usize) -> GeneratorConfig {
    GeneratorConfig {
        target_per_rule: 25,
        instantiations_per_template: 1,
        seed: 21,
        include_aggregation: true,
        shards,
        batch_size,
        ..GeneratorConfig::default()
    }
}

#[test]
fn final_dataset_is_shard_count_invariant() {
    let library = Thingpedia::builtin();
    let run = |shards: usize| SentenceGenerator::new(&library, config(shards, 16)).synthesize();
    let reference = run(1);
    assert!(reference.len() > 100);
    for shards in [2, 4, 16, 64] {
        assert_eq!(run(shards), reference, "shards = {shards}");
    }
}

#[test]
fn streamed_examples_are_distinct_under_the_dedup_key() {
    // The sharded dedup must actually deduplicate: every emitted example's
    // 128-bit key is unique, for any shard count.
    let library = Thingpedia::builtin();
    for shards in [1, 8] {
        let generator = SentenceGenerator::new(&library, config(shards, 8));
        let interner = generator.interner().clone();
        let mut seen = std::collections::HashSet::new();
        let stats = generator.synthesize_streaming(|example| {
            assert!(
                seen.insert(example_stream_key(
                    &example.utterance,
                    program_fingerprints(&example.program)
                )),
                "duplicate emitted with {shards} shards: `{}`",
                interner.render(&example.utterance)
            );
        });
        assert_eq!(stats.emitted, seen.len());
        assert!(
            stats.duplicates > 0,
            "sampling never collided — dedup untested"
        );
    }
}

#[test]
fn sharded_dedup_partitions_the_key_space() {
    // Cross-shard non-collision at the engine level: the shards of a
    // ShardedDedup partition inserted keys (their sizes sum to the distinct
    // count) and re-inserting any streamed key is rejected.
    let library = Thingpedia::builtin();
    let generator = SentenceGenerator::new(&library, config(8, 16));
    let dedup = ShardedDedup::new(8);
    let mut keys = Vec::new();
    generator.synthesize_streaming(|example| {
        keys.push(example_stream_key(
            &example.utterance,
            program_fingerprints(&example.program),
        ));
    });
    let fresh = dedup.insert_batch(4, &keys);
    assert!(
        fresh.iter().all(|&fresh| fresh),
        "emitted keys are distinct"
    );
    assert_eq!(dedup.len(), keys.len());
    for &key in keys.iter().take(200) {
        assert!(!dedup.insert(key), "key crossed into another shard");
    }
}

#[test]
fn batch_rng_streams_are_independent_and_stable() {
    // A batch's stream is a pure function of (seed, rule, batch): reruns
    // agree, different batch sizes select different streams, and the
    // first-batch prefix of every rule is shared between batch sizes that
    // start identically.
    let library = Thingpedia::builtin();
    let run =
        |batch_size: usize| SentenceGenerator::new(&library, config(4, batch_size)).synthesize();
    assert_eq!(run(8), run(8));
    assert_ne!(run(8), run(32));
    // Independence at the driver level: distinct (rule, batch) pairs get
    // distinct seeds.
    let mut seeds = std::collections::HashSet::new();
    for rule in 0..16u64 {
        for batch in 0..16u64 {
            assert!(
                seeds.insert(genie_parallel::stream_seed(21, rule, batch)),
                "stream seed collision at rule {rule} batch {batch}"
            );
        }
    }
}

#[test]
fn streaming_writer_roundtrip_is_shard_count_invariant() {
    // End to end: fused pipeline → sharded writers → merge, across writer
    // shard counts; the merged TSV must be identical.
    let library = Thingpedia::builtin();
    let pipeline_config = PipelineConfig {
        synthesis: config(4, 16),
        paraphrase_sample: 30,
        ..PipelineConfig::default()
    };
    let mut merged_per_count = Vec::new();
    for shard_count in [1usize, 4, 16] {
        let dir = std::env::temp_dir().join(format!(
            "genie-sharding-it-{}-{shard_count}",
            std::process::id()
        ));
        let pipeline = DataPipeline::new(&library, pipeline_config);
        let mut writer = ShardedDatasetWriter::create(&dir, "train", shard_count).unwrap();
        let stats = pipeline
            .run_streaming_sharded(NnOptions::default(), &mut writer)
            .unwrap();
        assert_eq!(writer.written(), stats.emitted);
        let paths = writer.finish().unwrap();
        assert_eq!(paths.len(), shard_count);
        let mut merged = Vec::new();
        ShardedDatasetWriter::merge_for_each(&paths, |line| merged.push(line)).unwrap();
        merged_per_count.push(merged);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert!(merged_per_count[0].len() > 100);
    assert_eq!(merged_per_count[0], merged_per_count[1]);
    assert_eq!(merged_per_count[1], merged_per_count[2]);
}
