//! Property-based tests (proptest) over the core language invariants:
//! canonicalization is idempotent and order-insensitive, printing and
//! parsing round-trip, and the NN syntax round-trips for arbitrary
//! generated programs over the builtin library.

use proptest::prelude::*;

use thingpedia::Thingpedia;
use thingtalk::ast::{Action, CompareOp, Invocation, Predicate, Program, Query, Stream};
use thingtalk::canonical::canonicalized;
use thingtalk::nn_syntax::{from_tokens, to_tokens, NnSyntaxOptions};
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::Value;

/// Strategy: pick a random query function and action function from the
/// builtin library, with a filter over a random output parameter.
fn arb_program() -> impl Strategy<Value = Program> {
    let library = Thingpedia::builtin();
    let queries: Vec<(String, String, Vec<String>)> = library
        .classes()
        .flat_map(|class| {
            class.queries().map(move |f| {
                (
                    class.name.clone(),
                    f.name.clone(),
                    f.output_params()
                        .filter(|p| p.ty.is_string_like())
                        .map(|p| p.name.clone())
                        .collect(),
                )
            })
        })
        .collect();
    let actions: Vec<(String, String, Vec<String>)> = library
        .classes()
        .flat_map(|class| {
            class.actions().map(move |f| {
                (
                    class.name.clone(),
                    f.name.clone(),
                    f.required_params().map(|p| p.name.clone()).collect(),
                )
            })
        })
        .collect();

    (
        0..queries.len(),
        0..actions.len(),
        prop::bool::ANY,
        prop::bool::ANY,
        "[a-z]{3,8}",
        "[a-z]{3,8}",
    )
        .prop_map(move |(qi, ai, monitored, with_filter, filter_text, param_text)| {
            let (qclass, qname, outs) = &queries[qi];
            let (aclass, aname, reqs) = &actions[ai];
            let mut query = Query::Invocation(Invocation::new(qclass.clone(), qname.clone()));
            if with_filter {
                if let Some(out) = outs.first() {
                    query = query.filtered(Predicate::atom(
                        out.clone(),
                        CompareOp::Substr,
                        Value::string(filter_text.clone()),
                    ));
                }
            }
            let mut action_inv = Invocation::new(aclass.clone(), aname.clone());
            for req in reqs {
                action_inv = action_inv.with_param(req.clone(), Value::string(param_text.clone()));
            }
            if monitored {
                Program {
                    stream: Stream::Monitor {
                        query: Box::new(query),
                        on: Vec::new(),
                    },
                    query: None,
                    action: Action::Invocation(action_inv),
                }
            } else {
                Program {
                    stream: Stream::Now,
                    query: Some(query),
                    action: Action::Invocation(action_inv),
                }
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonicalization_is_idempotent(program in arb_program()) {
        let library = Thingpedia::builtin();
        let once = canonicalized(&library, &program);
        let twice = canonicalized(&library, &once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn canonicalization_ignores_input_parameter_order(program in arb_program()) {
        let library = Thingpedia::builtin();
        let mut shuffled = program.clone();
        for invocation in shuffled.invocations_mut() {
            invocation.in_params.reverse();
        }
        prop_assert_eq!(
            canonicalized(&library, &program),
            canonicalized(&library, &shuffled)
        );
    }

    #[test]
    fn surface_syntax_roundtrips(program in arb_program()) {
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(program, reparsed);
    }

    #[test]
    fn nn_syntax_roundtrips(program in arb_program()) {
        let library = Thingpedia::builtin();
        let canonical = canonicalized(&library, &program);
        for options in [NnSyntaxOptions::default(), NnSyntaxOptions::full()] {
            let tokens = to_tokens(&canonical, options);
            let decoded = from_tokens(&tokens).unwrap();
            prop_assert_eq!(&canonical, &decoded);
        }
    }

    #[test]
    fn generated_programs_reference_known_functions(program in arb_program()) {
        let library = Thingpedia::builtin();
        for function in program.functions() {
            prop_assert!(library.function(&function.class, &function.function).is_some());
        }
    }
}
