//! Property-based tests over the core language invariants: canonicalization
//! is idempotent and order-insensitive, printing and parsing round-trip, and
//! the NN syntax round-trips for randomly generated programs over the builtin
//! library.
//!
//! The container has no crates.io access, so instead of proptest these
//! properties are checked over a seeded stream of generated programs (the
//! generator below plays the role of a proptest `Strategy`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use thingpedia::Thingpedia;
use thingtalk::ast::{Action, CompareOp, Invocation, Predicate, Program, Query, Stream};
use thingtalk::canonical::canonicalized;
use thingtalk::nn_syntax::{from_tokens, to_tokens, NnSyntaxOptions};
use thingtalk::syntax::parse_program;
use thingtalk::typecheck::SchemaRegistry;
use thingtalk::Value;

const CASES: usize = 64;

fn random_word(rng: &mut StdRng) -> String {
    let len = rng.gen_range(3..=8usize);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

/// Pick a random query function and action function from the builtin
/// library, with a filter over a random output parameter.
fn arb_program(library: &Thingpedia, rng: &mut StdRng) -> Program {
    let queries: Vec<(String, String, Vec<String>)> = library
        .classes()
        .flat_map(|class| {
            class.queries().map(move |f| {
                (
                    class.name.clone(),
                    f.name.clone(),
                    f.output_params()
                        .filter(|p| p.ty.is_string_like())
                        .map(|p| p.name.clone())
                        .collect(),
                )
            })
        })
        .collect();
    let actions: Vec<(String, String, Vec<String>)> = library
        .classes()
        .flat_map(|class| {
            class.actions().map(move |f| {
                (
                    class.name.clone(),
                    f.name.clone(),
                    f.required_params().map(|p| p.name.clone()).collect(),
                )
            })
        })
        .collect();

    let (qclass, qname, outs) = queries.choose(rng).expect("builtin library has queries");
    let (aclass, aname, reqs) = actions.choose(rng).expect("builtin library has actions");
    let monitored = rng.gen_bool(0.5);
    let with_filter = rng.gen_bool(0.5);

    let mut query = Query::Invocation(Invocation::new(qclass.clone(), qname.clone()));
    if with_filter {
        if let Some(out) = outs.first() {
            query = query.filtered(Predicate::atom(
                out.clone(),
                CompareOp::Substr,
                Value::string(random_word(rng)),
            ));
        }
    }
    let param_text = random_word(rng);
    let mut action_inv = Invocation::new(aclass.clone(), aname.clone());
    for req in reqs {
        action_inv = action_inv.with_param(req.clone(), Value::string(param_text.clone()));
    }
    if monitored {
        Program {
            stream: Stream::Monitor {
                query: query.into(),
                on: Vec::new(),
            },
            query: None,
            action: Action::Invocation(action_inv.into()),
        }
    } else {
        Program {
            stream: Stream::Now,
            query: Some(query.into()),
            action: Action::Invocation(action_inv.into()),
        }
    }
}

fn for_each_case(seed: u64, mut check: impl FnMut(&Thingpedia, Program)) {
    let library = Thingpedia::builtin();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..CASES {
        let program = arb_program(&library, &mut rng);
        check(&library, program);
    }
}

#[test]
fn canonicalization_is_idempotent() {
    for_each_case(101, |library, program| {
        let once = canonicalized(library, &program);
        let twice = canonicalized(library, &once);
        assert_eq!(once, twice, "program: {program}");
    });
}

#[test]
fn canonicalization_ignores_input_parameter_order() {
    for_each_case(102, |library, program| {
        let mut shuffled = program.clone();
        for invocation in shuffled.invocations_mut() {
            invocation.in_params.reverse();
        }
        assert_eq!(
            canonicalized(library, &program),
            canonicalized(library, &shuffled),
            "program: {program}"
        );
    });
}

#[test]
fn surface_syntax_roundtrips() {
    for_each_case(103, |_, program| {
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(program, reparsed, "printed: {printed}");
    });
}

#[test]
fn nn_syntax_roundtrips() {
    for_each_case(104, |library, program| {
        let canonical = canonicalized(library, &program);
        for options in [NnSyntaxOptions::default(), NnSyntaxOptions::full()] {
            let tokens = to_tokens(&canonical, options);
            let decoded = from_tokens(&tokens).unwrap();
            assert_eq!(&canonical, &decoded, "tokens: {}", tokens.join(" "));
        }
    });
}

#[test]
fn generated_programs_reference_known_functions() {
    for_each_case(105, |library, program| {
        for function in program.functions() {
            assert!(library
                .function(&function.class, &function.function)
                .is_some());
        }
    });
}
