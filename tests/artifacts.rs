//! Integration coverage of the binary artifacts: columnar dataset shards
//! that merge byte-identically with TSV at every shard count, byte-stable
//! columnar writes (including a full write → read → rewrite cycle), model
//! snapshots loaded through the `GenieEngine` facade, and typed
//! `genie::Error`s for corrupt or missing artifact files.

use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use genie::engine::GenieEngine;
use genie::pipeline::{DataPipeline, NnOptions, PipelineConfig};
use genie::{read_columnar_shard, DatasetFormat, Error, ShardedDatasetWriter};
use genie_templates::dedup::Fnv64;
use genie_templates::GeneratorConfig;
use luinet::{LuinetParser, ModelConfig, ParserExample};
use thingpedia::Thingpedia;

/// One small pipeline-built workload for the whole file (real sentences and
/// programs, so the string table and program columns are exercised with
/// production shapes).
fn workload() -> &'static [ParserExample] {
    static WORKLOAD: OnceLock<Vec<ParserExample>> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let library = Thingpedia::builtin();
        let config = PipelineConfig {
            synthesis: GeneratorConfig {
                target_per_rule: 10,
                instantiations_per_template: 1,
                seed: 17,
                quiet: true,
                ..GeneratorConfig::default()
            },
            paraphrase_sample: 25,
            ..PipelineConfig::default()
        };
        let pipeline = DataPipeline::new(&library, config);
        let data = pipeline.build().expect("builtin pipeline builds");
        pipeline.to_parser_examples(&data.combined(), NnOptions::default())
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("genie-artifacts-it-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// Write `examples` as one shard set and return (paths, table path).
fn write_set(
    examples: &[ParserExample],
    dir: &Path,
    shards: usize,
    format: DatasetFormat,
) -> (Vec<PathBuf>, Option<PathBuf>) {
    let mut writer = ShardedDatasetWriter::create_with_format(dir, "train", shards, format)
        .expect("create writer");
    let table = writer.table_path().map(Path::to_path_buf);
    for example in examples {
        writer.write(example).expect("write example");
    }
    (writer.finish().expect("finish shard set"), table)
}

/// FNV-1a digest of the merged stream, with the newline each merged line
/// dropped restored — the same digest `render_tsv_row` bytes produce.
fn merged_digest(paths: &[PathBuf]) -> (u64, usize) {
    let mut hasher = Fnv64::new();
    let mut count = 0usize;
    ShardedDatasetWriter::merge_for_each(paths, |line| {
        hasher.write(line.as_bytes());
        hasher.write(b"\n");
        count += 1;
    })
    .expect("merge shard set");
    (hasher.finish(), count)
}

#[test]
fn cross_format_merges_agree_across_shard_counts() {
    let examples = workload();
    assert!(examples.len() > 100);

    // The reference digest: the in-memory stream, straight through the one
    // canonical row renderer.
    let mut hasher = Fnv64::new();
    let mut row = String::new();
    for example in examples {
        row.clear();
        example.render_tsv_row(&mut row);
        hasher.write(row.as_bytes());
    }
    let reference = hasher.finish();

    for shards in [1usize, 4, 16] {
        for format in [DatasetFormat::Tsv, DatasetFormat::Columnar] {
            let dir = temp_dir(&format!("digest-{shards}-{format:?}"));
            let (paths, _) = write_set(examples, &dir, shards, format);
            assert_eq!(paths.len(), shards);
            let (digest, count) = merged_digest(&paths);
            assert_eq!(count, examples.len(), "{shards} {format:?} shards");
            assert_eq!(
                digest, reference,
                "merged digest diverged at {shards} {format:?} shards"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn columnar_writes_are_byte_stable_through_a_read_rewrite_cycle() {
    let examples = workload();
    let shards = 3usize;

    let read_all = |paths: &[PathBuf], table: &Option<PathBuf>| -> Vec<Vec<u8>> {
        paths
            .iter()
            .chain(table.iter())
            .map(|p| std::fs::read(p).unwrap())
            .collect()
    };

    let dir_a = temp_dir("stable-a");
    let dir_b = temp_dir("stable-b");
    let (paths_a, table_a) = write_set(examples, &dir_a, shards, DatasetFormat::Columnar);
    let (paths_b, table_b) = write_set(examples, &dir_b, shards, DatasetFormat::Columnar);
    assert_eq!(
        read_all(&paths_a, &table_a),
        read_all(&paths_b, &table_b),
        "two writes of the same stream must be byte-identical"
    );

    // Read every shard back and reassemble the original stream order: the
    // writer places example `i` at row `i / shards` of shard `i % shards`.
    let per_shard: Vec<Vec<ParserExample>> = paths_a
        .iter()
        .map(|p| read_columnar_shard(p).expect("read shard"))
        .collect();
    let mut reassembled = Vec::with_capacity(examples.len());
    for i in 0..examples.len() {
        reassembled.push(per_shard[i % shards][i / shards].clone());
    }
    assert_eq!(&reassembled, examples, "roundtrip changed the examples");

    // Rewriting the reassembled stream reproduces the files byte for byte:
    // the string table is keyed by first appearance in stream order, so the
    // whole artifact is a pure function of the example stream.
    let dir_c = temp_dir("stable-c");
    let (paths_c, table_c) = write_set(&reassembled, &dir_c, shards, DatasetFormat::Columnar);
    assert_eq!(
        read_all(&paths_a, &table_a),
        read_all(&paths_c, &table_c),
        "write → read → rewrite must be byte-identical"
    );

    for dir in [dir_a, dir_b, dir_c] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn engine_loads_snapshots_and_preserves_predictions() {
    let examples = workload();
    let mut parser = LuinetParser::new(ModelConfig {
        epochs: 2,
        seed: 13,
        ..ModelConfig::default()
    });
    parser.train(examples);

    let dir = temp_dir("snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.snap");
    parser.save_snapshot(&path).expect("save snapshot");

    let engine = GenieEngine::builder()
        .model_from_snapshot(&path)
        .expect("load snapshot into the engine")
        .build()
        .expect("build engine");
    assert_eq!(
        engine.model().weights_digest(),
        parser.weights_digest(),
        "weights digest must survive the snapshot roundtrip"
    );
    for example in examples.iter().take(10) {
        assert_eq!(
            engine.model().predict_topk(&example.sentence, 3),
            parser.predict_topk(&example.sentence, 3),
            "predictions must survive the snapshot roundtrip"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_artifacts_surface_typed_genie_errors() {
    let examples = workload();
    let dir = temp_dir("corrupt");
    let (paths, _) = write_set(examples, &dir, 2, DatasetFormat::Columnar);

    // Truncated shard: readable bytes, unreadable content.
    let bytes = std::fs::read(&paths[0]).unwrap();
    let truncated = dir.join("truncated.shard-0000.col");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    // (The table it points at does not exist either, but the magic check
    // comes after the table load — so copy the real table alongside.)
    std::fs::copy(dir.join("train.table.col"), dir.join("truncated.table.col")).unwrap();
    match read_columnar_shard(&truncated) {
        Err(Error::CorruptArtifact { .. }) => {}
        other => panic!("truncated shard: expected CorruptArtifact, got {other:?}"),
    }

    // Missing file: an Io error, not a corrupt one.
    match read_columnar_shard(&dir.join("missing.shard-0000.col")) {
        Err(Error::Io(_)) => {}
        other => panic!("missing shard: expected Io, got {other:?}"),
    }

    // Snapshot paths through the engine facade.
    let snap = dir.join("model.snap");
    let mut parser = LuinetParser::new(ModelConfig {
        epochs: 1,
        ..ModelConfig::default()
    });
    parser.train(&examples[..40]);
    parser.save_snapshot(&snap).unwrap();
    let snap_bytes = std::fs::read(&snap).unwrap();
    let bad_snap = dir.join("truncated.snap");
    std::fs::write(&bad_snap, &snap_bytes[..snap_bytes.len() - 7]).unwrap();
    match GenieEngine::builder().model_from_snapshot(&bad_snap) {
        Err(Error::CorruptArtifact { .. }) => {}
        other => panic!(
            "truncated snapshot: expected CorruptArtifact, got {:?}",
            other.map(|_| "builder")
        ),
    }
    match GenieEngine::builder().model_from_snapshot(dir.join("missing.snap")) {
        Err(Error::Io(_)) => {}
        other => panic!(
            "missing snapshot: expected Io, got {:?}",
            other.map(|_| "builder")
        ),
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
